//! Offline drop-in subset of the `rand_distr` 0.4 API: the [`Normal`]
//! distribution over `f64`, sampled with the Box–Muller transform.

pub use rand::distributions::Distribution;
use rand::Rng;

/// Error constructing a distribution from invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or non-finite.
    BadVariance,
    /// The mean was non-finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation is invalid"),
            NormalError::MeanTooSmall => write!(f, "mean is invalid"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev²)`.
    ///
    /// `std_dev` must be finite and non-negative (a zero deviation is
    /// allowed and yields the constant `mean`, matching upstream).
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }

    /// The mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard-deviation parameter.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms -> one standard normal deviate.
        let uniform = rand::distributions::Standard;
        let u1 = Distribution::<f64>::sample(&uniform, rng).max(f64::MIN_POSITIVE);
        let u2 = Distribution::<f64>::sample(&uniform, rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn moments_are_roughly_right() {
        let normal = Normal::new(2.0, 3.0).expect("valid");
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }
}
