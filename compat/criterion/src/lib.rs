//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! Benchmarks run only when the binary receives a `--bench` argument
//! (which `cargo bench` passes); under `cargo test` the harness-less
//! bench binaries exit immediately. Timing is a simple mean over
//! `sample_size` iterations printed to stdout — enough to compare
//! implementations, with none of upstream's statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. Only used for API
/// compatibility; every variant behaves the same here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.as_ref().to_string(),
            sample_size,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.as_ref());
        run_one(&label, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / sample_size as f64;
    println!(
        "bench {label:<48} {:>12.3} µs/iter  (n={sample_size})",
        mean * 1e6
    );
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)? $(;)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for a bench binary; runs groups only under `--bench`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !::std::env::args().any(|a| a == "--bench") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn double(c: &mut Criterion) {
        c.bench_function("double", |b| b.iter(|| black_box(2) * 2));
    }

    criterion_group!(trivial, double);

    #[test]
    fn group_runs_and_measures() {
        trivial();
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        let mut ran = 0u32;
        group.bench_function("counted", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::LargeInput);
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 1);
    }
}
