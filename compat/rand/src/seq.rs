//! Sequence sampling helpers (`SliceRandom`).

use crate::{Rng, RngCore};

/// Shuffling and random element selection on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
