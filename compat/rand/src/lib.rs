//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the few pieces of `rand` it actually uses: the [`Rng`] / [`SeedableRng`]
//! traits, [`rngs::StdRng`] / [`rngs::SmallRng`] (both xoshiro256** seeded
//! via SplitMix64), uniform `gen` / `gen_range` / `gen_bool` sampling and
//! the [`distributions::Distribution`] trait that `rand_distr` builds on.
//!
//! The stream of any seeded generator is deterministic and stable across
//! platforms, which is all the workspace's tests and data generators rely
//! on; it intentionally does NOT match upstream `rand`'s stream.

pub mod distributions;
pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f32`/`f64` uniform in `[0, 1)`, integers uniform over the full
    /// range, `bool` fair).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distr.sample(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by widening multiply (unbiased enough for
/// simulation / test workloads; the modulo bias of a 64-bit multiply-shift
/// is below 2^-64 for the spans used here).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                use distributions::Distribution;
                let u: $t = distributions::Standard.sample(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against FP rounding landing on `end`.
                if v < self.end { v } else { <$t>::from_bits(self.end.to_bits() - 1) }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                use distributions::Distribution;
                let u: $t = distributions::Standard.sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
            let w = rng.gen_range(1..=12i32);
            assert!((1..=12).contains(&w));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi);
    }
}
