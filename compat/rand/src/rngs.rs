//! Seedable generators: xoshiro256** with SplitMix64 seeding.

use crate::{RngCore, SeedableRng};

/// xoshiro256** core state.
#[derive(Clone, Debug)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the canonical way to seed xoshiro.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The workspace's standard seedable generator.
#[derive(Clone, Debug)]
pub struct StdRng(Xoshiro256);

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next()
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self(Xoshiro256::from_u64(seed))
    }
}

/// A small fast generator (same engine as [`StdRng`] here).
#[derive(Clone, Debug)]
pub struct SmallRng(Xoshiro256);

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next()
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self(Xoshiro256::from_u64(seed))
    }
}
