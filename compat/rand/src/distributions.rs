//! The `Distribution` trait and the standard (uniform) distribution.

/// Types that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform `[0, 1)` for floats, full-range
/// uniform for integers, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 random mantissa bits.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// `sample` only needs `RngCore`; re-bless the blanket impl so distributions
// can be sampled through a plain `&mut R`.
impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

#[cfg(test)]
mod tests {

    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "{trues}");
    }

    #[allow(dead_code)]
    fn rng_core_is_object_safe(r: &mut dyn crate::RngCore) -> u64 {
        r.next_u64()
    }
}
