//! Offline drop-in subset of the `proptest` crate: deterministic
//! pseudo-random case generation without shrinking.
//!
//! Each `proptest!` test runs `ProptestConfig::cases` iterations. Case
//! seeds are derived from the test's name, so streams are stable across
//! runs and independent between tests. Failures report the case number
//! so a failing input can be regenerated deterministically.

pub mod strategy;

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` iterations.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Number-of-elements specification: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and size spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// A fair coin flip.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// FNV-1a over the test name: a stable per-test base seed.
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests. Matches the upstream surface used here:
/// an optional `#![proptest_config(..)]`, then `fn name(pat in strategy, ..)`
/// items that expand to `#[test]` functions looping over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            use ::rand::SeedableRng as _;
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strats = ($($strat,)+);
            let __base = $crate::__seed_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = ::rand::rngs::StdRng::seed_from_u64(
                    __base ^ (__case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strats, &mut __rng);
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!("property {} failed at case {}: {}",
                        stringify!($name), __case, __msg);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body, failing the case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_and_vecs_respect_bounds(
            x in 1usize..20,
            f in -2.0f32..2.0,
            v in crate::collection::vec(0.0f64..1.0, 3..7),
            b in crate::bool::ANY,
        ) {
            prop_assert!((1..20).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|y| (0.0..1.0).contains(y)));
            let _ = b;
        }

        fn prop_map_and_tuples_compose(
            (flag, n) in (crate::bool::ANY, 2usize..6),
            doubled in (1usize..10).prop_map(|x| x * 2),
        ) {
            prop_assert!(doubled % 2 == 0);
            prop_assume!(n > 2 || flag);
            prop_assert_eq!(n.min(6), n);
        }
    }

    #[test]
    fn seeds_differ_per_name() {
        assert_ne!(crate::__seed_for("a::t1"), crate::__seed_for("a::t2"));
    }
}
