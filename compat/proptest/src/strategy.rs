//! The [`Strategy`] trait: deterministic value generation from a seeded RNG.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no shrinking; a strategy is just a
/// pure function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = (0.0f64..1.0).prop_map(|x| x * 10.0);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..5).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..5).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|x| (0.0..10.0).contains(x)));
    }
}
