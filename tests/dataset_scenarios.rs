//! Real-dataset scenario suite: the checked-in fixtures under
//! `tests/fixtures/` (a SIFT-style fvecs file and the same points as an
//! attribute-labeled CSV) are ingested through `iq-data` and queried
//! through every engine, with attribute-filtered k-NN and pagination
//! checked bit-for-bit against the filter-then-scan oracle — on clean
//! devices and behind a fault-injecting stack.
//!
//! The filtered contract under test is the Lance-style one: `k` counts
//! results *after* filtering, every returned distance is exact, and
//! `limit`/`offset` slice the canonically ordered (distance, then id)
//! result list so disjoint offsets paginate without overlap or gaps.

use iqtree_repro::data::{self, Predicate, VectorDataset};
use iqtree_repro::engine::{knn_paginated, AccessMethod, Filter, PageSpec};
use iqtree_repro::geometry::{Dataset, Metric};
use iqtree_repro::storage::{
    BlockDevice, DeviceStack, FaultConfig, MemDevice, RetryPolicy, SimClock,
};
use iqtree_repro::{build_engine, EngineKind};
use std::path::Path;

fn fixture(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The ingested fixture: 600 8-d CAD-style points with `label` (id mod 5)
/// and `weight` ((id * 37) mod 100) attribute columns.
fn ingested() -> VectorDataset {
    data::read_auto(&fixture("cad600_8d.csv")).expect("ingest csv fixture")
}

/// Query points for the suite — fixture points re-used as queries keeps
/// the suite free of any RNG while still hitting dense regions.
fn queries(ds: &Dataset) -> Vec<Vec<f32>> {
    [3usize, 127, 304, 451, 598]
        .into_iter()
        .map(|i| ds.point(i).to_vec())
        .collect()
}

/// The predicates of the filtered workload, spanning loose to tight
/// selectivity over both attribute columns.
fn predicates() -> Vec<&'static str> {
    vec!["label in 1,3", "weight range 10..60", "label = 0"]
}

fn build_all(
    ds: &Dataset,
    metric: Metric,
    mut make_dev: impl FnMut() -> Box<dyn BlockDevice>,
) -> Vec<Box<dyn AccessMethod>> {
    EngineKind::ALL
        .iter()
        .map(|&kind| {
            let mut clock = SimClock::default();
            build_engine(kind, ds, metric, &mut make_dev, &mut clock)
        })
        .collect()
}

fn plain_dev() -> Box<dyn BlockDevice> {
    Box::new(MemDevice::new(4096))
}

/// Canonical form of a k-NN result: ordered by (distance, id), distances
/// compared bitwise.
fn canon(mut hits: Vec<(u32, f64)>) -> Vec<(u32, u64)> {
    hits.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("no NaN distances")
            .then(a.0.cmp(&b.0))
    });
    hits.into_iter().map(|(id, d)| (id, d.to_bits())).collect()
}

#[test]
fn fvecs_and_csv_fixtures_ingest_to_the_same_points() {
    let from_csv = ingested();
    let from_fvecs = data::read_auto(&fixture("cad600_8d.fvecs")).expect("ingest fvecs fixture");
    assert_eq!(from_csv.points.len(), 600);
    assert_eq!(from_csv.points.dim(), 8);
    assert_eq!(from_fvecs.points.len(), from_csv.points.len());
    assert_eq!(from_fvecs.points.dim(), from_csv.points.dim());
    for i in 0..from_csv.points.len() {
        assert_eq!(
            from_fvecs.points.point(i),
            from_csv.points.point(i),
            "point {i} differs between the fvecs and csv fixtures"
        );
    }
    // The fvecs file carries no attributes; the CSV fixture carries the
    // two columns the filtered workloads use.
    assert!(from_fvecs.attrs.names().is_empty());
    assert_eq!(from_csv.attrs.names(), ["label", "weight"]);
    assert_eq!(from_csv.attrs.len(), 600);
    assert_eq!(from_csv.attrs.row(7), vec![2, 59]); // 7 % 5, (7 * 37) % 100
}

/// The tentpole check: on the ingested real-format dataset, all four
/// engines return identical filtered k-NN results — distances bitwise
/// equal to the filter-then-scan oracle — for every metric, predicate
/// and k, and `k` counts post-filter results.
fn assert_filtered_conformance(
    vd: &VectorDataset,
    make_dev: impl FnMut() -> Box<dyn BlockDevice> + Clone,
    tag: &str,
) {
    let qs = queries(&vd.points);
    for metric in [Metric::Euclidean, Metric::Maximum, Metric::Manhattan] {
        let engines = build_all(&vd.points, metric, make_dev.clone());
        let scan = engines
            .iter()
            .find(|e| e.name() == "scan")
            .expect("scan engine present");
        for expr in predicates() {
            let filter = Predicate::parse(expr)
                .expect("predicate parses")
                .compile(&vd.attrs)
                .expect("predicate compiles");
            assert!(filter.matching() > 0, "{tag}: `{expr}` matches nothing");
            for &k in &[1usize, 5, 20] {
                for (qi, q) in qs.iter().enumerate() {
                    let mut clock = SimClock::default();
                    // The scan's filtered k-NN *is* filter-then-scan: one
                    // sweep, predicate applied before distance ranking.
                    let want = canon(scan.knn_filtered(&mut clock, q, k, Some(&filter)));
                    assert_eq!(
                        want.len(),
                        k.min(filter.matching()),
                        "{tag} {metric:?} `{expr}` k={k}: k counts post-filter results"
                    );
                    // Every result must actually satisfy the predicate.
                    for &(id, _) in &want {
                        assert!(filter.matches(id));
                    }
                    for eng in &engines {
                        if eng.name() == "scan" {
                            continue;
                        }
                        let got = canon(eng.knn_filtered(&mut clock, q, k, Some(&filter)));
                        assert_eq!(
                            got,
                            want,
                            "{tag} {} {metric:?} `{expr}` k={k} query {qi}",
                            eng.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn filtered_knn_matches_filter_then_scan_oracle_on_clean_devices() {
    assert_filtered_conformance(&ingested(), plain_dev, "clean");
}

#[test]
fn filtered_knn_matches_filter_then_scan_oracle_under_injected_faults() {
    let vd = ingested();
    // Every engine file — the oracle's included — sits behind a stack
    // injecting transient faults on ~5% of operations, absorbed by the
    // retry layer above it. Deterministic: the schedule is seeded.
    let retry = RetryPolicy {
        max_attempts: 8,
        ..RetryPolicy::default()
    };
    let seed = std::cell::Cell::new(0u64);
    let faulty = move || -> Box<dyn BlockDevice> {
        seed.set(seed.get() + 1);
        // 10% per-op: the fixture is small (few blocks per engine file),
        // so a higher rate than the big conformance suite's 5% keeps the
        // expected number of injected faults comfortably positive.
        DeviceStack::new(Box::new(MemDevice::new(4096)))
            .faults(FaultConfig::transient(seed.get(), 0.1))
            .retry(retry)
            .build()
    };
    // Sanity: the stack actually injects (and absorbs) faults.
    let engines = build_all(&vd.points, Metric::Euclidean, faulty.clone());
    let mut clock = SimClock::default();
    let filter = Filter::from_fn(vd.points.len(), |id| id % 2 == 0);
    for eng in &engines {
        for q in queries(&vd.points) {
            eng.knn_filtered(&mut clock, &q, 20, Some(&filter));
        }
    }
    assert!(clock.stats().io_retries > 0, "faults were never injected");
    assert_filtered_conformance(&vd, faulty, "faulty");
}

/// Pagination: `limit`/`offset` windows slice the same canonically ordered
/// universe on every engine — disjoint offsets tile the full top-k list
/// exactly, with no overlap, gap or reordering, clean and faulty alike.
#[test]
fn pagination_tiles_the_filtered_result_on_every_engine() {
    let vd = ingested();
    let filter = Predicate::parse("weight range 10..60")
        .expect("parses")
        .compile(&vd.attrs)
        .expect("compiles");
    let q = vd.points.point(127).to_vec();
    const K: usize = 24;
    for eng in build_all(&vd.points, Metric::Euclidean, plain_dev) {
        let mut clock = SimClock::default();
        let full = knn_paginated(
            eng.as_ref(),
            &mut clock,
            &q,
            Some(&filter),
            &PageSpec::top(K),
        );
        assert_eq!(full.len(), K.min(filter.matching()), "{}", eng.name());
        // Strictly canonically ordered: ascending distance, ties by id.
        for w in full.windows(2) {
            assert!(
                w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                "{} result not canonically ordered",
                eng.name()
            );
        }
        let mut tiled = Vec::new();
        for offset in (0..K).step_by(7) {
            let page = knn_paginated(
                eng.as_ref(),
                &mut clock,
                &q,
                Some(&filter),
                &PageSpec {
                    k: K,
                    offset,
                    limit: Some(7),
                },
            );
            assert!(page.len() <= 7);
            tiled.extend(page);
        }
        assert_eq!(tiled, full, "{} pages do not tile the top-{K}", eng.name());
        // An offset past the end yields an empty page, not an error.
        let empty = knn_paginated(
            eng.as_ref(),
            &mut clock,
            &q,
            Some(&filter),
            &PageSpec {
                k: K,
                offset: K + 1,
                limit: None,
            },
        );
        assert!(empty.is_empty(), "{}", eng.name());
    }
}

/// An unfiltered paginated query equals a filtered one whose filter
/// matches everything, and `None` is exactly the plain k-NN.
#[test]
fn trivial_filters_reduce_to_plain_knn() {
    let vd = ingested();
    let q = vd.points.point(3).to_vec();
    let all = Filter::from_fn(vd.points.len(), |_| true);
    for eng in build_all(&vd.points, Metric::Manhattan, plain_dev) {
        let mut clock = SimClock::default();
        let plain = canon(eng.knn(&mut clock, &q, 12));
        let via_none = canon(eng.knn_filtered(&mut clock, &q, 12, None));
        let via_all = canon(eng.knn_filtered(&mut clock, &q, 12, Some(&all)));
        assert_eq!(via_none, plain, "{}", eng.name());
        assert_eq!(via_all, plain, "{}", eng.name());
        // Empty filter: no results, regardless of k.
        let none = Filter::from_fn(vd.points.len(), |_| false);
        assert!(eng.knn_filtered(&mut clock, &q, 12, Some(&none)).is_empty());
    }
}
