//! Engine-layer conformance: every [`AccessMethod`] — IQ-tree, VA-file,
//! X-tree — must agree *exactly* with the sequential scan on the same
//! clustered workload, for every supported metric and query type, and the
//! shared batch executor must be thread-count-invariant for each of them.
//! A final test drives the baselines through a [`DeviceStack`] injecting
//! transient faults: with the retry layer in the stack, results must still
//! match the scan bit for bit.

use iqtree_repro::data;
use iqtree_repro::engine::{knn_batch, AccessMethod};
use iqtree_repro::geometry::{Dataset, Mbr, Metric};
use iqtree_repro::storage::{
    BlockDevice, DeviceStack, FaultConfig, MemDevice, RetryPolicy, SimClock,
};
use iqtree_repro::{build_engine, EngineKind};

const N: usize = 5_000;
const DIM: usize = 8;

/// The clustered dataset the suite runs on (CAD analogue: moderately
/// clustered Fourier coefficients) plus held-out query points.
fn clustered() -> (Dataset, Vec<Vec<f32>>) {
    let w = iqtree_repro::data::Workload::generate(N, 6, |n| data::cad_like(DIM, n, 77));
    let queries: Vec<Vec<f32>> = w.queries.iter().map(<[f32]>::to_vec).collect();
    (w.db, queries)
}

fn metrics() -> [Metric; 3] {
    [Metric::Euclidean, Metric::Maximum, Metric::Manhattan]
}

fn plain_dev() -> Box<dyn BlockDevice> {
    Box::new(MemDevice::new(4096))
}

/// Builds all four engines over `ds` with `make_dev` devices.
fn build_all(
    ds: &Dataset,
    metric: Metric,
    mut make_dev: impl FnMut() -> Box<dyn BlockDevice>,
) -> Vec<Box<dyn AccessMethod>> {
    EngineKind::ALL
        .iter()
        .map(|&kind| {
            let mut clock = SimClock::default();
            build_engine(kind, ds, metric, &mut make_dev, &mut clock)
        })
        .collect()
}

/// Sorts a k-NN result so engines that break exact-distance ties
/// differently remain comparable; distances themselves must be identical.
fn canon(mut hits: Vec<(u32, f64)>) -> Vec<(u32, u64)> {
    hits.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("no NaN distances")
            .then(a.0.cmp(&b.0))
    });
    hits.into_iter().map(|(id, d)| (id, d.to_bits())).collect()
}

fn assert_engines_match_scan(engines: &[Box<dyn AccessMethod>], queries: &[Vec<f32>], tag: &str) {
    let scan = engines
        .iter()
        .find(|e| e.name() == "scan")
        .expect("scan engine present");
    let mut clock = SimClock::default();
    for (qi, q) in queries.iter().enumerate() {
        // k-NN: identical distances (bitwise), ids up to tie order.
        let want_knn = canon(scan.knn(&mut clock, q, 10));
        // Range at the 15th-NN distance (inflated so the boundary point
        // survives the key <-> distance round-trip).
        let radius = scan.knn(&mut clock, q, 15).last().expect("15 hits").1 * (1.0 + 1e-9);
        let mut want_range = scan.range(&mut clock, q, radius);
        want_range.sort_unstable();
        // Window: a box of half-width 0.15 around the query point.
        let lo: Vec<f32> = q.iter().map(|c| c - 0.15).collect();
        let hi: Vec<f32> = q.iter().map(|c| c + 0.15).collect();
        let win = Mbr::from_bounds(lo, hi);
        let mut want_win = scan.window(&mut clock, &win);
        want_win.sort_unstable();

        for eng in engines {
            if eng.name() == "scan" {
                continue;
            }
            let got_knn = canon(eng.knn(&mut clock, q, 10));
            assert_eq!(got_knn, want_knn, "{tag} {} knn query {qi}", eng.name());
            let mut got_range = eng.range(&mut clock, q, radius);
            got_range.sort_unstable();
            assert_eq!(
                got_range,
                want_range,
                "{tag} {} range query {qi}",
                eng.name()
            );
            let mut got_win = eng.window(&mut clock, &win);
            got_win.sort_unstable();
            assert_eq!(got_win, want_win, "{tag} {} window query {qi}", eng.name());
        }
    }
}

#[test]
fn all_engines_agree_with_scan_on_every_metric() {
    let (ds, queries) = clustered();
    for metric in metrics() {
        let engines = build_all(&ds, metric, plain_dev);
        assert_engines_match_scan(&engines, &queries, &format!("{metric:?}"));
    }
}

#[test]
fn batch_executor_is_thread_count_invariant_per_engine() {
    let (ds, queries) = clustered();
    let engines = build_all(&ds, Metric::Euclidean, plain_dev);
    for eng in &engines {
        let mut runs = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut clock = SimClock::default();
            let results = knn_batch(eng.as_ref(), &mut clock, &queries, 7, threads);
            runs.push((threads, results, clock.stats(), clock.total_time()));
        }
        let (_, r1, s1, t1) = &runs[0];
        for (threads, r, s, t) in &runs[1..] {
            // Byte-identical results and identical simulated cost,
            // regardless of how the batch was fanned out.
            assert_eq!(r, r1, "{} differs at {threads} threads", eng.name());
            assert_eq!(s, s1, "{} stats differ at {threads} threads", eng.name());
            assert_eq!(t, t1, "{} time differs at {threads} threads", eng.name());
        }
    }
}

#[test]
fn engines_agree_with_scan_under_injected_transient_faults() {
    let (ds, queries) = clustered();
    // Every engine file — the scan oracle's included — sits behind a
    // device stack injecting transient faults on ~5% of operations,
    // absorbed by the retry layer above. A generous attempt budget keeps
    // the chance of an unrecovered fault negligible (0.05^8); the fault
    // schedule is seeded, so the test is fully deterministic either way.
    let retry = RetryPolicy {
        max_attempts: 8,
        ..RetryPolicy::default()
    };
    let mut seed = 0u64;
    let faulty = move || -> Box<dyn BlockDevice> {
        seed += 1;
        DeviceStack::new(Box::new(MemDevice::new(4096)))
            .faults(FaultConfig::transient(seed, 0.05))
            .retry(retry)
            .build()
    };
    let engines = build_all(&ds, Metric::Euclidean, faulty);
    // Sanity: the workload actually exercised the fault path.
    let mut clock = SimClock::default();
    for eng in &engines {
        eng.knn(&mut clock, &queries[0], 5);
    }
    assert!(clock.stats().io_retries > 0, "faults were never injected");
    assert_engines_match_scan(&engines, &queries, "faulty");
}
