//! Integration: the IQ-tree behaves identically on real files and on
//! in-memory devices — same results, same simulated costs (the clock, not
//! the backend, is the source of truth for cost).

use iqtree_repro::data::{self, Workload};
use iqtree_repro::geometry::Metric;
use iqtree_repro::storage::{BlockDevice, FileDevice, MemDevice, SimClock};
use iqtree_repro::tree::{IqTree, IqTreeOptions};
use std::path::PathBuf;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "iqtree-file-backed-{}-{}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-")
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn file_and_memory_backends_agree() {
    let w = Workload::generate(4_000, 6, |n| data::uniform(6, n, 17));
    let dir = temp_dir();

    let mut mem_clock = SimClock::default();
    let mem_tree = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || Box::new(MemDevice::new(4096)),
        &mut mem_clock,
    );

    let mut counter = 0;
    let mut file_clock = SimClock::default();
    let file_tree = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || {
            counter += 1;
            let path = dir.join(format!("f{counter}.bin"));
            Box::new(FileDevice::create(&path, 4096).expect("create device file"))
                as Box<dyn BlockDevice>
        },
        &mut file_clock,
    );

    // Identical build costs.
    assert_eq!(mem_clock.io_time(), file_clock.io_time());
    assert_eq!(mem_clock.stats(), file_clock.stats());
    assert_eq!(mem_tree.num_pages(), file_tree.num_pages());

    // Identical query results and costs.
    for q in w.queries.iter() {
        mem_clock.reset();
        file_clock.reset();
        let a = mem_tree.knn(&mut mem_clock, q, 5);
        let b = file_tree.knn(&mut file_clock, q, 5);
        assert_eq!(a, b);
        assert_eq!(mem_clock.io_time(), file_clock.io_time());
        assert_eq!(mem_clock.stats(), file_clock.stats());
    }

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn file_backed_updates_persist_within_session() {
    let w = Workload::generate(2_000, 2, |n| data::uniform(4, n, 23));
    let dir = temp_dir();
    let mut counter = 0;
    let mut clock = SimClock::default();
    let mut tree = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || {
            counter += 1;
            let path = dir.join(format!("g{counter}.bin"));
            Box::new(FileDevice::create(&path, 4096).expect("create device file"))
                as Box<dyn BlockDevice>
        },
        &mut clock,
    );
    let p = [0.123f32, 0.456, 0.789, 0.5];
    tree.insert(&mut clock, 777_777, &p);
    let (id, d) = tree.nearest(&mut clock, &p).expect("non-empty");
    assert_eq!(id, 777_777);
    assert!(d < 1e-6);
    assert!(tree.delete(&mut clock, 777_777, &p));
    let (id2, _) = tree.nearest(&mut clock, &p).expect("non-empty");
    assert_ne!(id2, 777_777);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
