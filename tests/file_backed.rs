//! Integration: the IQ-tree behaves identically on real files and on
//! in-memory devices — same results, same simulated costs (the clock, not
//! the backend, is the source of truth for cost).

use iqtree_repro::data::{self, Workload};
use iqtree_repro::geometry::Metric;
use iqtree_repro::storage::{
    BlockDevice, ChecksummedDevice, FileDevice, IqError, MemDevice, MmapFileDevice, SimClock,
};
use iqtree_repro::tree::{IqTree, IqTreeOptions};
use std::path::PathBuf;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "iqtree-file-backed-{}-{}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-")
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn file_and_memory_backends_agree() {
    let w = Workload::generate(4_000, 6, |n| data::uniform(6, n, 17));
    let dir = temp_dir();

    let mut mem_clock = SimClock::default();
    let mem_tree = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || Box::new(MemDevice::new(4096)),
        &mut mem_clock,
    );

    let mut counter = 0;
    let mut file_clock = SimClock::default();
    let file_tree = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || {
            counter += 1;
            let path = dir.join(format!("f{counter}.bin"));
            Box::new(FileDevice::create(&path, 4096).expect("create device file"))
                as Box<dyn BlockDevice>
        },
        &mut file_clock,
    );

    // Identical build costs.
    assert_eq!(mem_clock.io_time(), file_clock.io_time());
    assert_eq!(mem_clock.stats(), file_clock.stats());
    assert_eq!(mem_tree.num_pages(), file_tree.num_pages());

    // Identical query results and costs.
    for q in w.queries.iter() {
        mem_clock.reset();
        file_clock.reset();
        let a = mem_tree.knn(&mut mem_clock, q, 5);
        let b = file_tree.knn(&mut file_clock, q, 5);
        assert_eq!(a, b);
        assert_eq!(mem_clock.io_time(), file_clock.io_time());
        assert_eq!(mem_clock.stats(), file_clock.stats());
    }

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn file_backed_updates_persist_within_session() {
    let w = Workload::generate(2_000, 2, |n| data::uniform(4, n, 23));
    let dir = temp_dir();
    let mut counter = 0;
    let mut clock = SimClock::default();
    let mut tree = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || {
            counter += 1;
            let path = dir.join(format!("g{counter}.bin"));
            Box::new(FileDevice::create(&path, 4096).expect("create device file"))
                as Box<dyn BlockDevice>
        },
        &mut clock,
    );
    let p = [0.123f32, 0.456, 0.789, 0.5];
    tree.insert(&mut clock, 777_777, &p).unwrap();
    let (id, d) = tree.nearest(&mut clock, &p).expect("non-empty");
    assert_eq!(id, 777_777);
    assert!(d < 1e-6);
    assert!(tree.delete(&mut clock, 777_777, &p).unwrap());
    let (id2, _) = tree.nearest(&mut clock, &p).expect("non-empty");
    assert_ne!(id2, 777_777);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The ingestion path end to end: an fvecs dump whose length is not a
/// block multiple is opened read-only via [`MmapFileDevice`], read block
/// by block (the final partial block zero-padded), and decodes back to
/// exactly the dataset that was written.
#[test]
fn mmap_device_ingests_a_partial_final_block_fvecs_file() {
    let ds = data::cad_like(7, 123, 99); // 123 * (4 + 7*4) = 3936 bytes
    let dir = temp_dir();
    let path = dir.join("vectors.fvecs");
    data::write_fvecs(&path, &ds).expect("write fvecs");

    let file_len = std::fs::metadata(&path).unwrap().len();
    assert_ne!(file_len % 1024, 0, "fixture must end mid-block");

    let dev = MmapFileDevice::open(&path, 1024).expect("open mmap device");
    assert_eq!(dev.file_len(), file_len);
    assert_eq!(dev.num_blocks(), file_len.div_ceil(1024));

    let mut clock = SimClock::default();
    let mut bytes = dev
        .read_to_vec(&mut clock, 0, dev.num_blocks())
        .expect("read whole device");
    // Everything past the real file length is padding, not garbage.
    assert!(bytes[file_len as usize..].iter().all(|&b| b == 0));
    bytes.truncate(file_len as usize);

    let decoded = data::ingest::decode_fvecs(&bytes).expect("decode fvecs");
    assert_eq!(decoded.len(), ds.len());
    assert_eq!(decoded.dim(), ds.dim());
    for i in 0..ds.len() {
        assert_eq!(decoded.point(i), ds.point(i), "point {i} round-trips");
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Reads take `&self`, so one device can serve many query threads at
/// once. Every thread must see the same bytes and be charged the same
/// simulated cost as a single-threaded baseline.
#[test]
fn mmap_device_serves_concurrent_readers() {
    let dir = temp_dir();
    let path = dir.join("shared.bin");
    let data: Vec<u8> = (0..8192u32).map(|i| (i * 31 % 257) as u8).collect();
    std::fs::write(&path, &data).unwrap();

    let dev = MmapFileDevice::open(&path, 512).expect("open mmap device");
    let mut baseline_clock = SimClock::default();
    let baseline = dev
        .read_to_vec(&mut baseline_clock, 0, dev.num_blocks())
        .expect("baseline read");

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let dev = &dev;
                let baseline = &baseline;
                s.spawn(move || {
                    let mut clock = SimClock::default();
                    // Overlapping ranges on purpose: readers race on the
                    // same blocks, not disjoint partitions.
                    let start = (t % 4) as u64;
                    let n = dev.num_blocks() - start;
                    let got = dev.read_to_vec(&mut clock, start, n).expect("read");
                    assert_eq!(
                        got,
                        baseline[(start as usize) * 512..],
                        "thread {t} saw different bytes"
                    );
                    let mut solo = SimClock::default();
                    dev.read_to_vec(&mut solo, start, n).expect("re-read");
                    assert_eq!(clock.io_time(), solo.io_time());
                    assert_eq!(clock.stats(), solo.stats());
                })
            })
            .collect();
        for h in handles {
            h.join().expect("reader thread panicked");
        }
    });
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Checksum-layer compatibility: blocks written through a
/// `ChecksummedDevice` over a read-write [`FileDevice`] verify when the
/// same file is reopened read-only through [`MmapFileDevice`] under the
/// same checksum layer — and a flipped bit on disk is caught, not served.
#[test]
fn mmap_device_is_compatible_with_the_checksum_layer() {
    let dir = temp_dir();
    let path = dir.join("summed.bin");
    let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 253) as u8).collect();

    let mut writer = ChecksummedDevice::new(Box::new(
        FileDevice::create(&path, 4096).expect("create device file"),
    ));
    let mut clock = SimClock::default();
    writer.append(&mut clock, &payload).expect("append payload");
    let logical_bs = writer.block_size();
    let nblocks = writer.num_blocks();
    drop(writer);

    // Reopen the raw file read-only; the checksum layer sits above the
    // mmap device exactly as it sat above the file device.
    let reader = ChecksummedDevice::new(Box::new(
        MmapFileDevice::open(&path, 4096).expect("reopen via mmap"),
    ));
    assert_eq!(reader.block_size(), logical_bs);
    assert_eq!(reader.num_blocks(), nblocks);
    let mut clock = SimClock::default();
    let got = reader
        .read_to_vec(&mut clock, 0, nblocks)
        .expect("checksums verify through the mmap device");
    assert_eq!(&got[..payload.len()], &payload[..]);
    assert!(got[payload.len()..].iter().all(|&b| b == 0));
    drop(reader);

    // Flip one payload bit on disk; the mmap path must now fail the
    // checksum instead of returning corrupt bytes.
    let mut raw = std::fs::read(&path).unwrap();
    raw[100] ^= 0x40;
    std::fs::write(&path, &raw).unwrap();
    let reader = ChecksummedDevice::new(Box::new(
        MmapFileDevice::open(&path, 4096).expect("reopen corrupted file"),
    ));
    let mut clock = SimClock::default();
    match reader.read_to_vec(&mut clock, 0, 1) {
        Err(IqError::ChecksumMismatch { block: 0, .. }) => {}
        other => panic!("expected a checksum mismatch on block 0, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
