//! End-to-end test of the `iq` command-line tool: generate → build →
//! query → range → stats on real files.

use std::path::PathBuf;
use std::process::Command;

fn iq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_iq"))
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iq-cli-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn generate_build_query_roundtrip() {
    let dir = temp_dir();
    let csv = dir.join("pts.csv");
    let idx = dir.join("idx");

    let out = iq()
        .args(["generate", "--kind", "uniform", "--dim", "4", "--n", "3000"])
        .args(["--seed", "7", "--out", csv.to_str().expect("utf8 path")])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = iq()
        .args(["build", "--input", csv.to_str().expect("utf8")])
        .args(["--index", idx.to_str().expect("utf8"), "--block", "2048"])
        .output()
        .expect("run build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("built IQ-tree over 3000 points"),
        "{stdout}"
    );

    let out = iq()
        .args(["query", "--index", idx.to_str().expect("utf8")])
        .args(["--point", "0.5,0.5,0.5,0.5", "--k", "3"])
        .output()
        .expect("run query");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("distance").count(), 3, "{stdout}");

    let out = iq()
        .args(["range", "--index", idx.to_str().expect("utf8")])
        .args(["--point", "0.5,0.5,0.5,0.5", "--radius", "0.2"])
        .output()
        .expect("run range");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = iq()
        .args(["stats", "--index", idx.to_str().expect("utf8")])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("points      : 3000"), "{stdout}");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn verify_detects_on_disk_corruption() {
    let dir = temp_dir();
    let csv = dir.join("v.csv");
    let idx = dir.join("vidx");
    let out = iq()
        .args(["generate", "--kind", "uniform", "--dim", "4", "--n", "2000"])
        .args(["--seed", "11", "--out", csv.to_str().expect("utf8")])
        .output()
        .expect("run generate");
    assert!(out.status.success());
    let out = iq()
        .args(["build", "--input", csv.to_str().expect("utf8")])
        .args(["--index", idx.to_str().expect("utf8"), "--block", "1024"])
        .output()
        .expect("run build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Clean index verifies clean, exit code 0.
    let out = iq()
        .args(["verify", "--index", idx.to_str().expect("utf8")])
        .output()
        .expect("run verify");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("index is clean"), "{stdout}");
    assert!(stdout.contains("quantized"), "{stdout}");

    // Flip one bit in the middle of the quantized file: nonzero exit and
    // the corrupt block named.
    let quant = idx.join("quant.bin");
    let mut bytes = std::fs::read(&quant).expect("read quant file");
    let target_block = bytes.len() / 1024 / 2;
    bytes[target_block * 1024 + 100] ^= 0x10;
    std::fs::write(&quant, bytes).expect("rewrite quant file");

    let out = iq()
        .args(["verify", "--index", idx.to_str().expect("utf8")])
        .output()
        .expect("run verify");
    assert!(!out.status.success(), "corruption must fail verification");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&format!("corrupt block {target_block}")),
        "{stdout}"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("index is corrupt"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn bench_subcommand_runs() {
    let dir = temp_dir();
    let csv = dir.join("b.csv");
    let out = iq()
        .args(["generate", "--kind", "uniform", "--dim", "5", "--n", "2000"])
        .args(["--seed", "2", "--out", csv.to_str().expect("utf8")])
        .output()
        .expect("run generate");
    assert!(out.status.success());
    let out = iq()
        .args([
            "bench",
            "--input",
            csv.to_str().expect("utf8"),
            "--queries",
            "5",
        ])
        .output()
        .expect("run bench");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["IQ-tree", "X-tree", "VA-file", "sequential scan"] {
        assert!(
            stdout.contains(name),
            "missing {name} in:
{stdout}"
        );
    }
    assert!(
        stdout.contains("quantized-domain filter"),
        "missing kernel throughput line in:\n{stdout}"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn helpful_errors() {
    // Unknown command.
    let out = iq().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing flag.
    let out = iq().args(["generate", "--dim", "3"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --kind"));

    // Dimensionality mismatch on query.
    let dir = temp_dir();
    let csv = dir.join("p.csv");
    std::fs::write(&csv, "0.1,0.2\n0.3,0.4\n0.5,0.6\n").expect("write csv");
    let idx = dir.join("i");
    let out = iq()
        .args(["build", "--input", csv.to_str().expect("utf8")])
        .args(["--index", idx.to_str().expect("utf8"), "--block", "1024"])
        .output()
        .expect("run build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = iq()
        .args([
            "query",
            "--index",
            idx.to_str().expect("utf8"),
            "--point",
            "0.1,0.2,0.3",
        ])
        .output()
        .expect("run query");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("index is 2-d"));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
