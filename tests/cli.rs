//! End-to-end test of the `iq` command-line tool: generate → build →
//! query → range → stats on real files, plus the durability commands
//! (`checkpoint`, `recover`) on a write-ahead log with a torn tail.

use std::path::PathBuf;
use std::process::Command;

fn iq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_iq"))
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iq-cli-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn temp_dir_tagged(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iq-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn generate_build_query_roundtrip() {
    let dir = temp_dir();
    let csv = dir.join("pts.csv");
    let idx = dir.join("idx");

    let out = iq()
        .args(["generate", "--kind", "uniform", "--dim", "4", "--n", "3000"])
        .args(["--seed", "7", "--out", csv.to_str().expect("utf8 path")])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = iq()
        .args(["build", "--input", csv.to_str().expect("utf8")])
        .args(["--index", idx.to_str().expect("utf8"), "--block", "2048"])
        .output()
        .expect("run build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("built IQ-tree over 3000 points"),
        "{stdout}"
    );

    let out = iq()
        .args(["query", "--index", idx.to_str().expect("utf8")])
        .args(["--point", "0.5,0.5,0.5,0.5", "--k", "3"])
        .output()
        .expect("run query");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("distance").count(), 3, "{stdout}");

    let out = iq()
        .args(["range", "--index", idx.to_str().expect("utf8")])
        .args(["--point", "0.5,0.5,0.5,0.5", "--radius", "0.2"])
        .output()
        .expect("run range");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = iq()
        .args(["stats", "--index", idx.to_str().expect("utf8")])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("points      : 3000"), "{stdout}");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn verify_detects_on_disk_corruption() {
    let dir = temp_dir();
    let csv = dir.join("v.csv");
    let idx = dir.join("vidx");
    let out = iq()
        .args(["generate", "--kind", "uniform", "--dim", "4", "--n", "2000"])
        .args(["--seed", "11", "--out", csv.to_str().expect("utf8")])
        .output()
        .expect("run generate");
    assert!(out.status.success());
    let out = iq()
        .args(["build", "--input", csv.to_str().expect("utf8")])
        .args(["--index", idx.to_str().expect("utf8"), "--block", "1024"])
        .output()
        .expect("run build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Clean index verifies clean, exit code 0.
    let out = iq()
        .args(["verify", "--index", idx.to_str().expect("utf8")])
        .output()
        .expect("run verify");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("index is clean"), "{stdout}");
    assert!(stdout.contains("quantized"), "{stdout}");

    // Flip one bit in the middle of the quantized file: nonzero exit and
    // the corrupt block named.
    let quant = idx.join("quant.bin");
    let mut bytes = std::fs::read(&quant).expect("read quant file");
    let target_block = bytes.len() / 1024 / 2;
    bytes[target_block * 1024 + 100] ^= 0x10;
    std::fs::write(&quant, bytes).expect("rewrite quant file");

    let out = iq()
        .args(["verify", "--index", idx.to_str().expect("utf8")])
        .output()
        .expect("run verify");
    assert!(!out.status.success(), "corruption must fail verification");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&format!("corrupt block {target_block}")),
        "{stdout}"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("index is corrupt"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The durability surface end to end: `build` creates the log, `stats`
/// reports generation and log size, `checkpoint` bumps the generation,
/// and `recover` (dry-run first) cleans a log with an uncommitted frame
/// and a torn tail that `verify` flags beforehand.
#[test]
fn checkpoint_and_recover_handle_a_torn_wal() {
    let dir = temp_dir_tagged("durability");
    let csv = dir.join("d.csv");
    let idx = dir.join("didx");
    let run = |args: &[&str]| {
        let out = iq().args(args).output().expect("run iq");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).to_string(),
            String::from_utf8_lossy(&out.stderr).to_string(),
        )
    };
    let idx_s = idx.to_str().expect("utf8").to_string();

    let (ok, _, err) = run(&[
        "generate",
        "--kind",
        "uniform",
        "--dim",
        "3",
        "--n",
        "1500",
        "--seed",
        "5",
        "--out",
        csv.to_str().expect("utf8"),
    ]);
    assert!(ok, "{err}");
    let (ok, _, err) = run(&[
        "build",
        "--input",
        csv.to_str().expect("utf8"),
        "--index",
        &idx_s,
        "--block",
        "1024",
    ]);
    assert!(ok, "{err}");
    assert!(idx.join("wal.bin").exists(), "build creates the log");

    let (ok, stdout, _) = run(&["stats", "--index", &idx_s]);
    assert!(ok);
    assert!(stdout.contains("generation  : 0"), "{stdout}");
    assert!(stdout.contains("0 byte(s) pending"), "{stdout}");

    let (ok, stdout, err) = run(&["checkpoint", "--index", &idx_s]);
    assert!(ok, "{err}");
    assert!(stdout.contains("generation 1"), "{stdout}");
    let (ok, stdout, _) = run(&["stats", "--index", &idx_s]);
    assert!(ok);
    assert!(stdout.contains("generation  : 1"), "{stdout}");

    // Tear the log: one valid-but-uncommitted frame, then garbage bytes —
    // the on-disk state after a crash mid-transaction.
    let wal_path = idx.join("wal.bin");
    let mut log = std::fs::read(&wal_path).expect("read log");
    assert!(log.is_empty(), "checkpoint left the log empty");
    iqtree_repro::wal::encode_frame(
        &mut log,
        0,
        &iqtree_repro::wal::WalRecord::Insert {
            id: 42,
            point: vec![0.1, 0.2, 0.3],
        },
    );
    log.extend_from_slice(&[0xAB; 37]);
    std::fs::write(&wal_path, &log).expect("write torn log");

    // `verify` sees the dirty log and fails.
    let (ok, stdout, err) = run(&["verify", "--index", &idx_s]);
    assert!(!ok, "a dirty log must fail verification");
    assert!(stdout.contains("1 uncommitted frame(s)"), "{stdout}");
    assert!(stdout.contains("37 torn byte(s)"), "{stdout}");
    assert!(stdout.contains("needs recovery"), "{stdout}");
    assert!(err.contains("index is corrupt"), "{err}");

    // Dry run: describes the cleanup, touches nothing.
    let before = std::fs::read(&wal_path).expect("read log");
    let (ok, stdout, err) = run(&["recover", "--index", &idx_s, "--dry-run"]);
    assert!(ok, "{err}");
    assert!(
        stdout.contains("would discard 1 uncommitted frame(s)"),
        "{stdout}"
    );
    assert!(stdout.contains("would discard 37 torn byte(s)"), "{stdout}");
    assert!(stdout.contains("truncate the log to 0 byte(s)"), "{stdout}");
    assert_eq!(
        std::fs::read(&wal_path).expect("read log"),
        before,
        "--dry-run must not mutate the log"
    );

    // Real recovery truncates the log; verify is clean again and queries
    // still answer.
    let (ok, stdout, err) = run(&["recover", "--index", &idx_s]);
    assert!(ok, "{err}");
    assert!(stdout.contains("replayed 0 transaction(s)"), "{stdout}");
    assert_eq!(std::fs::metadata(&wal_path).expect("stat").len(), 0);
    let (ok, stdout, err) = run(&["verify", "--index", &idx_s]);
    assert!(ok, "{stdout}\n{err}");
    assert!(stdout.contains("index is clean"), "{stdout}");
    let (ok, stdout, err) = run(&[
        "query",
        "--index",
        &idx_s,
        "--point",
        "0.5,0.5,0.5",
        "--k",
        "2",
    ]);
    assert!(ok, "{err}");
    assert_eq!(stdout.matches("distance").count(), 2, "{stdout}");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn bench_subcommand_runs() {
    let dir = temp_dir();
    let csv = dir.join("b.csv");
    let out = iq()
        .args(["generate", "--kind", "uniform", "--dim", "5", "--n", "2000"])
        .args(["--seed", "2", "--out", csv.to_str().expect("utf8")])
        .output()
        .expect("run generate");
    assert!(out.status.success());
    let out = iq()
        .args([
            "bench",
            "--input",
            csv.to_str().expect("utf8"),
            "--queries",
            "5",
        ])
        .output()
        .expect("run bench");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["IQ-tree", "X-tree", "VA-file", "sequential scan"] {
        assert!(
            stdout.contains(name),
            "missing {name} in:
{stdout}"
        );
    }
    assert!(
        stdout.contains("quantized-domain filter"),
        "missing kernel throughput line in:\n{stdout}"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn helpful_errors() {
    // Unknown command.
    let out = iq().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing flag.
    let out = iq().args(["generate", "--dim", "3"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --kind"));

    // Dimensionality mismatch on query.
    let dir = temp_dir();
    let csv = dir.join("p.csv");
    std::fs::write(&csv, "0.1,0.2\n0.3,0.4\n0.5,0.6\n").expect("write csv");
    let idx = dir.join("i");
    let out = iq()
        .args(["build", "--input", csv.to_str().expect("utf8")])
        .args(["--index", idx.to_str().expect("utf8"), "--block", "1024"])
        .output()
        .expect("run build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = iq()
        .args([
            "query",
            "--index",
            idx.to_str().expect("utf8"),
            "--point",
            "0.1,0.2,0.3",
        ])
        .output()
        .expect("run query");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("index is 2-d"));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
