//! Cross-crate integration: the IQ-tree, X-tree, VA-file and sequential
//! scan must return identical exact results on every data distribution of
//! the paper's evaluation — they differ only in how much they pay to get
//! them.

use iqtree_repro::data::{self, Workload};
use iqtree_repro::geometry::{Dataset, Metric};
use iqtree_repro::scan::SeqScan;
use iqtree_repro::storage::{MemDevice, SimClock};
use iqtree_repro::tree::{IqTree, IqTreeOptions};
use iqtree_repro::vafile::VaFile;
use iqtree_repro::xtree::{XTree, XTreeOptions};

const N: usize = 6_000;
const QUERIES: usize = 8;

fn dev() -> Box<MemDevice> {
    Box::new(MemDevice::new(4096))
}

struct AllMethods {
    iq: IqTree,
    xt: XTree,
    va: VaFile,
    scan: SeqScan,
    clock: SimClock,
}

impl AllMethods {
    fn build(db: &Dataset) -> Self {
        let mut clock = SimClock::default();
        let iq = IqTree::build(
            db,
            Metric::Euclidean,
            IqTreeOptions::default(),
            || dev(),
            &mut clock,
        );
        let xt = XTree::build(
            db,
            Metric::Euclidean,
            XTreeOptions::default(),
            dev(),
            dev(),
            &mut clock,
        );
        let va = VaFile::build(db, Metric::Euclidean, 4, dev(), dev(), &mut clock);
        let scan = SeqScan::build(db, Metric::Euclidean, dev(), &mut clock);
        Self {
            iq,
            xt,
            va,
            scan,
            clock,
        }
    }
}

fn workloads() -> Vec<(&'static str, Workload)> {
    vec![
        (
            "uniform",
            Workload::generate(N, QUERIES, |n| data::uniform(8, n, 1)),
        ),
        (
            "cad",
            Workload::generate(N, QUERIES, |n| data::cad_like(16, n, 2)),
        ),
        (
            "color",
            Workload::generate(N, QUERIES, |n| data::color_like(16, n, 3)),
        ),
        (
            "weather",
            Workload::generate(N, QUERIES, |n| data::weather_like(9, n, 4)),
        ),
    ]
}

#[test]
fn nearest_neighbor_distances_agree() {
    for (name, w) in workloads() {
        let mut m = AllMethods::build(&w.db);
        for (qi, q) in w.queries.iter().enumerate() {
            let a = m.iq.nearest(&mut m.clock, q).expect("iq non-empty");
            let b = m.xt.nearest(&mut m.clock, q).expect("xt non-empty");
            let c = m.va.nearest(&mut m.clock, q).expect("va non-empty");
            let d = m.scan.nearest(&mut m.clock, q).expect("scan non-empty");
            for (tag, x) in [("xt", b.1), ("va", c.1), ("scan", d.1)] {
                assert!(
                    (a.1 - x).abs() < 1e-6,
                    "{name} query {qi}: iq {} vs {tag} {x}",
                    a.1
                );
            }
        }
    }
}

#[test]
fn knn_distance_sequences_agree() {
    const K: usize = 12;
    for (name, w) in workloads() {
        let mut m = AllMethods::build(&w.db);
        for (qi, q) in w.queries.iter().enumerate() {
            let a = m.iq.knn(&mut m.clock, q, K);
            let b = m.xt.knn(&mut m.clock, q, K);
            let c = m.va.knn(&mut m.clock, q, K);
            let d = m.scan.knn(&mut m.clock, q, K);
            assert_eq!(a.len(), K, "{name} query {qi}");
            for i in 0..K {
                for (tag, x) in [("xt", b[i].1), ("va", c[i].1), ("scan", d[i].1)] {
                    assert!(
                        (a[i].1 - x).abs() < 1e-6,
                        "{name} query {qi} rank {i}: iq {} vs {tag} {x}",
                        a[i].1
                    );
                }
            }
        }
    }
}

#[test]
fn range_query_id_sets_agree() {
    for (name, w) in workloads() {
        let mut m = AllMethods::build(&w.db);
        let q = w.queries.point(0);
        // Pick a radius that returns a non-trivial set: the 20th NN
        // distance.
        // Tiny inflation so the 20th neighbor survives the key <-> distance
        // round-trip at the boundary.
        let r = m
            .scan
            .knn(&mut m.clock, q, 20)
            .last()
            .expect("20 results")
            .1
            * (1.0 + 1e-9);
        let mut a = m.iq.range(&mut m.clock, q, r);
        let mut b = m.xt.range(&mut m.clock, q, r);
        let mut c = m.va.range(&mut m.clock, q, r);
        let mut d = m.scan.range(&mut m.clock, q, r);
        for v in [&mut a, &mut b, &mut c, &mut d] {
            v.sort_unstable();
        }
        assert_eq!(a, d, "{name}: iq vs scan");
        assert_eq!(b, d, "{name}: xt vs scan");
        assert_eq!(c, d, "{name}: va vs scan");
        assert!(d.len() >= 20, "{name}: radius captured the 20-NN set");
    }
}

#[test]
fn maximum_metric_agreement() {
    let w = Workload::generate(3_000, 5, |n| data::uniform(6, n, 9));
    let mut clock = SimClock::default();
    let iq = IqTree::build(
        &w.db,
        Metric::Maximum,
        IqTreeOptions::default(),
        || dev(),
        &mut clock,
    );
    let va = VaFile::build(&w.db, Metric::Maximum, 4, dev(), dev(), &mut clock);
    let scan = SeqScan::build(&w.db, Metric::Maximum, dev(), &mut clock);
    for q in w.queries.iter() {
        let a = iq.nearest(&mut clock, q).expect("non-empty").1;
        let b = va.nearest(&mut clock, q).expect("non-empty").1;
        let c = scan.nearest(&mut clock, q).expect("non-empty").1;
        assert!((a - c).abs() < 1e-6);
        assert!((b - c).abs() < 1e-6);
    }
}
