//! End-to-end fault injection: a tree built on clean files is queried
//! through a [`FaultInjectingDevice`], exercising the retry path (transient
//! faults must be invisible in the results) and the corruption-fallback
//! path (a permanently corrupt quantized block degrades to the exact
//! level, not to a panic or a wrong answer).

use iqtree_repro::data::{self, Workload};
use iqtree_repro::geometry::{Dataset, Metric};
use iqtree_repro::storage::{
    BlockDevice, FaultConfig, FaultInjectingDevice, FileDevice, MemWal, SimClock,
};
use iqtree_repro::tree::verify::verify_index;
use iqtree_repro::tree::{IqTree, IqTreeOptions};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::{Path, PathBuf};

const FILES: [&str; 3] = ["dir.bin", "quant.bin", "exact.bin"];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "iqtree-fault-{tag}-{}-{}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-")
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Builds an index over `ds` into three files under `dir` and drops it.
fn build_files(dir: &Path, ds: &Dataset, block: usize) {
    let mut clock = SimClock::default();
    let mut names = FILES.iter();
    let tree = IqTree::build(
        ds,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || {
            let path = dir.join(names.next().expect("three files"));
            Box::new(FileDevice::create(&path, block).expect("create index file"))
                as Box<dyn BlockDevice>
        },
        &mut clock,
    );
    drop(tree);
}

/// Reopens the index files, each wrapped by `wrap` (e.g. in a fault
/// injector).
fn reopen(
    dir: &Path,
    block: usize,
    dim: usize,
    mut wrap: impl FnMut(usize, Box<dyn BlockDevice>) -> Box<dyn BlockDevice>,
) -> (IqTree, SimClock) {
    let mut clock = SimClock::default();
    let mut open = |i: usize| {
        let raw = Box::new(FileDevice::open(&dir.join(FILES[i]), block).expect("open index file"))
            as Box<dyn BlockDevice>;
        wrap(i, raw)
    };
    let tree = IqTree::open(
        dim,
        Metric::Euclidean,
        IqTreeOptions::default(),
        open(0),
        open(1),
        open(2),
        &mut clock,
    )
    .expect("index opens");
    clock.reset();
    (tree, clock)
}

/// Seeded transient faults on every level (rate <= 10%): the bounded
/// retries must absorb them all, so a batch k-NN run over a 10k-point
/// index returns exactly the clean run's results — while the I/O
/// statistics prove faults actually fired.
#[test]
fn transient_faults_are_invisible_in_batch_results() {
    let dir = temp_dir("transient");
    let w = Workload::generate(10_000, 32, |n| data::uniform(8, n, 2024));
    build_files(&dir, &w.db, 4096);
    let queries: Vec<Vec<f32>> = w.queries.iter().map(<[f32]>::to_vec).collect();

    let (clean_tree, mut clean_clock) = reopen(&dir, 4096, 8, |_, d| d);
    let clean = clean_tree.knn_batch(&mut clean_clock, &queries, 10, 4);

    let cfg = FaultConfig {
        seed: 7,
        read_transient_rate: 0.08, // <= 10%, queries only read
        write_transient_rate: 0.0,
        bit_flip_rate: 0.0,
        torn_write_rate: 0.0,
    };
    let (faulty_tree, mut faulty_clock) = reopen(&dir, 4096, 8, |_, d| {
        Box::new(FaultInjectingDevice::new(d, cfg))
    });
    let faulty = faulty_tree.knn_batch(&mut faulty_clock, &queries, 10, 4);

    assert_eq!(clean, faulty, "retries must hide every transient fault");
    let stats = faulty_clock.stats();
    assert!(stats.injected_faults > 0, "no fault ever fired: {stats:?}");
    assert!(stats.io_retries > 0, "no retry ever ran: {stats:?}");
    assert_eq!(clean_clock.stats().injected_faults, 0);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// One permanently corrupt quantized (level-2) block: full-result k-NN
/// still returns the exact answer by falling back to the level-3 exact
/// page, and the corruption shows up in the trace and the I/O statistics.
#[test]
fn corrupt_quant_block_falls_back_to_exact_level() {
    let dir = temp_dir("corrupt");
    let w = Workload::generate(3_000, 8, |n| data::uniform(6, n, 7));
    build_files(&dir, &w.db, 2048);

    let (tree, mut clock) = reopen(&dir, 2048, 6, |i, d| {
        let f = FaultInjectingDevice::new(d, FaultConfig::none(3));
        if i == 1 {
            f.corrupt_block(0); // first quantized page, permanently
        }
        Box::new(f)
    });

    // k = n: nothing is prunable, so the corrupt page must be visited.
    let k = tree.len();
    for q in w.queries.iter().take(4) {
        let before = clock.stats().corrupt_blocks;
        let (hits, trace) = tree.knn_traced(&mut clock, q, k);
        assert!(trace.quant_fallbacks >= 1, "fallback never ran: {trace:?}");
        assert_eq!(trace.pages_lost, 0, "exact level was available");
        assert_eq!(trace.points_skipped, 0);
        assert!(clock.stats().corrupt_blocks > before);

        // Degraded — but still exactly right.
        assert_eq!(hits.len(), k);
        let m = Metric::Euclidean;
        let mut expect: Vec<(u32, f64)> = (0..w.db.len())
            .map(|i| (i as u32, m.distance(w.db.point(i), q)))
            .collect();
        expect.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
        for (got, want) in hits.iter().zip(&expect) {
            assert!((got.1 - want.1).abs() < 1e-9);
        }
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// A WAL-attached tree under transient read faults: logged inserts and
/// deletes (whose find/load phases read through the retry layer)
/// interleave with plain `&self` k-NN reads, and every answer — during
/// and after the workload — matches a fault-free run of the identical
/// script, while the I/O statistics prove faults really fired.
#[test]
fn logged_updates_interleaved_with_reads_absorb_transient_faults() {
    let dir = temp_dir("wal-transient");
    let ds = data::uniform(5, 4_000, 404);
    build_files(&dir, &ds, 2048);
    let queries: Vec<Vec<f32>> = data::uniform(5, 6, 405)
        .iter()
        .map(<[f32]>::to_vec)
        .collect();

    // The same seeded script of updates and reads, replayed twice.
    let run = |tree: &mut IqTree, clock: &mut SimClock| -> Vec<Vec<(u32, u64)>> {
        let mut rng = StdRng::seed_from_u64(406);
        let mut answers = Vec::new();
        let mut live: Vec<(u32, Vec<f32>)> = Vec::new();
        let mut next_id = 4_000u32;
        for step in 0..120 {
            if rng.gen_bool(0.7) || live.is_empty() {
                let p: Vec<f32> = (0..5).map(|_| rng.gen()).collect();
                tree.insert(clock, next_id, &p).expect("logged insert");
                live.push((next_id, p));
                next_id += 1;
            } else {
                let (id, p) = live.swap_remove(rng.gen_range(0..live.len()));
                assert!(tree.delete(clock, id, &p).expect("logged delete"));
            }
            // Interleaved shared reads: k-NN through `&self`.
            if step % 5 == 0 {
                let q = &queries[(step / 5) % queries.len()];
                answers.push(
                    tree.knn(clock, q, 8)
                        .into_iter()
                        .map(|(id, d)| (id, d.to_bits()))
                        .collect(),
                );
            }
        }
        answers
    };

    let reopen_with_wal = |wrap: &dyn Fn(Box<dyn BlockDevice>) -> Box<dyn BlockDevice>| {
        let mut clock = SimClock::default();
        let open = |i: usize| {
            let raw = Box::new(FileDevice::open(&dir.join(FILES[i]), 2048).expect("open"))
                as Box<dyn BlockDevice>;
            wrap(raw)
        };
        let (tree, report) = IqTree::open_with_wal(
            5,
            Metric::Euclidean,
            IqTreeOptions::default(),
            open(0),
            open(1),
            open(2),
            Box::new(MemWal::new()),
            &mut clock,
        )
        .expect("open with fresh log");
        assert!(report.log_was_clean());
        clock.reset();
        (tree, clock)
    };

    let (mut clean_tree, mut clean_clock) = reopen_with_wal(&|d| d);
    let clean = run(&mut clean_tree, &mut clean_clock);
    drop(clean_tree); // updates went to the shared files: rebuild them
    std::fs::remove_dir_all(&dir).expect("reset");
    std::fs::create_dir_all(&dir).expect("reset");
    build_files(&dir, &ds, 2048);

    let cfg = FaultConfig {
        seed: 11,
        read_transient_rate: 0.06,
        write_transient_rate: 0.0,
        bit_flip_rate: 0.0,
        torn_write_rate: 0.0,
    };
    let (mut faulty_tree, mut faulty_clock) =
        reopen_with_wal(&move |d| Box::new(FaultInjectingDevice::new(d, cfg)));
    let faulty = run(&mut faulty_tree, &mut faulty_clock);

    assert_eq!(
        clean, faulty,
        "transient faults must be invisible to logged updates and reads alike"
    );
    let stats = faulty_clock.stats();
    assert!(stats.injected_faults > 0, "no fault fired: {stats:?}");
    assert!(stats.io_retries > 0, "no retry ran: {stats:?}");
    assert!(
        faulty_tree.wal_bytes() > 0,
        "the workload's transactions are in the log"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Corrupting any single block of any of the three files is detected
    /// by `verify_index`, which pinpoints exactly the corrupted block.
    #[test]
    fn prop_verify_pinpoints_any_corrupt_block(seed in 0u64..1_000, pick in 0usize..1_000) {
        let dir = temp_dir(&format!("prop-{seed}-{pick}"));
        let ds = data::uniform(4, 600, seed);
        build_files(&dir, &ds, 512);

        // Choose a (level, block) uniformly over all blocks of the index.
        let sizes: Vec<u64> = FILES
            .iter()
            .map(|f| {
                let len = std::fs::metadata(dir.join(f)).expect("stat").len();
                len / 512
            })
            .collect();
        let total: u64 = sizes.iter().sum();
        let mut target = (pick as u64 * 7 + seed) % total;
        let mut level = 0;
        while target >= sizes[level] {
            target -= sizes[level];
            level += 1;
        }

        let mut clock = SimClock::default();
        let open_with_fault = |i: usize| -> Box<dyn BlockDevice> {
            let raw = Box::new(FileDevice::open(&dir.join(FILES[i]), 512).expect("open"))
                as Box<dyn BlockDevice>;
            let f = FaultInjectingDevice::new(raw, FaultConfig::none(9));
            if i == level {
                f.corrupt_block(target);
            }
            Box::new(f)
        };
        let report = verify_index(
            open_with_fault(0),
            open_with_fault(1),
            open_with_fault(2),
            &mut clock,
        );
        prop_assert!(!report.is_clean());
        let expect_name = ["directory", "quantized", "exact"][level];
        prop_assert_eq!(report.corrupt_blocks(), vec![(expect_name, target)]);

        // Directory corruption must also fail a real `open`.
        if level == 0 {
            let mut clock = SimClock::default();
            let opened = IqTree::open(
                4,
                Metric::Euclidean,
                IqTreeOptions::default(),
                open_with_fault(0),
                open_with_fault(1),
                open_with_fault(2),
                &mut clock,
            );
            prop_assert!(opened.is_err());
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
