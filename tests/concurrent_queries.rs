//! Concurrent shared-read queries: many threads searching one IQ-tree must
//! return exactly the serial answers, and the merged per-query clocks must
//! account for exactly the serial I/O — thread count is an execution
//! detail, never an accounting one.

use iqtree_repro::data;
use iqtree_repro::geometry::Metric;
use iqtree_repro::storage::{IoStats, MemDevice, SimClock};
use iqtree_repro::tree::{IqTree, IqTreeOptions};
use std::sync::Arc;

const DIM: usize = 8;

fn build(n: usize, opts: IqTreeOptions) -> IqTree {
    let db = data::uniform(DIM, n, 7);
    let mut clock = SimClock::default();
    IqTree::build(
        &db,
        Metric::Euclidean,
        opts,
        || Box::new(MemDevice::new(2048)),
        &mut clock,
    )
}

fn query_workload(nq: usize) -> Vec<Vec<f32>> {
    data::uniform(DIM, nq, 99)
        .iter()
        .map(<[f32]>::to_vec)
        .collect()
}

/// Serial reference: each query on a fresh clock, summed.
fn serial_run(tree: &IqTree, queries: &[Vec<f32>], k: usize) -> (Vec<Vec<(u32, f64)>>, SimClock) {
    let mut total = SimClock::default();
    total.reset();
    let results = queries
        .iter()
        .map(|q| {
            let mut c = SimClock::default();
            let r = tree.knn(&mut c, q, k);
            total.absorb(&c);
            r
        })
        .collect();
    (results, total)
}

#[test]
fn knn_batch_matches_serial_for_every_thread_count() {
    let tree = build(4_000, IqTreeOptions::default());
    let queries = query_workload(24);
    let k = 5;
    let (serial, serial_clock) = serial_run(&tree, &queries, k);

    // The batch executor groups queries into micro-batches that share one
    // page walk, so it reads *fewer* blocks than the serial loop — the
    // answers must still be identical, and the accounting must not depend
    // on the thread count (micro-batches are formed in query order).
    let mut reference: Option<SimClock> = None;
    for threads in [1, 2, 8] {
        let mut clock = SimClock::default();
        let batch = tree.knn_batch(&mut clock, &queries, k, threads);
        assert_eq!(batch, serial, "results differ at {threads} threads");
        assert!(
            clock.stats().blocks_read <= serial_clock.stats().blocks_read,
            "shared page walk must never read more than the serial loop: {} vs {}",
            clock.stats().blocks_read,
            serial_clock.stats().blocks_read
        );
        match &reference {
            None => reference = Some(clock),
            Some(r) => {
                assert_eq!(
                    clock.stats(),
                    r.stats(),
                    "merged IoStats differ at {threads} threads"
                );
                assert_eq!(
                    clock.io_time(),
                    r.io_time(),
                    "merged io_time differs at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn eight_threads_sharing_an_arc_agree_with_serial() {
    let tree = Arc::new(build(3_000, IqTreeOptions::default()));
    let queries = query_workload(32);
    let k = 3;
    let (serial, _) = serial_run(&tree, &queries, k);

    let mut handles = Vec::new();
    for t in 0..8usize {
        let tree = Arc::clone(&tree);
        let queries = queries.clone();
        let serial = serial.clone();
        handles.push(std::thread::spawn(move || {
            // Each thread walks the whole workload from a different offset.
            let mut stats = IoStats::default();
            for i in 0..queries.len() {
                let j = (i + t * 4) % queries.len();
                let mut c = SimClock::default();
                let got = tree.knn(&mut c, &queries[j], k);
                assert_eq!(got, serial[j], "thread {t}, query {j}");
                stats.merge(&c.stats());
            }
            stats
        }));
    }
    let per_thread: Vec<IoStats> = handles
        .into_iter()
        .map(|h| h.join().expect("query thread panicked"))
        .collect();
    // Every thread ran the identical workload, so every thread must have
    // been charged the identical I/O.
    for s in &per_thread {
        assert_eq!(*s, per_thread[0]);
    }
}

#[test]
fn batch_over_a_cached_tree_is_consistent_and_cheaper() {
    let tree = build(
        3_000,
        IqTreeOptions {
            cache_blocks: Some(4_096),
            ..Default::default()
        },
    );
    let cold = build(3_000, IqTreeOptions::default());
    let queries = query_workload(16);

    let mut cold_clock = SimClock::default();
    let expect = cold.knn_batch(&mut cold_clock, &queries, 4, 4);

    // Warm the pool, then run the measured batch.
    let mut warmup = SimClock::default();
    tree.knn_batch(&mut warmup, &queries, 4, 4);
    let mut clock = SimClock::default();
    let got = tree.knn_batch(&mut clock, &queries, 4, 4);

    assert_eq!(got, expect, "cache must be invisible in the results");
    assert!(
        clock.io_time() < cold_clock.io_time(),
        "resident pages must make the warm batch cheaper: {} vs {}",
        clock.io_time(),
        cold_clock.io_time()
    );
}

#[test]
fn empty_and_degenerate_batches() {
    let tree = build(500, IqTreeOptions::default());
    let mut clock = SimClock::default();
    assert!(tree.knn_batch(&mut clock, &[], 3, 4).is_empty());
    assert_eq!(clock.stats(), IoStats::default());
    // More threads than queries.
    let queries = query_workload(2);
    let res = tree.knn_batch(&mut clock, &queries, 1, 64);
    assert_eq!(res.len(), 2);
    // threads == 0 is clamped to 1.
    let res0 = tree.knn_batch(&mut SimClock::default(), &queries, 1, 0);
    assert_eq!(res0, res);
}
