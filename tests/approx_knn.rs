//! Approximate k-NN knobs, exercised through the shared executor layer.
//!
//! The load-bearing property is the *exact-mode reduction*: with
//! [`QueryOptions::default`] — and with every knob set to its explicitly
//! neutral value — all four engines must return bit-identical distances to
//! a brute-force oracle, i.e. the executor refactor changed nothing when
//! the knobs are off. On top of that, each knob's contract is checked:
//! ε-termination keeps every returned distance within `(1+ε)×` of the true
//! one, `nprobes`/`refine_factor` truncations are visible in the trace,
//! a tiny time budget flags early termination, and pagination under
//! approximate options still tiles without overlap or gaps.

use iqtree_repro::data;
use iqtree_repro::engine::{knn_paginated_opts, AccessMethod, PageSpec, QueryOptions};
use iqtree_repro::geometry::{Dataset, Metric};
use iqtree_repro::storage::{BlockDevice, MemDevice, SimClock};
use iqtree_repro::{build_engine, EngineKind};

const N: usize = 3_000;
const DIM: usize = 8;
const K: usize = 10;

fn workload() -> (Dataset, Vec<Vec<f32>>) {
    let w = iqtree_repro::data::Workload::generate(N, 5, |n| data::cad_like(DIM, n, 4242));
    let queries: Vec<Vec<f32>> = w.queries.iter().map(<[f32]>::to_vec).collect();
    (w.db, queries)
}

fn plain_dev() -> Box<dyn BlockDevice> {
    Box::new(MemDevice::new(4096))
}

fn build_all(ds: &Dataset, metric: Metric) -> Vec<Box<dyn AccessMethod>> {
    EngineKind::ALL
        .iter()
        .map(|&kind| {
            let mut clock = SimClock::default();
            build_engine(kind, ds, metric, plain_dev, &mut clock)
        })
        .collect()
}

/// Brute-force oracle in canonical order (distance, then id), as bits.
fn oracle(ds: &Dataset, metric: Metric, q: &[f32], k: usize) -> Vec<(u32, u64)> {
    let mut all: Vec<(u32, f64)> = (0..ds.len())
        .map(|i| (i as u32, metric.distance(ds.point(i), q)))
        .collect();
    all.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("no NaN distances")
            .then(a.0.cmp(&b.0))
    });
    all.truncate(k);
    all.into_iter().map(|(id, d)| (id, d.to_bits())).collect()
}

fn canon(mut hits: Vec<(u32, f64)>) -> Vec<(u32, u64)> {
    hits.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("no NaN distances")
            .then(a.0.cmp(&b.0))
    });
    hits.into_iter().map(|(id, d)| (id, d.to_bits())).collect()
}

/// Every knob at its explicitly-neutral value (distinct bit patterns from
/// the `None`/`1` defaults, same meaning).
fn neutral_opts() -> QueryOptions {
    QueryOptions {
        epsilon: 0.0,
        nprobes: Some(u64::MAX),
        refine_factor: 1,
        time_budget: Some(f64::INFINITY),
    }
}

/// The exact-mode reduction: default options and explicitly-neutral
/// options both reproduce the brute-force oracle bit for bit, on every
/// engine and every metric, and report no early termination.
#[test]
fn default_and_neutral_options_reduce_to_exact() {
    let (ds, queries) = workload();
    for metric in [Metric::Euclidean, Metric::Maximum, Metric::Manhattan] {
        let engines = build_all(&ds, metric);
        for eng in &engines {
            let mut clock = SimClock::default();
            for (qi, q) in queries.iter().enumerate() {
                let want = oracle(&ds, metric, q, K);
                for (tag, opts) in [
                    ("default", QueryOptions::default()),
                    ("neutral", neutral_opts()),
                ] {
                    let (hits, trace) = eng.knn_opts_traced(&mut clock, q, K, None, &opts);
                    assert_eq!(
                        canon(hits),
                        want,
                        "{} {metric:?} query {qi} under {tag} options",
                        eng.name()
                    );
                    assert_eq!(
                        trace.terminated_early,
                        0,
                        "{} {metric:?} query {qi}: exact search must not flag early termination",
                        eng.name()
                    );
                    assert_eq!(trace.candidates_skipped, 0, "{} query {qi}", eng.name());
                }
            }
        }
    }
}

/// ε-termination contract: every returned distance is within `(1 + ε)` of
/// the true distance at the same rank, on every engine.
#[test]
fn epsilon_bounds_relative_error_at_every_rank() {
    let (ds, queries) = workload();
    let metric = Metric::Euclidean;
    let engines = build_all(&ds, metric);
    for eps in [0.1, 0.5, 2.0] {
        let opts = QueryOptions {
            epsilon: eps,
            ..QueryOptions::default()
        };
        for eng in &engines {
            let mut clock = SimClock::default();
            for (qi, q) in queries.iter().enumerate() {
                let true_knn = oracle(&ds, metric, q, K);
                let (hits, _) = eng.knn_opts_traced(&mut clock, q, K, None, &opts);
                let got = canon(hits);
                assert_eq!(got.len(), K, "{} query {qi}", eng.name());
                for (rank, ((_, gd), (_, td))) in got.iter().zip(&true_knn).enumerate() {
                    let (gd, td) = (f64::from_bits(*gd), f64::from_bits(*td));
                    assert!(
                        gd <= td * (1.0 + eps) * (1.0 + 1e-9),
                        "{} eps={eps} query {qi} rank {rank}: got {gd} vs true {td}",
                        eng.name()
                    );
                }
            }
        }
    }
}

/// `nprobes` truncation is visible in the trace and still returns `k`
/// results on the index engines (the candidates it does probe hold more
/// than `k` points).
#[test]
fn nprobes_cap_skips_candidates_and_flags_early_termination() {
    let (ds, queries) = workload();
    let metric = Metric::Euclidean;
    let opts = QueryOptions {
        nprobes: Some(1),
        ..QueryOptions::default()
    };
    for kind in [EngineKind::IqTree, EngineKind::XTree, EngineKind::VaFile] {
        let mut clock = SimClock::default();
        let eng = build_engine(kind, &ds, metric, plain_dev, &mut clock);
        let mut skipped_somewhere = false;
        for q in &queries {
            let (_, trace) = eng.knn_opts_traced(&mut clock, q, K, None, &opts);
            if trace.candidates_skipped > 0 {
                skipped_somewhere = true;
                assert_eq!(trace.terminated_early, 1, "{}", eng.name());
            }
        }
        assert!(
            skipped_somewhere,
            "{}: one probe cannot cover the whole workload",
            eng.name()
        );
    }
}

/// `refine_factor` caps exact look-ups at `k × refine_factor` on the
/// refinement-based engines.
#[test]
fn refine_factor_caps_exact_lookups() {
    let (ds, queries) = workload();
    let metric = Metric::Euclidean;
    let rf = 2u32;
    let opts = QueryOptions {
        refine_factor: rf,
        ..QueryOptions::default()
    };
    for kind in [EngineKind::IqTree, EngineKind::VaFile] {
        let mut clock = SimClock::default();
        let eng = build_engine(kind, &ds, metric, plain_dev, &mut clock);
        for (qi, q) in queries.iter().enumerate() {
            let (hits, trace) = eng.knn_opts_traced(&mut clock, q, K, None, &opts);
            assert!(
                trace.refinements <= (K as u64) * u64::from(rf),
                "{} query {qi}: {} refinements",
                eng.name(),
                trace.refinements
            );
            assert_eq!(hits.len(), K, "{} query {qi}", eng.name());
        }
    }
}

/// A vanishing time budget stops every engine almost immediately and is
/// reported as early termination; a generous one changes nothing.
#[test]
fn time_budget_flags_early_termination() {
    let (ds, queries) = workload();
    let metric = Metric::Euclidean;
    let engines = build_all(&ds, metric);
    let tiny = QueryOptions {
        time_budget: Some(1e-9),
        ..QueryOptions::default()
    };
    let generous = QueryOptions {
        time_budget: Some(1e9),
        ..QueryOptions::default()
    };
    let q = &queries[0];
    for eng in &engines {
        let mut clock = SimClock::default();
        let (_, trace) = eng.knn_opts_traced(&mut clock, q, K, None, &tiny);
        assert_eq!(
            trace.terminated_early,
            1,
            "{}: a 1ns budget must terminate early",
            eng.name()
        );
        let mut clock = SimClock::default();
        let (hits, trace) = eng.knn_opts_traced(&mut clock, q, K, None, &generous);
        assert_eq!(trace.terminated_early, 0, "{}", eng.name());
        assert_eq!(canon(hits), oracle(&ds, metric, q, K), "{}", eng.name());
    }
}

/// Disjoint offset windows under *approximate* options still tile the
/// computed list without overlap or gaps: the approximate result is
/// deterministic for a fixed `(q, k, opts)`.
#[test]
fn pagination_tiles_under_approximate_options() {
    let (ds, queries) = workload();
    let metric = Metric::Euclidean;
    let mut clock = SimClock::default();
    let eng = build_engine(EngineKind::IqTree, &ds, metric, plain_dev, &mut clock);
    let opts = QueryOptions {
        epsilon: 0.5,
        nprobes: Some(4),
        ..QueryOptions::default()
    };
    let k = 20usize;
    for q in queries.iter().take(3) {
        let full = knn_paginated_opts(eng.as_ref(), &mut clock, q, None, &PageSpec::top(k), &opts);
        let mut tiled = Vec::new();
        let step = 5usize;
        for offset in (0..k).step_by(step) {
            let page = PageSpec {
                k,
                offset,
                limit: Some(step),
            };
            tiled.extend(knn_paginated_opts(
                eng.as_ref(),
                &mut clock,
                q,
                None,
                &page,
                &opts,
            ));
        }
        assert_eq!(tiled, full, "offset windows must tile the full list");
    }
}
