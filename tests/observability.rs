//! End-to-end smoke test of the observability surface: `iq query
//! --trace` phase breakdowns and `--trace-tree`/`--trace-json` span
//! trees, `iq explain [--analyze]` cost predictions, `iq stats
//! --format prometheus|json` registry exposition, the slow-query log and
//! telemetry window behind `iq stats --slow`/`--window`, and the global
//! `--metrics-json` flag. Library-level tests pin the tentpole
//! invariants: span-tree phase leaves sum *exactly* to the flat
//! [`PhaseTimes`] breakdown, and the multi-query shared walk attributes
//! per-query counters that reconcile with single-query traces.

use std::path::PathBuf;
use std::process::Command;

fn iq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_iq"))
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iq-obs-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Like [`temp_dir`] but namespaced per test, so tests running in
/// parallel inside one harness process cannot race on the directory.
fn temp_dir_named(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iq-obs-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Builds a small on-disk index and returns its directory.
fn build_index(dir: &std::path::Path) -> PathBuf {
    let csv = dir.join("pts.csv");
    let idx = dir.join("idx");
    let out = iq()
        .args(["generate", "--kind", "uniform", "--dim", "6", "--n", "3000"])
        .args(["--seed", "5", "--out", csv.to_str().expect("utf8")])
        .output()
        .expect("run generate");
    assert!(out.status.success());
    let out = iq()
        .args(["build", "--input", csv.to_str().expect("utf8")])
        .args(["--index", idx.to_str().expect("utf8"), "--block", "2048"])
        .output()
        .expect("run build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    idx
}

#[test]
fn query_trace_phases_sum_to_total() {
    let dir = temp_dir();
    let idx = build_index(&dir);
    let out = iq()
        .args(["query", "--index", idx.to_str().expect("utf8")])
        .args(["--point", "0.4,0.5,0.6,0.4,0.5,0.6", "--k", "5", "--trace"])
        .output()
        .expect("run query --trace");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for phase in ["directory", "plan", "filter", "refine", "topk"] {
        assert!(
            stdout.contains(phase),
            "missing phase {phase} in:\n{stdout}"
        );
    }
    // Acceptance: the phase times must sum to within 5% of the total
    // simulated query time. The sum line prints the attributed share.
    let attributed: f64 = stdout
        .lines()
        .find(|l| l.contains("% attributed"))
        .and_then(|l| l.split('(').nth(1))
        .and_then(|t| t.split('%').next())
        .and_then(|t| t.trim().parse().ok())
        .unwrap_or_else(|| panic!("no attributed percentage in:\n{stdout}"));
    assert!(
        (attributed - 100.0).abs() <= 5.0,
        "phase sum covers {attributed}% of the query time:\n{stdout}"
    );
    assert!(stdout.contains("pages processed"), "{stdout}");
    assert!(stdout.contains("cost model: predicted"), "{stdout}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn stats_exports_registry_in_both_formats() {
    let dir = temp_dir();
    let idx = build_index(&dir);

    let out = iq()
        .args(["stats", "--index", idx.to_str().expect("utf8")])
        .args(["--format", "prometheus"])
        .output()
        .expect("run stats prometheus");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let prom = String::from_utf8_lossy(&out.stdout);
    assert!(
        prom.contains("# TYPE dev_dir_raw_reads_total counter"),
        "{prom}"
    );
    assert!(prom.contains("# TYPE index_points gauge"), "{prom}");
    assert!(prom.contains("index_points 3000"), "{prom}");
    assert!(
        prom.contains("dev_dir_raw_read_seconds_bucket{le="),
        "{prom}"
    );

    let out = iq()
        .args(["stats", "--index", idx.to_str().expect("utf8")])
        .args(["--format", "json"])
        .output()
        .expect("run stats json");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "\"index_points\"",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced JSON:\n{json}"
    );

    let out = iq()
        .args(["stats", "--index", idx.to_str().expect("utf8")])
        .args(["--format", "yaml"])
        .output()
        .expect("run stats with bad format");
    assert!(!out.status.success(), "unknown format must fail");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn metrics_json_flag_writes_registry_snapshot() {
    let dir = temp_dir();
    let idx = build_index(&dir);
    let path = dir.join("metrics.json");
    let out = iq()
        .args(["query", "--index", idx.to_str().expect("utf8")])
        .args(["--point", "0.1,0.9,0.1,0.9,0.1,0.9", "--k", "2"])
        .args(["--cache-blocks", "32"])
        .args(["--metrics-json", path.to_str().expect("utf8")])
        .output()
        .expect("run query with --metrics-json");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&path).expect("metrics file written");
    // Schema: the three top-level sections, per-layer device metrics for
    // every index level and the cache counters plumbed from CachedDevice.
    for key in [
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "dev_dir_raw_reads_total",
        "dev_quant_checksum_reads_total",
        "dev_exact_cache_reads_total",
        "cache_hits_total",
        "cache_misses_total",
        "\"p50\"",
        "\"buckets\"",
    ] {
        assert!(json.contains(key), "missing {key} in metrics file:\n{json}");
    }
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

// ---------------------------------------------------------------------
// Library-level tentpole invariants.

use iqtree_repro::engine::{AccessMethod, QueryOptions, QueryTrace};
use iqtree_repro::geometry::Metric;
use iqtree_repro::storage::{BlockDevice, MemDevice, SimClock};
use iqtree_repro::{build_engine, data, EngineKind};

fn small_workload() -> (iqtree_repro::geometry::Dataset, Vec<Vec<f32>>) {
    let w = data::Workload::generate(1_500, 4, |n| data::cad_like(8, n, 91));
    let queries: Vec<Vec<f32>> = w.queries.iter().map(<[f32]>::to_vec).collect();
    (w.db, queries)
}

fn build(kind: EngineKind, ds: &iqtree_repro::geometry::Dataset) -> Box<dyn AccessMethod> {
    let mut clock = SimClock::default();
    let mut dev = || -> Box<dyn BlockDevice> { Box::new(MemDevice::new(4096)) };
    build_engine(kind, ds, Metric::Euclidean, &mut dev, &mut clock)
}

/// Tentpole acceptance: for every engine, the span tree's phase leaves
/// sum to the flat [`PhaseTimes`] breakdown within 1e-9 — both are fed
/// the same `(sim, wall)` deltas computed once in `phase_end`, so the
/// sim side is in fact *exact*.
#[test]
fn span_tree_phase_leaves_sum_to_flat_phase_times() {
    let (ds, queries) = small_workload();
    for kind in EngineKind::ALL {
        let eng = build(kind, &ds);
        let mut clock = SimClock::default();
        clock.enable_tracing();
        let (hits, _) =
            eng.knn_opts_traced(&mut clock, &queries[0], 10, None, &QueryOptions::EXACT);
        assert_eq!(hits.len(), 10);
        let flat = clock.phase_times();
        let tree = clock.take_trace().expect("tracing was on");
        let (sim, wall) = tree.phase_totals();
        for i in 0..5 {
            assert!(
                (sim[i] - flat.sim[i]).abs() <= 1e-9,
                "{}: phase {i} sim leaves {} != flat {}",
                eng.name(),
                sim[i],
                flat.sim[i]
            );
            assert!(
                (wall[i] - flat.wall[i]).abs() <= 1e-9,
                "{}: phase {i} wall leaves {} != flat {}",
                eng.name(),
                wall[i],
                flat.wall[i]
            );
        }
        // The engine span carries the query's name and its k attr.
        let span = &tree.root.children[0];
        assert_eq!(span.name, eng.name());
        assert!(span.attrs.iter().any(|(k, v)| k == "k" && v == "10"));
    }
}

/// Satellite acceptance: the multi-query shared walk's per-query
/// attribution reconciles three ways — each per-query child span carries
/// exactly that query's [`QueryTrace`] counters, the children sum to the
/// aggregate the parent span reports, and each per-query trace equals
/// what the same query produces when run alone.
#[test]
fn knn_multi_opts_traced_attributes_per_query_counters() {
    let (ds, queries) = small_workload();
    let eng = build(EngineKind::IqTree, &ds);
    let qrefs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();

    // Ground truth: each query alone, fresh cold clock.
    let solo: Vec<(Vec<(u32, f64)>, QueryTrace)> = qrefs
        .iter()
        .map(|q| {
            let mut c = SimClock::default();
            eng.knn_opts_traced(&mut c, q, 5, None, &QueryOptions::EXACT)
        })
        .collect();

    let mut clock = SimClock::default();
    clock.enable_tracing();
    let multi = eng.knn_multi_opts_traced(&mut clock, &qrefs, 5, None, &QueryOptions::EXACT);
    let flat = clock.phase_times();
    let tree = clock.take_trace().expect("tracing was on");

    // Results match the single-query runs exactly. Counters need not be
    // identical — the shared walk visits pages in page order for the
    // whole batch, so a query may process a page it would have pruned
    // (or never reached) alone — but each per-query trace must still be
    // a plausible account of the same search: at least as many pages
    // touched as the solo run needed.
    assert_eq!(multi.len(), solo.len());
    for ((mh, mt), (sh, st)) in multi.iter().zip(&solo) {
        assert_eq!(mh, sh, "shared walk must return single-query results");
        assert!(
            mt.pages_processed + mt.pages_skipped >= st.pages_processed,
            "shared walk accounts for at least the solo working set"
        );
    }

    // The shared walk records one batch span holding the phase leaves
    // plus one zero-duration "query" child per query, in order.
    let span = &tree.root.children[0];
    assert_eq!(span.name, "iqtree_multi");
    assert!(span
        .attrs
        .iter()
        .any(|(k, v)| k == "queries" && v == &qrefs.len().to_string()));
    let per_query: Vec<&iqtree_repro::obs::TraceNode> =
        span.children.iter().filter(|c| c.name == "query").collect();
    assert_eq!(per_query.len(), qrefs.len());
    for (qi, (node, (_, trace))) in per_query.iter().zip(&multi).enumerate() {
        assert!(
            node.attrs
                .iter()
                .any(|(k, v)| k == "index" && v == &qi.to_string()),
            "query child {qi} must carry its index"
        );
        for (name, want) in trace.fields() {
            let got = node
                .counters
                .iter()
                .find(|(k, _)| k == name)
                .map_or(0, |(_, v)| *v);
            assert_eq!(got, want, "query {qi} counter {name}");
        }
    }
    // Children sum to the parent's aggregate counters.
    for (name, total) in per_query.iter().flat_map(|n| n.counters.iter()).fold(
        std::collections::BTreeMap::new(),
        |mut m, (k, v)| {
            *m.entry(k.clone()).or_insert(0u64) += v;
            m
        },
    ) {
        let parent = span
            .counters
            .iter()
            .find(|(k, _)| *k == name)
            .map_or(0, |(_, v)| *v);
        assert_eq!(parent, total, "parent aggregate for {name}");
    }
    // And the shared-walk phase leaves still sum to the flat breakdown.
    let (sim, _) = tree.phase_totals();
    for (i, leaf_sum) in sim.iter().enumerate() {
        assert!((leaf_sum - flat.sim[i]).abs() <= 1e-9, "phase {i}");
    }
}

// ---------------------------------------------------------------------
// CLI surfaces: --trace-json, explain --analyze, stats --slow/--window.

/// The `--trace-json` artifact is well-formed Chrome trace-event JSON:
/// a `traceEvents` array of complete `"ph": "X"` events whose root span
/// duration equals the query's simulated time.
#[test]
fn trace_json_is_chrome_trace_event_format() {
    let dir = temp_dir_named("chrome");
    let idx = build_index(&dir);
    let path = dir.join("trace.json");
    let out = iq()
        .args(["query", "--index", idx.to_str().expect("utf8")])
        .args(["--point", "0.4,0.5,0.6,0.4,0.5,0.6", "--k", "5"])
        .args(["--trace-json", path.to_str().expect("utf8")])
        .output()
        .expect("run query --trace-json");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let doc = iqtree_repro::obs::json::parse(&text).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(events.len() >= 3, "root + engine span + phase leaves");
    for ev in events {
        assert_eq!(ev.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
        assert!(ev.get("ts").and_then(|v| v.as_f64()).is_some());
        assert!(ev.get("dur").and_then(|v| v.as_f64()).is_some());
        assert!(ev.get("pid").is_some() && ev.get("tid").is_some());
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// `iq explain --analyze` on the CAD fixture stays within the PR 5
/// cost-audit band: predicted pages within 3x of observed either way.
#[test]
fn explain_analyze_stays_within_cost_band() {
    let dir = temp_dir_named("explain");
    let idx = dir.join("idx");
    let out = iq()
        .args(["build", "--input", "tests/fixtures/cad600_8d.fvecs"])
        .args(["--index", idx.to_str().expect("utf8")])
        .output()
        .expect("run build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = iq()
        .args(["explain", "--index", idx.to_str().expect("utf8")])
        .args(["--k", "10", "--analyze", "--json"])
        .args(["--point", "0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5"])
        .output()
        .expect("run explain --analyze");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let doc = iqtree_repro::obs::json::parse(text.trim()).expect("valid JSON");
    let explain = doc.get("explain").expect("explain object");
    let predicted = explain
        .get("predicted")
        .and_then(|p| p.get("pages"))
        .and_then(|v| v.as_f64())
        .expect("predicted pages");
    let observed = explain
        .get("observed")
        .and_then(|p| p.get("pages"))
        .and_then(|v| v.as_f64())
        .expect("observed pages");
    assert!(observed >= 1.0, "the query must read pages: {text}");
    let ratio = predicted / observed;
    assert!(
        (1.0 / 3.0..=3.0).contains(&ratio),
        "predicted/observed pages {ratio:.3} outside the 3x band: {text}"
    );
    assert!(explain.get("audit").is_some(), "audit errors present");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// `iq bench` persists the slow-query log and telemetry snapshots, the
/// JSON report leads with provenance, and `iq stats --slow`/`--window`
/// read the artifacts back.
#[test]
fn bench_persists_slow_log_and_telemetry_for_stats() {
    let dir = temp_dir_named("bench");
    let fixture = std::fs::canonicalize("tests/fixtures/cad600_8d.fvecs").expect("fixture");
    let out = iq()
        .current_dir(&dir)
        .args(["bench", "--input", fixture.to_str().expect("utf8")])
        .args(["--queries", "8", "--json", "--date", "2026-08-08"])
        .output()
        .expect("run bench --json");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    let first = report.trim_start_matches('[');
    assert!(
        first.starts_with("{\"engine\":\"provenance\""),
        "provenance must lead the report: {report}"
    );
    for key in [
        "\"commit\"",
        "\"kernel\"",
        "\"simd_code\"",
        "\"available_cores\"",
        "\"date\": \"2026-08-08\"",
    ] {
        assert!(report.contains(key), "missing {key} in report:\n{report}");
    }
    assert!(dir.join("iq-slowlog.json").is_file());
    assert!(dir.join("iq-telemetry.json").is_file());

    let out = iq()
        .current_dir(&dir)
        .args(["stats", "--slow"])
        .output()
        .expect("run stats --slow");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let slow = String::from_utf8_lossy(&out.stdout);
    assert!(slow.contains("retained"), "{slow}");
    assert!(slow.contains("sim "), "entries render trace trees: {slow}");

    let out = iq()
        .current_dir(&dir)
        .args(["stats", "--window", "4"])
        .output()
        .expect("run stats --window");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let window = String::from_utf8_lossy(&out.stdout);
    assert!(window.contains("sample(s) spanning"), "{window}");
    assert!(window.contains("rates:"), "{window}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
