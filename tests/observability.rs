//! End-to-end smoke test of the observability surface: `iq query
//! --trace` phase breakdowns, `iq stats --format prometheus|json`
//! registry exposition and the global `--metrics-json` flag.

use std::path::PathBuf;
use std::process::Command;

fn iq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_iq"))
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iq-obs-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Builds a small on-disk index and returns its directory.
fn build_index(dir: &std::path::Path) -> PathBuf {
    let csv = dir.join("pts.csv");
    let idx = dir.join("idx");
    let out = iq()
        .args(["generate", "--kind", "uniform", "--dim", "6", "--n", "3000"])
        .args(["--seed", "5", "--out", csv.to_str().expect("utf8")])
        .output()
        .expect("run generate");
    assert!(out.status.success());
    let out = iq()
        .args(["build", "--input", csv.to_str().expect("utf8")])
        .args(["--index", idx.to_str().expect("utf8"), "--block", "2048"])
        .output()
        .expect("run build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    idx
}

#[test]
fn query_trace_phases_sum_to_total() {
    let dir = temp_dir();
    let idx = build_index(&dir);
    let out = iq()
        .args(["query", "--index", idx.to_str().expect("utf8")])
        .args(["--point", "0.4,0.5,0.6,0.4,0.5,0.6", "--k", "5", "--trace"])
        .output()
        .expect("run query --trace");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for phase in ["directory", "plan", "filter", "refine", "topk"] {
        assert!(
            stdout.contains(phase),
            "missing phase {phase} in:\n{stdout}"
        );
    }
    // Acceptance: the phase times must sum to within 5% of the total
    // simulated query time. The sum line prints the attributed share.
    let attributed: f64 = stdout
        .lines()
        .find(|l| l.contains("% attributed"))
        .and_then(|l| l.split('(').nth(1))
        .and_then(|t| t.split('%').next())
        .and_then(|t| t.trim().parse().ok())
        .unwrap_or_else(|| panic!("no attributed percentage in:\n{stdout}"));
    assert!(
        (attributed - 100.0).abs() <= 5.0,
        "phase sum covers {attributed}% of the query time:\n{stdout}"
    );
    assert!(stdout.contains("pages processed"), "{stdout}");
    assert!(stdout.contains("cost model: predicted"), "{stdout}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn stats_exports_registry_in_both_formats() {
    let dir = temp_dir();
    let idx = build_index(&dir);

    let out = iq()
        .args(["stats", "--index", idx.to_str().expect("utf8")])
        .args(["--format", "prometheus"])
        .output()
        .expect("run stats prometheus");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let prom = String::from_utf8_lossy(&out.stdout);
    assert!(
        prom.contains("# TYPE dev_dir_raw_reads_total counter"),
        "{prom}"
    );
    assert!(prom.contains("# TYPE index_points gauge"), "{prom}");
    assert!(prom.contains("index_points 3000"), "{prom}");
    assert!(
        prom.contains("dev_dir_raw_read_seconds_bucket{le="),
        "{prom}"
    );

    let out = iq()
        .args(["stats", "--index", idx.to_str().expect("utf8")])
        .args(["--format", "json"])
        .output()
        .expect("run stats json");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "\"index_points\"",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced JSON:\n{json}"
    );

    let out = iq()
        .args(["stats", "--index", idx.to_str().expect("utf8")])
        .args(["--format", "yaml"])
        .output()
        .expect("run stats with bad format");
    assert!(!out.status.success(), "unknown format must fail");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn metrics_json_flag_writes_registry_snapshot() {
    let dir = temp_dir();
    let idx = build_index(&dir);
    let path = dir.join("metrics.json");
    let out = iq()
        .args(["query", "--index", idx.to_str().expect("utf8")])
        .args(["--point", "0.1,0.9,0.1,0.9,0.1,0.9", "--k", "2"])
        .args(["--cache-blocks", "32"])
        .args(["--metrics-json", path.to_str().expect("utf8")])
        .output()
        .expect("run query with --metrics-json");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&path).expect("metrics file written");
    // Schema: the three top-level sections, per-layer device metrics for
    // every index level and the cache counters plumbed from CachedDevice.
    for key in [
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "dev_dir_raw_reads_total",
        "dev_quant_checksum_reads_total",
        "dev_exact_cache_reads_total",
        "cache_hits_total",
        "cache_misses_total",
        "\"p50\"",
        "\"buckets\"",
    ] {
        assert!(json.contains(key), "missing {key} in metrics file:\n{json}");
    }
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
