//! Integration: dynamic maintenance across crates — a tree built by bulk
//! load plus inserts answers exactly like brute force, deletions remove
//! points from all query types, and the X-tree survives the same regime.

use iqtree_repro::data::{self};
use iqtree_repro::geometry::{Dataset, Metric};
use iqtree_repro::storage::{MemDevice, SimClock};
use iqtree_repro::tree::{IqTree, IqTreeOptions};
use iqtree_repro::xtree::{XTree, XTreeOptions};

fn dev() -> Box<MemDevice> {
    Box::new(MemDevice::new(4096))
}

fn brute_knn(ds: &Dataset, q: &[f32], k: usize) -> Vec<f64> {
    let mut d: Vec<f64> = ds
        .iter()
        .map(|p| Metric::Euclidean.distance(p, q))
        .collect();
    d.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    d.truncate(k);
    d
}

#[test]
fn iqtree_half_bulk_half_inserted_matches_brute_force() {
    let all = data::weather_like(9, 6_000, 31);
    let mut bulk = all.clone();
    let streamed = bulk.split_off_tail(3_000);

    let mut clock = SimClock::default();
    let mut tree = IqTree::build(
        &bulk,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || dev(),
        &mut clock,
    );
    for (i, p) in streamed.iter().enumerate() {
        tree.insert(&mut clock, (3_000 + i) as u32, p).unwrap();
    }
    assert_eq!(tree.len(), 6_000);

    let queries = data::weather_like(9, 10, 97);
    for q in queries.iter() {
        let got = tree.knn(&mut clock, q, 7);
        let expect = brute_knn(&all, q, 7);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g.1 - e).abs() < 1e-6, "knn mismatch: {} vs {e}", g.1);
        }
    }
}

#[test]
fn interleaved_inserts_and_deletes_stay_consistent() {
    let base = data::uniform(5, 2_000, 41);
    let extra = data::uniform(5, 1_000, 42);
    let mut clock = SimClock::default();
    let mut tree = IqTree::build(
        &base,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || dev(),
        &mut clock,
    );

    // Insert all extras, then delete every even-numbered one again.
    for (i, p) in extra.iter().enumerate() {
        tree.insert(&mut clock, (2_000 + i) as u32, p).unwrap();
    }
    for (i, p) in extra.iter().enumerate() {
        if i % 2 == 0 {
            assert!(
                tree.delete(&mut clock, (2_000 + i) as u32, p).unwrap(),
                "delete {i}"
            );
        }
    }
    assert_eq!(tree.len(), 2_000 + 500);

    // Ground truth: base + odd extras.
    let mut truth = base.clone();
    for (i, p) in extra.iter().enumerate() {
        if i % 2 == 1 {
            truth.push(p);
        }
    }
    let queries = data::uniform(5, 10, 43);
    for q in queries.iter() {
        let (_, d) = tree.nearest(&mut clock, q).expect("non-empty");
        let expect = brute_knn(&truth, q, 1)[0];
        assert!((d - expect).abs() < 1e-6);
    }
    // Deleted points are really gone from range queries.
    for (i, p) in extra.iter().enumerate().take(50) {
        if i % 2 == 0 {
            let hits = tree.range(&mut clock, p, 1e-7);
            assert!(
                !hits.contains(&((2_000 + i) as u32)),
                "deleted point {i} still present"
            );
        }
    }
}

#[test]
fn xtree_and_iqtree_agree_after_heavy_inserts() {
    let base = data::cad_like(8, 1_500, 51);
    let extra = data::cad_like(8, 1_500, 52);
    let mut clock = SimClock::default();
    let mut iq = IqTree::build(
        &base,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || dev(),
        &mut clock,
    );
    let mut xt = XTree::build(
        &base,
        Metric::Euclidean,
        XTreeOptions::default(),
        dev(),
        dev(),
        &mut clock,
    );
    for (i, p) in extra.iter().enumerate() {
        iq.insert(&mut clock, (1_500 + i) as u32, p).unwrap();
        xt.insert(&mut clock, (1_500 + i) as u32, p);
    }
    let queries = data::cad_like(8, 10, 53);
    for q in queries.iter() {
        let a = iq.nearest(&mut clock, q).expect("non-empty").1;
        let b = xt.nearest(&mut clock, q).expect("non-empty").1;
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }
}

#[test]
fn page_invariants_hold_after_updates() {
    let base = data::uniform(4, 3_000, 61);
    let mut clock = SimClock::default();
    let mut tree = IqTree::build(
        &base,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || dev(),
        &mut clock,
    );
    let extra = data::clusters(4, 2_000, 3, 0.02, 62);
    for (i, p) in extra.iter().enumerate() {
        tree.insert(&mut clock, (3_000 + i) as u32, p).unwrap();
    }
    // Every page's count fits its resolution; totals add up.
    let total: u32 = tree.pages().iter().map(|p| p.count).sum();
    assert_eq!(total as usize, tree.len());
    for meta in tree.pages() {
        assert!((1..=32).contains(&meta.g));
    }
    // Wasted blocks are tracked, never negative (u64) and bounded by the
    // exact file growth.
    let _ = tree.wasted_exact_blocks();
}
