//! Integration: the *cost* behavior the paper claims, measured end to end
//! on the simulated clock — the IQ-tree's headline properties, not just
//! result correctness.

use iqtree_repro::data::{self, Workload};
use iqtree_repro::geometry::Metric;
use iqtree_repro::scan::SeqScan;
use iqtree_repro::storage::{MemDevice, SimClock};
use iqtree_repro::tree::{IqTree, IqTreeOptions};
use iqtree_repro::xtree::{XTree, XTreeOptions};

fn dev() -> Box<MemDevice> {
    Box::new(MemDevice::new(8192))
}

fn avg_nn_time(
    tree: &mut IqTree,
    clock: &mut SimClock,
    queries: &iqtree_repro::geometry::Dataset,
) -> f64 {
    let mut t = 0.0;
    for q in queries.iter() {
        clock.reset();
        tree.nearest(clock, q);
        t += clock.total_time();
    }
    t / queries.len() as f64
}

#[test]
fn iqtree_beats_scan_in_high_dimensions() {
    // The "best of both worlds" claim at the scan-friendly end: even at
    // d = 16 uniform, the compressed second level keeps the IQ-tree below
    // a full scan of the exact file.
    let w = Workload::generate(20_000, 8, |n| data::uniform(16, n, 71));
    let mut clock = SimClock::default();
    let mut tree = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || dev(),
        &mut clock,
    );
    let scan = SeqScan::build(&w.db, Metric::Euclidean, dev(), &mut clock);

    let iq = avg_nn_time(&mut tree, &mut clock, &w.queries);
    let mut sc = 0.0;
    for q in w.queries.iter() {
        clock.reset();
        scan.nearest(&mut clock, q);
        sc += clock.total_time();
    }
    sc /= w.queries.len() as f64;
    assert!(iq < sc, "IQ-tree {iq} vs scan {sc}");
}

#[test]
fn iqtree_beats_xtree_in_high_dimensions() {
    let w = Workload::generate(20_000, 8, |n| data::uniform(14, n, 72));
    let mut clock = SimClock::default();
    let mut tree = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || dev(),
        &mut clock,
    );
    let xt = XTree::build(
        &w.db,
        Metric::Euclidean,
        XTreeOptions::default(),
        dev(),
        dev(),
        &mut clock,
    );

    let iq = avg_nn_time(&mut tree, &mut clock, &w.queries);
    let mut xts = 0.0;
    for q in w.queries.iter() {
        clock.reset();
        xt.nearest(&mut clock, q);
        xts += clock.total_time();
    }
    xts /= w.queries.len() as f64;
    assert!(iq < xts, "IQ-tree {iq} vs X-tree {xts}");
}

#[test]
fn scheduled_io_never_pays_more_seeks_on_average() {
    let w = Workload::generate(15_000, 10, |n| data::uniform(12, n, 73));
    let mut c_opt = SimClock::default();
    let t_opt = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || dev(),
        &mut c_opt,
    );
    let mut c_std = SimClock::default();
    let t_std = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions {
            scheduled_io: false,
            ..Default::default()
        },
        || dev(),
        &mut c_std,
    );
    let (mut seeks_opt, mut seeks_std, mut time_opt, mut time_std) = (0u64, 0u64, 0.0, 0.0);
    for q in w.queries.iter() {
        c_opt.reset();
        t_opt.nearest(&mut c_opt, q);
        seeks_opt += c_opt.stats().seeks;
        time_opt += c_opt.total_time();
        c_std.reset();
        t_std.nearest(&mut c_std, q);
        seeks_std += c_std.stats().seeks;
        time_std += c_std.total_time();
    }
    assert!(
        seeks_opt < seeks_std,
        "scheduler must trade seeks: {seeks_opt} vs {seeks_std}"
    );
    assert!(
        time_opt < time_std,
        "and win overall: {time_opt} vs {time_std}"
    );
}

#[test]
fn quantization_compresses_the_scanned_level() {
    // The quantized second level must be substantially smaller than the
    // exact representation it stands in for.
    let w = Workload::generate(20_000, 1, |n| data::uniform(16, n, 74));
    let mut clock = SimClock::default();
    let tree = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || dev(),
        &mut clock,
    );
    let quant_bytes: usize = tree.num_pages() * 8192;
    let exact_bytes = w.db.len() * 16 * 4;
    assert!(
        (quant_bytes as f64) < 0.7 * exact_bytes as f64,
        "quantized level {quant_bytes} B vs exact {exact_bytes} B"
    );
}

#[test]
fn optimizer_trace_is_recorded_and_minimal_at_choice() {
    let w = Workload::generate(10_000, 1, |n| data::cad_like(12, n, 75));
    let mut clock = SimClock::default();
    let tree = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || dev(),
        &mut clock,
    );
    let trace = tree.optimize_trace();
    assert!(!trace.cost_per_step.is_empty());
    let min = trace
        .cost_per_step
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    assert_eq!(trace.cost_per_step[trace.best_step], min);
}

#[test]
fn queries_on_fresh_clock_have_reproducible_cost() {
    let w = Workload::generate(8_000, 3, |n| data::color_like(16, n, 76));
    let run = || -> Vec<(u64, u64)> {
        let mut clock = SimClock::default();
        let tree = IqTree::build(
            &w.db,
            Metric::Euclidean,
            IqTreeOptions::default(),
            || dev(),
            &mut clock,
        );
        w.queries
            .iter()
            .map(|q| {
                clock.reset();
                tree.nearest(&mut clock, q);
                (clock.stats().seeks, clock.stats().blocks_read)
            })
            .collect()
    };
    assert_eq!(run(), run());
}
