//! Integration: window (hyperrectangle) queries agree across all four
//! methods and match a brute-force filter.

use iqtree_repro::data::{self, Workload};
use iqtree_repro::geometry::{Mbr, Metric};
use iqtree_repro::scan::SeqScan;
use iqtree_repro::storage::{MemDevice, SimClock};
use iqtree_repro::tree::{IqTree, IqTreeOptions};
use iqtree_repro::vafile::VaFile;
use iqtree_repro::xtree::{XTree, XTreeOptions};

fn dev() -> Box<MemDevice> {
    Box::new(MemDevice::new(4096))
}

#[test]
fn window_results_agree_across_methods() {
    for (name, w, dim) in [
        (
            "uniform",
            Workload::generate(5_000, 1, |n| data::uniform(6, n, 101)),
            6,
        ),
        (
            "weather",
            Workload::generate(5_000, 1, |n| data::weather_like(9, n, 102)),
            9,
        ),
    ] {
        let mut clock = SimClock::default();
        let iq = IqTree::build(
            &w.db,
            Metric::Euclidean,
            IqTreeOptions::default(),
            || dev(),
            &mut clock,
        );
        let xt = XTree::build(
            &w.db,
            Metric::Euclidean,
            XTreeOptions::default(),
            dev(),
            dev(),
            &mut clock,
        );
        let va = VaFile::build(&w.db, Metric::Euclidean, 4, dev(), dev(), &mut clock);
        let scan = SeqScan::build(&w.db, Metric::Euclidean, dev(), &mut clock);

        for (lo, hi) in [(0.2f32, 0.5f32), (0.0, 1.0), (0.45, 0.55), (0.9, 0.95)] {
            let win = Mbr::from_bounds(vec![lo; dim], vec![hi; dim]);
            let mut a = iq.window(&mut clock, &win);
            let mut b = xt.window(&mut clock, &win);
            let mut c = va.window(&mut clock, &win);
            let mut d = scan.window(&mut clock, &win);
            for v in [&mut a, &mut b, &mut c, &mut d] {
                v.sort_unstable();
            }
            let mut expect: Vec<u32> = (0..w.db.len() as u32)
                .filter(|&i| win.contains_point(w.db.point(i as usize)))
                .collect();
            expect.sort_unstable();
            assert_eq!(a, expect, "{name} iq window [{lo},{hi}]");
            assert_eq!(b, expect, "{name} xt window [{lo},{hi}]");
            assert_eq!(c, expect, "{name} va window [{lo},{hi}]");
            assert_eq!(d, expect, "{name} scan window [{lo},{hi}]");
        }
    }
}

#[test]
fn empty_window_returns_nothing() {
    let w = Workload::generate(1_000, 1, |n| data::uniform(4, n, 103));
    let mut clock = SimClock::default();
    let iq = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || dev(),
        &mut clock,
    );
    let win = Mbr::from_bounds(vec![2.0; 4], vec![3.0; 4]); // outside the cube
    assert!(iq.window(&mut clock, &win).is_empty());
}

#[test]
fn iq_window_uses_batched_fetch() {
    // A fat window touches many pages; the optimal fetch must coalesce
    // them into far fewer seeks than pages.
    let w = Workload::generate(30_000, 1, |n| data::uniform(8, n, 104));
    let mut clock = SimClock::default();
    let iq = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || dev(),
        &mut clock,
    );
    let win = Mbr::from_bounds(vec![0.1; 8], vec![0.9; 8]);
    clock.reset();
    let hits = iq.window(&mut clock, &win);
    assert!(!hits.is_empty());
    let pages_touched = clock.stats().blocks_read;
    assert!(
        clock.stats().seeks * 3 < pages_touched,
        "expected coalesced runs: {} seeks for {} blocks",
        clock.stats().seeks,
        pages_touched
    );
}
