//! SIMD-dispatch conformance: every engine must return bit-identical
//! results whether the quantized-domain scan kernels run on the detected
//! SIMD tier or pinned to the scalar fallback, and the multi-query batch
//! path must agree with the single-query path query by query. CI runs
//! this suite twice — once as-is and once with `IQ_FORCE_SCALAR=1` in the
//! environment — so both the runtime override and the env escape hatch
//! are on record.

use iqtree_repro::data;
use iqtree_repro::engine::knn_batch;
use iqtree_repro::geometry::{Dataset, Metric};
use iqtree_repro::quantize::{kernel_name, set_kernel_override, Kernel};
use iqtree_repro::storage::{BlockDevice, MemDevice, SimClock};
use iqtree_repro::{build_engine, EngineKind};

const N: usize = 4_000;
const DIM: usize = 7;
const K: usize = 9;

fn clustered() -> (Dataset, Vec<Vec<f32>>) {
    let w = iqtree_repro::data::Workload::generate(N, 12, |n| data::color_like(DIM, n, 29));
    let queries: Vec<Vec<f32>> = w.queries.iter().map(<[f32]>::to_vec).collect();
    (w.db, queries)
}

fn plain_dev() -> Box<dyn BlockDevice> {
    Box::new(MemDevice::new(4096))
}

/// Canonical order for k-NN results: engines may break exact-distance
/// ties differently, the distances themselves must match bitwise.
fn canon(mut hits: Vec<(u32, f64)>) -> Vec<(u64, u32)> {
    hits.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("no NaN distances")
            .then(a.0.cmp(&b.0))
    });
    hits.into_iter().map(|(id, d)| (d.to_bits(), id)).collect()
}

/// Runs every query type on every engine and returns one big canonical
/// transcript, so two dispatch tiers can be compared wholesale.
fn transcript(ds: &Dataset, queries: &[Vec<f32>]) -> Vec<Vec<(u64, u32)>> {
    let mut out = Vec::new();
    for kind in EngineKind::ALL {
        let mut clock = SimClock::default();
        let engine = build_engine(kind, ds, Metric::Euclidean, &mut plain_dev, &mut clock);
        for q in queries {
            out.push(canon(engine.knn(&mut clock, q, K)));
            let radius = engine.knn(&mut clock, q, 14).last().expect("14 hits").1;
            let mut ids: Vec<u32> = engine.range(&mut clock, q, radius * (1.0 + 1e-9));
            ids.sort_unstable();
            out.push(ids.into_iter().map(|id| (0, id)).collect());
        }
    }
    out
}

/// The scalar fallback and the detected SIMD tier must be observationally
/// equivalent: identical distances (bitwise) and identical result sets on
/// every engine, every query type. Override twiddling is process-global,
/// so both tiers run inside this one test.
#[test]
fn scalar_and_simd_dispatch_agree_bit_for_bit() {
    let (ds, queries) = clustered();

    let detected = set_kernel_override(None);
    let fast = transcript(&ds, &queries);

    set_kernel_override(Some(Kernel::Scalar));
    assert_eq!(kernel_name(), "scalar");
    let slow = transcript(&ds, &queries);
    set_kernel_override(None);

    assert_eq!(fast.len(), slow.len());
    for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
        assert_eq!(
            f, s,
            "transcript row {i} differs between {detected:?} and scalar"
        );
    }
}

/// The multi-query micro-batch path must agree with the single-query
/// path on every engine: same distances bitwise, same ids up to tie
/// order, whatever dispatch tier the environment selected (CI repeats
/// this under `IQ_FORCE_SCALAR=1`).
#[test]
fn batched_queries_agree_with_single_query_path() {
    let (ds, queries) = clustered();
    for kind in EngineKind::ALL {
        let mut clock = SimClock::default();
        let engine = build_engine(kind, &ds, Metric::Euclidean, &mut plain_dev, &mut clock);
        let batched = knn_batch(engine.as_ref(), &mut clock, &queries, K, 2);
        assert_eq!(batched.len(), queries.len());
        for (q, got) in queries.iter().zip(batched) {
            let want = canon(engine.knn(&mut clock, q, K));
            assert_eq!(
                canon(got),
                want,
                "engine {} diverges on batch",
                engine.name()
            );
        }
    }
}

/// When `IQ_FORCE_SCALAR` is set in the environment, runtime detection
/// must land on the scalar kernel (the CI scalar leg relies on this; in
/// a normal run the test only checks the gauge name is well-formed).
#[test]
fn env_var_forces_scalar_detection() {
    let forced = std::env::var("IQ_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0");
    set_kernel_override(None);
    if forced {
        assert_eq!(kernel_name(), "scalar");
    } else {
        assert!(["avx2", "sse41", "scalar"].contains(&kernel_name()));
    }
}
