//! Review scratch: crash between checkpoint apply and wal.reset().

use std::sync::{Arc, Mutex};

use iqtree_repro::data;
use iqtree_repro::geometry::Metric;
use iqtree_repro::storage::{BlockDevice, IqResult, MemDevice, MemWal, SimClock, WalStore};
use iqtree_repro::tree::{IqTree, IqTreeOptions};
use rand::{rngs::StdRng, Rng, SeedableRng};

const DIM: usize = 4;
const BS: usize = 512;

#[derive(Clone)]
struct SharedDev(Arc<Mutex<MemDevice>>);

impl SharedDev {
    fn new(bs: usize) -> Self {
        Self(Arc::new(Mutex::new(MemDevice::new(bs))))
    }
    fn image(&self) -> Vec<u8> {
        self.0.lock().unwrap().contents().to_vec()
    }
}

impl BlockDevice for SharedDev {
    fn block_size(&self) -> usize {
        self.0.lock().unwrap().block_size()
    }
    fn num_blocks(&self) -> u64 {
        self.0.lock().unwrap().num_blocks()
    }
    fn read_blocks(&self, clock: &mut SimClock, start: u64, buf: &mut [u8]) -> IqResult<()> {
        self.0.lock().unwrap().read_blocks(clock, start, buf)
    }
    fn append(&mut self, clock: &mut SimClock, data: &[u8]) -> IqResult<u64> {
        self.0.lock().unwrap().append(clock, data)
    }
    fn write_blocks(&mut self, clock: &mut SimClock, start: u64, data: &[u8]) -> IqResult<()> {
        self.0.lock().unwrap().write_blocks(clock, start, data)
    }
    fn truncate_blocks(&mut self, clock: &mut SimClock, nblocks: u64) -> IqResult<()> {
        self.0.lock().unwrap().truncate_blocks(clock, nblocks)
    }
    fn device_id(&self) -> u64 {
        self.0.lock().unwrap().device_id()
    }
}

#[derive(Clone)]
struct SharedWal {
    inner: Arc<Mutex<MemWal>>,
    tape: Arc<Mutex<Vec<u8>>>,
}

impl SharedWal {
    fn new() -> Self {
        Self {
            inner: Arc::new(Mutex::new(MemWal::new())),
            tape: Arc::new(Mutex::new(Vec::new())),
        }
    }
    fn tape(&self) -> Vec<u8> {
        self.tape.lock().unwrap().clone()
    }
}

impl WalStore for SharedWal {
    fn len(&self) -> u64 {
        self.inner.lock().unwrap().len()
    }
    fn append(&mut self, clock: &mut SimClock, bytes: &[u8]) -> IqResult<()> {
        self.tape.lock().unwrap().extend_from_slice(bytes);
        self.inner.lock().unwrap().append(clock, bytes)
    }
    fn read_at(&self, clock: &mut SimClock, off: u64, buf: &mut [u8]) -> IqResult<()> {
        self.inner.lock().unwrap().read_at(clock, off, buf)
    }
    fn sync(&mut self, clock: &mut SimClock) -> IqResult<()> {
        self.inner.lock().unwrap().sync(clock)
    }
    fn truncate(&mut self, clock: &mut SimClock, len: u64) -> IqResult<()> {
        self.inner.lock().unwrap().truncate(clock, len)
    }
    fn device_id(&self) -> u64 {
        self.inner.lock().unwrap().device_id()
    }
}

/// Crash AFTER the checkpoint transaction fully applied to the base files
/// but BEFORE wal.reset() truncated the log: base = post-fold images, log
/// = full tape. Recovery must succeed and leave the same answers.
#[test]
fn crash_after_checkpoint_apply_before_wal_reset_recovers() {
    let ds = data::uniform(DIM, 400, 2026);
    let devs = [SharedDev::new(BS), SharedDev::new(BS), SharedDev::new(BS)];
    let mut it = devs.iter().cloned();
    let mut clock = SimClock::default();
    let mut tree = IqTree::build(
        &ds,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || Box::new(it.next().unwrap()),
        &mut clock,
    );
    let wal = SharedWal::new();
    tree.attach_wal(Box::new(wal.clone()));

    // Delete-heavy churn so the folded exact file is SHORTER than the
    // pre-checkpoint appends' positions.
    let mut rng = StdRng::seed_from_u64(88);
    for i in 0..20u32 {
        let p: Vec<f32> = (0..DIM).map(|_| rng.gen()).collect();
        tree.insert(&mut clock, 400 + i, &p).expect("insert");
    }
    for i in 0..200u32 {
        assert!(tree.delete(&mut clock, i, ds.point(i as usize)).unwrap());
    }

    tree.checkpoint(&mut clock).expect("checkpoint");
    // Post-checkpoint base images; FULL log tape (as if the log truncate
    // never hit the disk).
    let post = [devs[0].image(), devs[1].image(), devs[2].image()];
    let log = wal.tape();
    drop(tree);

    let mut clock = SimClock::default();
    let result = IqTree::open_with_wal(
        DIM,
        Metric::Euclidean,
        IqTreeOptions::default(),
        Box::new(MemDevice::from_contents(BS, post[0].clone())),
        Box::new(MemDevice::from_contents(BS, post[1].clone())),
        Box::new(MemDevice::from_contents(BS, post[2].clone())),
        Box::new(MemWal::from_contents(log)),
        &mut clock,
    );
    match result {
        Ok((tree, _)) => {
            assert_eq!(tree.len(), 220);
        }
        Err(e) => panic!("recovery after checkpoint-apply crash failed: {e}"),
    }
}
