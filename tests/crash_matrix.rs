//! The crash-injection matrix: a seeded 200-operation insert/delete
//! workload runs against a WAL-attached tree while every byte of the log
//! and a base-file snapshot per operation are recorded. The matrix then
//! simulates a crash at **every frame boundary** of the log (plus
//! proptest-chosen intra-frame offsets), reopens the index from the
//! surviving bytes, and asserts the recovered tree answers k-NN
//! *bit-identically* to a shadow tree holding exactly the committed
//! operation prefix — and that the recovered level files are themselves
//! byte-identical to the shadow state.
//!
//! Crash models covered:
//! * torn log tail (cut inside a frame) — the unfinished transaction is
//!   discarded;
//! * durable-but-unapplied commit (cut exactly at a commit frame with the
//!   base one operation behind) — the transaction is replayed;
//! * power loss *during apply* (fault-injected base write after a durable
//!   commit) — the operation errors, the tree poisons itself, and reopen
//!   recovers the committed operation;
//! * crash at every frame boundary of a checkpoint transaction — either
//!   the whole fold happens or none of it.

use std::sync::{Arc, Mutex, OnceLock};

use iqtree_repro::data;
use iqtree_repro::geometry::Metric;
use iqtree_repro::storage::{
    BlockDevice, FaultConfig, FaultInjectingDevice, IqResult, MemDevice, MemWal, SimClock, WalStore,
};
use iqtree_repro::tree::verify::verify_index_with_wal;
use iqtree_repro::tree::{IqTree, IqTreeOptions};
use iqtree_repro::wal::FRAME_OVERHEAD;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const DIM: usize = 4;
const BS: usize = 512;
const N0: usize = 150;
const OPS: usize = 200;
const K: usize = 5;

/// A block device handle that keeps the underlying bytes reachable after
/// the tree takes ownership: snapshots for the crash matrix.
#[derive(Clone)]
struct SharedDev(Arc<Mutex<MemDevice>>);

impl SharedDev {
    fn new(bs: usize) -> Self {
        Self(Arc::new(Mutex::new(MemDevice::new(bs))))
    }

    fn image(&self) -> Vec<u8> {
        self.0.lock().expect("device lock").contents().to_vec()
    }
}

impl BlockDevice for SharedDev {
    fn block_size(&self) -> usize {
        self.0.lock().expect("device lock").block_size()
    }
    fn num_blocks(&self) -> u64 {
        self.0.lock().expect("device lock").num_blocks()
    }
    fn read_blocks(&self, clock: &mut SimClock, start: u64, buf: &mut [u8]) -> IqResult<()> {
        self.0
            .lock()
            .expect("device lock")
            .read_blocks(clock, start, buf)
    }
    fn append(&mut self, clock: &mut SimClock, data: &[u8]) -> IqResult<u64> {
        self.0.lock().expect("device lock").append(clock, data)
    }
    fn write_blocks(&mut self, clock: &mut SimClock, start: u64, data: &[u8]) -> IqResult<()> {
        self.0
            .lock()
            .expect("device lock")
            .write_blocks(clock, start, data)
    }
    fn truncate_blocks(&mut self, clock: &mut SimClock, nblocks: u64) -> IqResult<()> {
        self.0
            .lock()
            .expect("device lock")
            .truncate_blocks(clock, nblocks)
    }
    fn device_id(&self) -> u64 {
        self.0.lock().expect("device lock").device_id()
    }
}

/// A WAL store handle that additionally keeps a tape of every byte ever
/// appended — the full log stream survives even a checkpoint's truncate,
/// so crash cuts can be taken anywhere in it.
#[derive(Clone)]
struct SharedWal {
    inner: Arc<Mutex<MemWal>>,
    tape: Arc<Mutex<Vec<u8>>>,
}

impl SharedWal {
    fn new() -> Self {
        Self {
            inner: Arc::new(Mutex::new(MemWal::new())),
            tape: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn tape(&self) -> Vec<u8> {
        self.tape.lock().expect("tape lock").clone()
    }
}

impl WalStore for SharedWal {
    fn len(&self) -> u64 {
        self.inner.lock().expect("wal lock").len()
    }
    fn append(&mut self, clock: &mut SimClock, bytes: &[u8]) -> IqResult<()> {
        self.tape
            .lock()
            .expect("tape lock")
            .extend_from_slice(bytes);
        self.inner.lock().expect("wal lock").append(clock, bytes)
    }
    fn read_at(&self, clock: &mut SimClock, off: u64, buf: &mut [u8]) -> IqResult<()> {
        self.inner
            .lock()
            .expect("wal lock")
            .read_at(clock, off, buf)
    }
    fn sync(&mut self, clock: &mut SimClock) -> IqResult<()> {
        self.inner.lock().expect("wal lock").sync(clock)
    }
    fn truncate(&mut self, clock: &mut SimClock, len: u64) -> IqResult<()> {
        self.inner.lock().expect("wal lock").truncate(clock, len)
    }
    fn device_id(&self) -> u64 {
        self.inner.lock().expect("wal lock").device_id()
    }
}

/// Byte offsets of every frame start in `log`, plus the end of the log.
fn frame_boundaries(log: &[u8]) -> Vec<u64> {
    let mut out = vec![0u64];
    let mut pos = 0usize;
    while pos + FRAME_OVERHEAD <= log.len() {
        let len = u32::from_le_bytes(log[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let next = pos + FRAME_OVERHEAD + len;
        if next > log.len() {
            break;
        }
        pos = next;
        out.push(pos as u64);
    }
    if *out.last().expect("non-empty") != log.len() as u64 {
        out.push(log.len() as u64);
    }
    out
}

type Answers = Vec<Vec<(u32, u64)>>;

/// Everything the matrix needs, recorded in one workload run.
struct Fixture {
    /// The full log byte stream (never truncated).
    log: Vec<u8>,
    /// Log length right after operation `t` committed (= commit frame end).
    commit_end: Vec<u64>,
    /// Raw images of [dir, quant, exact] after `k` operations applied,
    /// `k = 0..=OPS` — `snapshots[k]` is the shadow state of prefix `k`.
    snapshots: Vec<[Vec<u8>; 3]>,
    /// `answers[k][q]` = the shadow tree's k-NN (ids and distance bits)
    /// for query `q` after `k` operations.
    answers: Vec<Answers>,
    queries: Vec<Vec<f32>>,
}

fn shadow_answers(tree: &IqTree, queries: &[Vec<f32>]) -> Answers {
    let mut clock = SimClock::default();
    queries
        .iter()
        .map(|q| {
            tree.knn(&mut clock, q, K)
                .into_iter()
                .map(|(id, d)| (id, d.to_bits()))
                .collect()
        })
        .collect()
}

fn build_shared(ds: &iqtree_repro::geometry::Dataset) -> (IqTree, [SharedDev; 3], SimClock) {
    let devs = [SharedDev::new(BS), SharedDev::new(BS), SharedDev::new(BS)];
    let mut it = devs.iter().cloned();
    let mut clock = SimClock::default();
    let tree = IqTree::build(
        ds,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || Box::new(it.next().expect("three devices")),
        &mut clock,
    );
    (tree, devs, clock)
}

/// The seeded workload: `OPS` randomized inserts/deletes against a
/// WAL-attached tree (recording log bytes and per-op base snapshots) and
/// against an identical shadow tree with no log (recording its answers).
fn run_workload() -> Fixture {
    let ds = data::uniform(DIM, N0, 4242);
    let queries: Vec<Vec<f32>> = data::uniform(DIM, 3, 999)
        .iter()
        .map(<[f32]>::to_vec)
        .collect();

    let (mut tree, devs, mut clock) = build_shared(&ds);
    let wal = SharedWal::new();
    tree.attach_wal(Box::new(wal.clone()));

    let (mut shadow, _shadow_devs, mut shadow_clock) = build_shared(&ds);

    let mut rng = StdRng::seed_from_u64(77);
    let mut live: Vec<(u32, Vec<f32>)> =
        (0..N0).map(|i| (i as u32, ds.point(i).to_vec())).collect();
    let mut next_id = N0 as u32;

    let mut fx = Fixture {
        log: Vec::new(),
        commit_end: Vec::new(),
        snapshots: vec![[devs[0].image(), devs[1].image(), devs[2].image()]],
        answers: vec![shadow_answers(&shadow, &queries)],
        queries,
    };

    for _ in 0..OPS {
        if rng.gen_bool(0.6) || live.len() <= 2 {
            let p: Vec<f32> = (0..DIM).map(|_| rng.gen()).collect();
            tree.insert(&mut clock, next_id, &p).expect("logged insert");
            shadow
                .insert(&mut shadow_clock, next_id, &p)
                .expect("shadow insert");
            live.push((next_id, p));
            next_id += 1;
        } else {
            let (id, p) = live.swap_remove(rng.gen_range(0..live.len()));
            assert!(tree.delete(&mut clock, id, &p).expect("logged delete"));
            assert!(shadow
                .delete(&mut shadow_clock, id, &p)
                .expect("shadow delete"));
        }
        fx.commit_end.push(tree.wal_bytes());
        fx.snapshots
            .push([devs[0].image(), devs[1].image(), devs[2].image()]);
        let ans = shadow_answers(&shadow, &fx.queries);
        fx.answers.push(ans);
    }
    fx.log = wal.tape();
    assert_eq!(
        fx.log.len() as u64,
        *fx.commit_end.last().expect("ops ran"),
        "tape and wal length agree"
    );
    fx
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(run_workload)
}

/// Restores base snapshot `base_idx`, crashes the log at byte `cut`,
/// reopens, and asserts the recovered tree is the shadow prefix of
/// `committed` operations — answer-bit-identical and file-byte-identical.
fn check_recovery(fx: &Fixture, cut: u64, committed: usize, base_idx: usize) {
    let devs: Vec<SharedDev> = fx.snapshots[base_idx]
        .iter()
        .map(|img| {
            SharedDev(Arc::new(Mutex::new(MemDevice::from_contents(
                BS,
                img.clone(),
            ))))
        })
        .collect();
    let wal = MemWal::from_contents(fx.log[..cut as usize].to_vec());
    let mut clock = SimClock::default();
    let (tree, report) = IqTree::open_with_wal(
        DIM,
        Metric::Euclidean,
        IqTreeOptions::default(),
        Box::new(devs[0].clone()),
        Box::new(devs[1].clone()),
        Box::new(devs[2].clone()),
        Box::new(wal),
        &mut clock,
    )
    .unwrap_or_else(|e| panic!("recovery at cut {cut} (base {base_idx}): {e}"));

    assert_eq!(
        report.replayed_txns, committed,
        "cut {cut}: committed transaction count"
    );
    for (qi, q) in fx.queries.iter().enumerate() {
        let got: Vec<(u32, u64)> = tree
            .knn(&mut clock, q, K)
            .into_iter()
            .map(|(id, d)| (id, d.to_bits()))
            .collect();
        assert_eq!(
            got, fx.answers[committed][qi],
            "cut {cut} base {base_idx} query {qi}: recovered k-NN must be \
             bit-identical to the shadow prefix"
        );
    }
    for (level, dev) in devs.iter().enumerate() {
        assert_eq!(
            dev.image(),
            fx.snapshots[committed][level],
            "cut {cut} base {base_idx}: level {level} bytes differ from the shadow prefix"
        );
    }
}

/// The matrix proper: a crash at every frame boundary of the whole
/// workload log, with the base files in the fully-applied state.
#[test]
fn crash_at_every_frame_boundary_recovers_the_committed_prefix() {
    let fx = fixture();
    let boundaries = frame_boundaries(&fx.log);
    assert!(
        boundaries.len() > 2 * OPS,
        "expected several frames per op, got {} boundaries",
        boundaries.len()
    );
    for &cut in &boundaries {
        let committed = fx.commit_end.partition_point(|&end| end <= cut);
        check_recovery(fx, cut, committed, committed);
    }
}

/// A commit can be durable before its base writes happen: for every
/// operation, cut exactly at its commit frame with the base one state
/// behind — recovery must roll the operation *forward*.
#[test]
fn durable_but_unapplied_commits_are_rolled_forward() {
    let fx = fixture();
    for (t, &end) in fx.commit_end.iter().enumerate() {
        check_recovery(fx, end, t + 1, t);
    }
}

/// After recovering from the final crash point, `verify` reports the
/// whole index (files and log) clean.
#[test]
fn recovered_index_verifies_clean() {
    let fx = fixture();
    let full = fx.log.len() as u64;
    let devs: Vec<SharedDev> = fx.snapshots[0]
        .iter()
        .map(|img| {
            SharedDev(Arc::new(Mutex::new(MemDevice::from_contents(
                BS,
                img.clone(),
            ))))
        })
        .collect();
    let wal = MemWal::from_contents(fx.log.clone());
    let mut clock = SimClock::default();
    let (tree, report) = IqTree::open_with_wal(
        DIM,
        Metric::Euclidean,
        IqTreeOptions::default(),
        Box::new(devs[0].clone()),
        Box::new(devs[1].clone()),
        Box::new(devs[2].clone()),
        Box::new(wal),
        &mut clock,
    )
    .expect("recovery from the oldest base snapshot");
    assert_eq!(report.replayed_txns, OPS);
    assert_eq!(report.discarded_bytes, 0);
    assert_eq!(tree.wal_bytes(), full);
    drop(tree);

    let report = verify_index_with_wal(
        Box::new(MemDevice::from_contents(BS, devs[0].image())),
        Box::new(MemDevice::from_contents(BS, devs[1].image())),
        Box::new(MemDevice::from_contents(BS, devs[2].image())),
        &fx.log,
        &mut clock,
    );
    assert!(report.is_clean(), "recovered index must verify clean");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crashes at arbitrary byte offsets *inside* frames: the torn frame
    /// (and its whole uncommitted transaction) is discarded, never
    /// half-applied.
    #[test]
    fn prop_crash_inside_any_frame_discards_the_torn_tail(
        sel in 0usize..100_000,
        off in 0u64..100_000,
    ) {
        let fx = fixture();
        let boundaries = frame_boundaries(&fx.log);
        let i = sel % (boundaries.len() - 1);
        let span = boundaries[i + 1] - boundaries[i];
        // Strictly inside the frame: at least 1 byte torn off.
        let cut = boundaries[i] + 1 + off % span.max(2).min(span);
        let cut = cut.min(boundaries[i + 1] - 1).max(boundaries[i] + 1);
        let committed = fx.commit_end.partition_point(|&end| end <= cut);
        check_recovery(fx, cut, committed, committed);
    }
}

/// Power loss between the durable commit and the base-file apply, injected
/// for real: the quantized level refuses the apply write, the operation
/// errors, the tree poisons itself against further mutation — and reopen
/// rolls the committed operation forward.
#[test]
fn crash_during_apply_poisons_the_tree_and_recovery_completes_the_op() {
    let ds = data::uniform(DIM, N0, 31337);
    let dir = SharedDev::new(BS);
    let quant = SharedDev::new(BS);
    let exact = SharedDev::new(BS);
    let quant_fault = Arc::new(Mutex::new(FaultInjectingDevice::new(
        Box::new(quant.clone()),
        FaultConfig::none(5),
    )));

    #[derive(Clone)]
    struct FaultHandle(Arc<Mutex<FaultInjectingDevice>>);
    impl BlockDevice for FaultHandle {
        fn block_size(&self) -> usize {
            self.0.lock().expect("lock").block_size()
        }
        fn num_blocks(&self) -> u64 {
            self.0.lock().expect("lock").num_blocks()
        }
        fn read_blocks(&self, clock: &mut SimClock, start: u64, buf: &mut [u8]) -> IqResult<()> {
            self.0.lock().expect("lock").read_blocks(clock, start, buf)
        }
        fn append(&mut self, clock: &mut SimClock, data: &[u8]) -> IqResult<u64> {
            self.0.lock().expect("lock").append(clock, data)
        }
        fn write_blocks(&mut self, clock: &mut SimClock, start: u64, data: &[u8]) -> IqResult<()> {
            self.0
                .lock()
                .expect("lock")
                .write_blocks(clock, start, data)
        }
        fn truncate_blocks(&mut self, clock: &mut SimClock, nblocks: u64) -> IqResult<()> {
            self.0.lock().expect("lock").truncate_blocks(clock, nblocks)
        }
        fn device_id(&self) -> u64 {
            self.0.lock().expect("lock").device_id()
        }
    }

    let mut clock = SimClock::default();
    let mut make = {
        let mut n = 0usize;
        let dir = dir.clone();
        let exact = exact.clone();
        let qf = quant_fault.clone();
        move || -> Box<dyn BlockDevice> {
            n += 1;
            match n {
                1 => Box::new(dir.clone()),
                2 => Box::new(FaultHandle(qf.clone())),
                _ => Box::new(exact.clone()),
            }
        }
    };
    let mut tree = IqTree::build(
        &ds,
        Metric::Euclidean,
        IqTreeOptions::default(),
        &mut make,
        &mut clock,
    );
    let wal = SharedWal::new();
    tree.attach_wal(Box::new(wal.clone()));

    // A few healthy logged operations first.
    let mut rng = StdRng::seed_from_u64(9);
    for i in 0..10u32 {
        let p: Vec<f32> = (0..DIM).map(|_| rng.gen()).collect();
        tree.insert(&mut clock, N0 as u32 + i, &p)
            .expect("healthy insert");
    }

    // Power fails on the next quantized-level write — i.e. mid-apply,
    // after the transaction's commit frame is already durable.
    quant_fault.lock().expect("lock").arm_crash(0, false);
    let victim: Vec<f32> = (0..DIM).map(|_| rng.gen()).collect();
    let err = tree
        .insert(&mut clock, 99_999, &victim)
        .expect_err("apply write must fail");
    assert!(!err.is_transient(), "simulated power loss: {err}");

    // The tree is poisoned: no further mutation is accepted.
    let err2 = tree
        .insert(&mut clock, 99_998, &victim)
        .expect_err("poisoned tree refuses updates");
    assert!(format!("{err2}").contains("reopen"), "poison error: {err2}");
    drop(tree);

    // Reopen from the surviving bytes: the committed insert is recovered.
    let committed_log = wal.tape();
    let (tree, report) = IqTree::open_with_wal(
        DIM,
        Metric::Euclidean,
        IqTreeOptions::default(),
        Box::new(MemDevice::from_contents(BS, dir.image())),
        Box::new(MemDevice::from_contents(BS, quant.image())),
        Box::new(MemDevice::from_contents(BS, exact.image())),
        Box::new(MemWal::from_contents(committed_log)),
        &mut clock,
    )
    .expect("recovery after mid-apply crash");
    assert_eq!(report.replayed_txns, 11, "10 healthy + 1 crashed-mid-apply");
    assert_eq!(tree.len(), N0 + 11);
    let hits = tree.range(&mut clock, &victim, 1e-9);
    assert!(
        hits.contains(&99_999),
        "the committed-but-unapplied insert must be rolled forward"
    );
}

/// The checkpoint fold is itself one transaction: a crash at any frame
/// boundary inside it leaves either the old state (not yet committed) or
/// the new generation (committed) — and query answers are identical
/// either way, because a checkpoint never changes the data.
#[test]
fn crash_at_every_frame_boundary_during_checkpoint() {
    let ds = data::uniform(DIM, 400, 2026);
    let queries: Vec<Vec<f32>> = data::uniform(DIM, 3, 555)
        .iter()
        .map(<[f32]>::to_vec)
        .collect();
    let (mut tree, devs, mut clock) = build_shared(&ds);
    let wal = SharedWal::new();
    tree.attach_wal(Box::new(wal.clone()));

    // Churn to create waste and log traffic.
    let mut rng = StdRng::seed_from_u64(88);
    for i in 0..60u32 {
        let p: Vec<f32> = (0..DIM).map(|_| rng.gen()).collect();
        tree.insert(&mut clock, 400 + i, &p).expect("insert");
    }
    for i in 0..30u32 {
        assert!(tree
            .delete(&mut clock, i, ds.point(i as usize))
            .expect("delete"));
    }
    let pre = [devs[0].image(), devs[1].image(), devs[2].image()];
    let pre_answers = shadow_answers(&tree, &queries);
    let pre_len = wal.tape().len() as u64;
    let old_generation = tree.generation();

    let new_generation = tree.checkpoint(&mut clock).expect("checkpoint");
    assert_eq!(new_generation, old_generation + 1);
    assert_eq!(tree.wal_bytes(), 0, "checkpoint empties the log");
    let log = wal.tape();
    drop(tree);

    // Crash at every frame boundary at or after the checkpoint txn began.
    for &cut in frame_boundaries(&log).iter().filter(|&&c| c >= pre_len) {
        let rdevs: Vec<SharedDev> = pre
            .iter()
            .map(|img| {
                SharedDev(Arc::new(Mutex::new(MemDevice::from_contents(
                    BS,
                    img.clone(),
                ))))
            })
            .collect();
        let mut clock = SimClock::default();
        let (tree, _) = IqTree::open_with_wal(
            DIM,
            Metric::Euclidean,
            IqTreeOptions::default(),
            Box::new(rdevs[0].clone()),
            Box::new(rdevs[1].clone()),
            Box::new(rdevs[2].clone()),
            Box::new(MemWal::from_contents(log[..cut as usize].to_vec())),
            &mut clock,
        )
        .unwrap_or_else(|e| panic!("recovery at checkpoint cut {cut}: {e}"));
        let folded = cut == log.len() as u64;
        assert_eq!(
            tree.generation(),
            if folded {
                new_generation
            } else {
                old_generation
            },
            "cut {cut}: generation is all-or-nothing"
        );
        assert_eq!(
            shadow_answers(&tree, &queries),
            pre_answers,
            "cut {cut}: a checkpoint crash must never change query answers"
        );
    }
}

/// Crash AFTER a checkpoint transaction fully applied to the base files
/// but BEFORE `wal.reset()` truncated the log: base = post-fold images,
/// log = full tape. The delete-heavy churn makes the folded exact file
/// *shorter* than positions the pre-checkpoint appends refer to, so a
/// naive replay over the folded base would write out of bounds. Recovery
/// must recognize the already-applied transactions and leave the
/// checkpointed answers intact.
#[test]
fn crash_after_checkpoint_apply_before_wal_reset_recovers() {
    let ds = data::uniform(DIM, 400, 2026);
    let (mut tree, devs, mut clock) = build_shared(&ds);
    let wal = SharedWal::new();
    tree.attach_wal(Box::new(wal.clone()));

    let mut rng = StdRng::seed_from_u64(88);
    for i in 0..20u32 {
        let p: Vec<f32> = (0..DIM).map(|_| rng.gen()).collect();
        tree.insert(&mut clock, 400 + i, &p).expect("insert");
    }
    for i in 0..200u32 {
        assert!(tree.delete(&mut clock, i, ds.point(i as usize)).unwrap());
    }

    tree.checkpoint(&mut clock).expect("checkpoint");
    // Post-checkpoint base images; FULL log tape (as if the log truncate
    // never hit the disk).
    let post = [devs[0].image(), devs[1].image(), devs[2].image()];
    let log = wal.tape();
    drop(tree);

    let mut clock = SimClock::default();
    let result = IqTree::open_with_wal(
        DIM,
        Metric::Euclidean,
        IqTreeOptions::default(),
        Box::new(MemDevice::from_contents(BS, post[0].clone())),
        Box::new(MemDevice::from_contents(BS, post[1].clone())),
        Box::new(MemDevice::from_contents(BS, post[2].clone())),
        Box::new(MemWal::from_contents(log)),
        &mut clock,
    );
    match result {
        Ok((tree, _)) => {
            assert_eq!(tree.len(), 220);
        }
        Err(e) => panic!("recovery after checkpoint-apply crash failed: {e}"),
    }
}
