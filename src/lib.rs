//! Umbrella crate for the IQ-tree reproduction (ICDE 2000).
//!
//! Re-exports the whole workspace behind one dependency so examples and
//! downstream users can write `use iqtree_repro::...`:
//!
//! * [`tree`] — the IQ-tree itself (the paper's contribution),
//! * [`geometry`], [`storage`], [`quantize`], [`cost`], [`cache`] — the substrates,
//! * [`wal`] — the checksummed write-ahead log behind crash-consistent updates,
//! * [`obs`] — metrics registry, spans, phase times and cost auditing,
//! * [`data`] — synthetic data sets and fractal-dimension estimation,
//! * [`scan`], [`vafile`], [`xtree`] — the baselines of the evaluation,
//! * [`engine`] — the unified query layer ([`engine::AccessMethod`],
//!   the shared batch executor) with the [`engines`] factory building any
//!   of the four methods behind one trait object.
//!
//! # Quickstart
//!
//! ```
//! use iqtree_repro::data::{self, Workload};
//! use iqtree_repro::geometry::Metric;
//! use iqtree_repro::storage::{MemDevice, SimClock};
//! use iqtree_repro::tree::{IqTree, IqTreeOptions};
//!
//! // 2 000 uniform points in 8 dimensions, 5 held out as queries.
//! let w = Workload::generate(2_000, 5, |n| data::uniform(8, n, 42));
//! let mut clock = SimClock::default();
//! let tree = IqTree::build(
//!     &w.db,
//!     Metric::Euclidean,
//!     IqTreeOptions::default(),
//!     || Box::new(MemDevice::new(8192)),
//!     &mut clock,
//! );
//! clock.reset();
//! let (id, dist) = tree.nearest(&mut clock, w.queries.point(0)).unwrap();
//! assert!(dist >= 0.0 && (id as usize) < w.db.len());
//! println!("nn = {id} at {dist:.4} (simulated {:.1} ms)", clock.total_time() * 1e3);
//! ```

pub use iq_bench as bench;
pub use iq_cache as cache;
pub use iq_cost as cost;
pub use iq_data as data;
pub use iq_engine as engine;
pub use iq_geometry as geometry;
pub use iq_obs as obs;
pub use iq_quantize as quantize;
pub use iq_scan as scan;
pub use iq_storage as storage;
pub use iq_tree as tree;
pub use iq_vafile as vafile;
pub use iq_wal as wal;
pub use iq_xtree as xtree;

pub mod engines;

pub use engines::{build_engine, build_engine_with, EngineKind, EngineOptions};
