//! `iq` — command-line driver for the IQ-tree reproduction.
//!
//! ```text
//! iq generate --kind uniform --dim 8 --n 10000 --seed 1 --out points.csv
//! iq build    --input points.csv --index ./myindex [--block 8192] [--metric l2|linf|l1]
//! iq query    --index ./myindex --point 0.1,0.2,... [--k 5] [--trace] [--cache-blocks 256]
//! iq range    --index ./myindex --point 0.1,0.2,... --radius 0.25
//! iq batch    --index ./myindex --queries q.csv [--k 5] [--threads 8]
//! iq stats    --index ./myindex [--format prometheus|json]
//! iq checkpoint --index ./myindex
//! iq recover  --index ./myindex [--dry-run]
//! ```
//!
//! Points are CSV rows of `f32` coordinates. An index is a directory with
//! three block files (`dir.bin`, `quant.bin`, `exact.bin`), a write-ahead
//! log (`wal.bin`) and a small `meta` file recording dimension, metric and
//! block size. Opening an index replays any committed transactions the log
//! holds and drops torn tails, so a crash mid-update is invisible to
//! queries. Query timings printed are *simulated* disk+CPU seconds (see
//! the crate docs).

use iqtree_repro::data;
use iqtree_repro::engine::{knn_paginated, AccessMethod, Filter, PageSpec, QueryOptions};
use iqtree_repro::geometry::Metric;
use iqtree_repro::storage::{
    BlockDevice, FileDevice, FileWal, MemDevice, MmapFileDevice, SimClock,
};
use iqtree_repro::tree::{IqTree, IqTreeOptions};
use iqtree_repro::EngineKind;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Metrics must be enabled *before* any index is built or opened:
    // the device stacks only insert their observation layers when the
    // global registry is already recording at construction time.
    let metrics_json = opts.get("metrics-json").cloned();
    if metrics_json.is_some() {
        iqtree_repro::obs::global().set_enabled(true);
    }
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "ingest" => cmd_ingest(&opts),
        "build" => cmd_build(&opts),
        "query" => cmd_query(&opts),
        "explain" => cmd_explain(&opts),
        "range" => cmd_range(&opts),
        "batch" => cmd_batch(&opts),
        "stats" => cmd_stats(&opts),
        "verify" => cmd_verify(&opts),
        "checkpoint" => cmd_checkpoint(&opts),
        "recover" => cmd_recover(&opts),
        "bench" => cmd_bench(&opts),
        _ => Err(format!("unknown command `{cmd}`")),
    };
    if let Some(path) = metrics_json {
        let json = iqtree_repro::obs::global().to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  iq generate --kind <uniform|cad|color|weather> --dim <d> --n <count> [--seed <s>] --out <file> [--format <csv|fvecs>]
  iq ingest   --input <file.fvecs|bvecs|csv> [--out <file.fvecs|csv>] [--block <bytes>]
  iq build    --input <file> --index <dir> [--block <bytes>] [--metric <l2|linf|l1>]
  iq query    --index <dir> --point <x,y,...> [--k <k>] [--filter <expr>] [--limit <m>] [--offset <o>] [--epsilon <e>] [--nprobes <p>] [--refine-factor <f>] [--budget-ms <ms>] [--trace] [--trace-tree] [--trace-json <path>] [--cache-blocks <frames>] [--engine <e>]
  iq explain  --index <dir> [--k <k>] [--engine <e>] [--epsilon <e>] [--nprobes <p>] [--refine-factor <f>] [--budget-ms <ms>] [--filter <expr>] [--analyze --point <x,y,...>] [--json]
  iq range    --index <dir> --point <x,y,...> --radius <r> [--cache-blocks <frames>] [--engine <e>]
  iq batch    --index <dir> --queries <file> [--k <k>] [--filter <expr>] [--limit <m>] [--offset <o>] [--epsilon <e>] [--nprobes <p>] [--refine-factor <f>] [--budget-ms <ms>] [--threads <t>] [--cache-blocks <frames>] [--engine <e>]
  iq stats    --index <dir> [--format <prometheus|json>] [--cache-blocks <frames>]
  iq stats    --slow [--slow-log <path>] | --window <n> [--telemetry <path>]
  iq verify   --index <dir>
  iq checkpoint --index <dir>
  iq recover  --index <dir> [--dry-run]
  iq bench    --input <file> [--queries <q>] [--metric <l2|linf|l1>] [--json]
              [--date <yyyy-mm-dd>]

Vector files may be CSV (plain rows, or `[x,y,...],attr,...` literals with
an optional `# attrs: name,...` header), fvecs or bvecs — the format is
chosen by extension. `iq ingest` validates a file through the real-file
block device and optionally converts it.
--engine selects the access method: iqtree (default, opens the persisted
index at --index) or one of the baselines vafile, xtree, scan, which are
rebuilt in memory from --input <file> (they have no on-disk format).
--filter answers the k nearest neighbors *satisfying* a predicate over the
dataset's attribute columns — `col in v1,v2`, `col range lo..hi` or
`col = v` — and needs --input <file> for the columns (a dataset without
any gains a synthesized `mod10` column, id modulo 10). k counts
post-filter results; --limit/--offset slice the canonically ordered
(distance, then id) result list, so disjoint offsets paginate cleanly.
--cache-blocks puts an LRU buffer pool of that many frames in front of each
index file; without it every query is cold, as in the paper's experiments.
Approximate k-NN (query/batch; defaults are exact): --epsilon <e> allows a
(1+e)x relative error for early termination, --nprobes <p> caps the
approximation-level candidates probed (pages, or VA-file entries),
--refine-factor <f> caps exact-point look-ups at k*f (f=1 is unlimited),
--budget-ms <ms> returns the best answer within a simulated-time budget.
--trace prints the per-phase time breakdown of the query and, where the
engine has a cost model, predicted vs observed cost. --trace-tree prints
the hierarchical span tree of the query (phase leaves sum exactly to the
flat phase breakdown); --trace-json <path> writes the same tree in Chrome
trace-event format, loadable in Perfetto / chrome://tracing.
`iq explain` prints the engine's cost-model prediction for a k-NN query
under the given knobs *without running it*; with --analyze (and --point)
the query also runs and predicted vs observed are compared side by side.
`iq stats --slow` prints the retained slow-query log (written by
`iq bench` as iq-slowlog.json, 1-in-N sampled trace trees, top-K slowest
kept); `iq stats --window <n>` reports counter rates and histogram
percentiles over the last n telemetry snapshots (iq-telemetry.json).
--metrics-json <path> (any command) enables the global metrics registry and
writes its JSON snapshot to <path> on exit.
`iq checkpoint` folds the write-ahead log into the base files (reclaiming
orphaned exact-level blocks), truncates the log and bumps the index
generation. `iq recover` replays any committed transactions left in the
log and drops torn tails; with --dry-run it only scans and describes what
recovery *would* do, mutating nothing.";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{flag}`"));
        };
        // A flag followed by another flag (or by nothing) is boolean.
        match it.peek() {
            Some(next) if !next.starts_with("--") => {
                out.insert(name.to_string(), it.next().expect("peeked").clone());
            }
            _ => {
                out.insert(name.to_string(), "1".to_string());
            }
        }
    }
    Ok(out)
}

fn req<'a>(opts: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    opts.get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{name}"))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: `{s}`"))
}

fn parse_metric(opts: &HashMap<String, String>) -> Result<Metric, String> {
    match opts.get("metric").map(String::as_str).unwrap_or("l2") {
        "l2" => Ok(Metric::Euclidean),
        "linf" => Ok(Metric::Maximum),
        "l1" => Ok(Metric::Manhattan),
        other => Err(format!("unknown metric `{other}` (use l2, linf or l1)")),
    }
}

fn parse_cache_blocks(opts: &HashMap<String, String>) -> Result<Option<usize>, String> {
    match opts.get("cache-blocks") {
        Some(s) => {
            let frames: usize = parse_num(s, "--cache-blocks")?;
            if frames == 0 {
                return Err("--cache-blocks needs at least one frame".into());
            }
            Ok(Some(frames))
        }
        None => Ok(None),
    }
}

fn parse_point(s: &str) -> Result<Vec<f32>, String> {
    s.split(',')
        .map(|t| parse_num::<f32>(t.trim(), "coordinate"))
        .collect()
}

/// Reads a vector file of any supported format (by extension), attribute
/// columns included.
fn load_vectors(path: &str) -> Result<data::VectorDataset, String> {
    data::read_auto(Path::new(path)).map_err(|e| format!("read {path}: {e}"))
}

/// Guarantees at least one attribute column to filter on: a dataset
/// without any (fvecs/bvecs files, plain CSV) gains the synthesized
/// `mod10` column — id modulo 10 — so filtered workloads run on every
/// input format.
fn ensure_attrs(vd: &mut data::VectorDataset) {
    if vd.attrs.names().is_empty() {
        let mut attrs = data::AttrTable::with_columns(vec!["mod10".into()]);
        for id in 0..vd.points.len() {
            attrs.push_row(&[(id % 10) as i64]);
        }
        vd.attrs = attrs;
    }
}

/// Compiles `--filter <expr>` against the attribute columns of the
/// `--input` dataset (required: the persisted index stores no attributes).
fn build_filter(
    expr: &str,
    opts: &HashMap<String, String>,
    engine_len: usize,
) -> Result<Filter, String> {
    let pred = data::Predicate::parse(expr)?;
    let input = req(opts, "input")
        .map_err(|_| "--filter needs --input <file> for the attribute columns".to_string())?;
    let mut vd = load_vectors(input)?;
    ensure_attrs(&mut vd);
    if vd.points.len() != engine_len {
        return Err(format!(
            "--input holds {} points but the engine indexes {engine_len}",
            vd.points.len()
        ));
    }
    pred.compile(&vd.attrs)
}

/// The approximation knobs of a query command (`--epsilon`, `--nprobes`,
/// `--refine-factor`, `--budget-ms`); all default to the exact search.
fn parse_query_opts(opts: &HashMap<String, String>) -> Result<QueryOptions, String> {
    let mut qopts = QueryOptions::EXACT;
    if let Some(s) = opts.get("epsilon") {
        qopts.epsilon = parse_num(s, "--epsilon")?;
    }
    if let Some(s) = opts.get("nprobes") {
        qopts.nprobes = Some(parse_num(s, "--nprobes")?);
    }
    if let Some(s) = opts.get("refine-factor") {
        qopts.refine_factor = parse_num(s, "--refine-factor")?;
    }
    if let Some(s) = opts.get("budget-ms") {
        let ms: f64 = parse_num(s, "--budget-ms")?;
        qopts.time_budget = Some(ms / 1e3);
    }
    qopts.validate()?;
    Ok(qopts)
}

/// The `k`/`--limit`/`--offset` triple of a query command.
fn parse_page(opts: &HashMap<String, String>) -> Result<PageSpec, String> {
    Ok(PageSpec {
        k: opts.get("k").map_or(Ok(1), |s| parse_num(s, "--k"))?,
        offset: opts
            .get("offset")
            .map_or(Ok(0), |s| parse_num(s, "--offset"))?,
        limit: opts
            .get("limit")
            .map(|s| parse_num(s, "--limit"))
            .transpose()?,
    })
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let kind = req(opts, "kind")?;
    let dim: usize = parse_num(req(opts, "dim")?, "--dim")?;
    let n: usize = parse_num(req(opts, "n")?, "--n")?;
    let seed: u64 = opts.get("seed").map_or(Ok(1), |s| parse_num(s, "--seed"))?;
    let out = req(opts, "out")?;
    let ds = match kind {
        "uniform" => data::uniform(dim, n, seed),
        "cad" => data::cad_like(dim, n, seed),
        "color" => data::color_like(dim, n, seed),
        "weather" => data::weather_like(dim, n, seed),
        other => return Err(format!("unknown kind `{other}`")),
    };
    let format = match opts.get("format").map(String::as_str) {
        Some(f) => f.to_string(),
        None if out.ends_with(".fvecs") => "fvecs".into(),
        None => "csv".into(),
    };
    match format.as_str() {
        "csv" => data::write_csv(Path::new(out), &ds)?,
        "fvecs" => {
            data::write_fvecs(Path::new(out), &ds).map_err(|e| format!("write {out}: {e}"))?;
        }
        other => return Err(format!("unknown format `{other}` (use csv or fvecs)")),
    }
    println!(
        "wrote {} points of dimension {dim} to {out} ({format})",
        ds.len()
    );
    Ok(())
}

/// Validates a real vector file by pulling its raw bytes through the
/// read-only [`MmapFileDevice`] (so the scan's simulated I/O cost is
/// reported) and decoding them, then prints a summary and optionally
/// converts to another format.
fn cmd_ingest(opts: &HashMap<String, String>) -> Result<(), String> {
    let input = req(opts, "input")?;
    let block: usize = opts
        .get("block")
        .map_or(Ok(4096), |s| parse_num(s, "--block"))?;
    let path = Path::new(input);
    let dev = MmapFileDevice::open(path, block).map_err(|e| format!("open {input}: {e}"))?;
    let mut clock = SimClock::default();
    let mut bytes = dev
        .read_to_vec(&mut clock, 0, dev.num_blocks())
        .map_err(|e| format!("read {input}: {e}"))?;
    bytes.truncate(dev.file_len() as usize);
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let vd = match ext {
        "fvecs" => data::VectorDataset::bare(
            data::ingest::decode_fvecs(&bytes).map_err(|e| format!("{input}: {e}"))?,
        ),
        "bvecs" => data::VectorDataset::bare(
            data::ingest::decode_bvecs(&bytes).map_err(|e| format!("{input}: {e}"))?,
        ),
        // CSV has no bytes-level decoder entry point worth duplicating
        // here; the file was still verified readable through the device.
        _ => load_vectors(input)?,
    };
    let attr_names = if vd.attrs.names().is_empty() {
        "none".to_string()
    } else {
        vd.attrs.names().join(", ")
    };
    println!(
        "{input}: {} points, {}-d, attributes: {attr_names}",
        vd.points.len(),
        vd.points.dim(),
    );
    println!(
        "read {} blocks of {block} B via {} in {:.2} simulated ms",
        dev.num_blocks(),
        if dev.is_mapped() { "mmap" } else { "pread" },
        clock.total_time() * 1e3,
    );
    if let Some(out) = opts.get("out") {
        let outp = Path::new(out);
        match outp.extension().and_then(|e| e.to_str()).unwrap_or("") {
            "fvecs" => {
                data::write_fvecs(outp, &vd.points).map_err(|e| format!("write {out}: {e}"))?
            }
            "bvecs" => {
                data::write_bvecs(outp, &vd.points).map_err(|e| format!("write {out}: {e}"))?
            }
            _ => data::write_vec_csv(outp, &vd).map_err(|e| format!("write {out}: {e}"))?,
        }
        println!("converted to {out}");
    }
    Ok(())
}

struct IndexMeta {
    dim: usize,
    metric: Metric,
    block: usize,
}

fn meta_path(index: &Path) -> PathBuf {
    index.join("meta")
}

fn save_meta(index: &Path, m: &IndexMeta) -> Result<(), String> {
    let metric = match m.metric {
        Metric::Euclidean => "l2",
        Metric::Maximum => "linf",
        Metric::Manhattan => "l1",
    };
    std::fs::write(
        meta_path(index),
        format!("dim={}\nmetric={metric}\nblock={}\n", m.dim, m.block),
    )
    .map_err(|e| format!("write meta: {e}"))
}

fn load_meta(index: &Path) -> Result<IndexMeta, String> {
    let text = std::fs::read_to_string(meta_path(index))
        .map_err(|e| format!("not an index directory ({e})"))?;
    let mut kv = HashMap::new();
    for line in text.lines() {
        if let Some((k, v)) = line.split_once('=') {
            kv.insert(k.to_string(), v.to_string());
        }
    }
    let dim = parse_num(kv.get("dim").ok_or("meta missing dim")?, "dim")?;
    let block = parse_num(kv.get("block").ok_or("meta missing block")?, "block")?;
    let metric = match kv.get("metric").map(String::as_str) {
        Some("l2") | None => Metric::Euclidean,
        Some("linf") => Metric::Maximum,
        Some("l1") => Metric::Manhattan,
        Some(other) => return Err(format!("meta has unknown metric `{other}`")),
    };
    Ok(IndexMeta { dim, metric, block })
}

const FILES: [&str; 3] = ["dir.bin", "quant.bin", "exact.bin"];
const WAL_FILE: &str = "wal.bin";

fn cmd_build(opts: &HashMap<String, String>) -> Result<(), String> {
    let input = req(opts, "input")?;
    let index = PathBuf::from(req(opts, "index")?);
    let block: usize = opts
        .get("block")
        .map_or(Ok(8192), |s| parse_num(s, "--block"))?;
    let metric = parse_metric(opts)?;
    let ds = load_vectors(input)?.points;
    std::fs::create_dir_all(&index).map_err(|e| format!("create {index:?}: {e}"))?;

    let mut clock = SimClock::default();
    let mut names = FILES.iter();
    let tree = IqTree::build(
        &ds,
        metric,
        IqTreeOptions::default(),
        || {
            let path = index.join(names.next().expect("three files"));
            Box::new(FileDevice::create(&path, block).expect("create index file"))
                as Box<dyn BlockDevice>
        },
        &mut clock,
    );
    save_meta(
        &index,
        &IndexMeta {
            dim: ds.dim(),
            metric,
            block,
        },
    )?;
    // An empty write-ahead log completes the index: from now on every
    // insert/delete is logged before it touches the base files.
    FileWal::open(&index.join(WAL_FILE)).map_err(|e| format!("create {WAL_FILE}: {e}"))?;
    let (d, q, e) = tree.storage_blocks();
    println!(
        "built IQ-tree over {} points ({}-d): {} pages, resolutions {:?}",
        tree.len(),
        ds.dim(),
        tree.num_pages(),
        tree.bits_histogram(),
    );
    println!(
        "storage: directory {d} + quantized {q} + exact {e} blocks of {block} B \
         (scanned level at {:.0}% of exact size)",
        tree.compression_ratio() * 100.0,
    );
    Ok(())
}

fn open_tree(
    index: &Path,
    cache_blocks: Option<usize>,
) -> Result<(IqTree, SimClock, IndexMeta), String> {
    let meta = load_meta(index)?;
    let mut clock = SimClock::default();
    let open = |name: &str| -> Result<Box<dyn BlockDevice>, String> {
        Ok(Box::new(
            FileDevice::open(&index.join(name), meta.block)
                .map_err(|e| format!("open {name}: {e}"))?,
        ))
    };
    let opts = IqTreeOptions {
        cache_blocks,
        ..Default::default()
    };
    let wal_path = index.join(WAL_FILE);
    let tree = if wal_path.exists() {
        // Recovery-on-open: replay committed transactions the log still
        // holds, drop torn tails, and keep the log attached for updates.
        let store = FileWal::open(&wal_path).map_err(|e| format!("open {WAL_FILE}: {e}"))?;
        let (tree, report) = IqTree::open_with_wal(
            meta.dim,
            meta.metric,
            opts,
            open(FILES[0])?,
            open(FILES[1])?,
            open(FILES[2])?,
            Box::new(store),
            &mut clock,
        )
        .map_err(|e| format!("open index: {e}"))?;
        if !report.log_was_clean() {
            eprintln!(
                "recovery: replayed {} committed transaction(s) ({} frame(s)), \
                 discarded {} uncommitted byte(s)",
                report.replayed_txns, report.replayed_frames, report.discarded_bytes,
            );
        }
        tree
    } else {
        // No log: a pre-WAL (format v2) index, opened read-only for
        // queries; updates require a rebuild to the current format.
        IqTree::open(
            meta.dim,
            meta.metric,
            opts,
            open(FILES[0])?,
            open(FILES[1])?,
            open(FILES[2])?,
            &mut clock,
        )
        .map_err(|e| format!("open index: {e}"))?
    };
    clock.reset();
    Ok((tree, clock, meta))
}

fn parse_engine(opts: &HashMap<String, String>) -> Result<EngineKind, String> {
    match opts.get("engine") {
        Some(s) => s.parse(),
        None => Ok(EngineKind::IqTree),
    }
}

/// Resolves `--engine` to a ready-to-query [`AccessMethod`]: the IQ-tree
/// opens its persisted index; the baselines (which have no on-disk format)
/// are rebuilt in memory from `--input`. Returns the engine, a reset clock
/// and the dimensionality.
fn open_engine(
    opts: &HashMap<String, String>,
) -> Result<(Box<dyn AccessMethod>, SimClock), String> {
    let kind = parse_engine(opts)?;
    if kind == EngineKind::IqTree {
        let index = PathBuf::from(req(opts, "index")?);
        let (tree, clock, _) = open_tree(&index, parse_cache_blocks(opts)?)?;
        return Ok((Box::new(tree), clock));
    }
    let input = req(opts, "input").map_err(|_| {
        format!(
            "--engine {} is rebuilt in memory: missing --input <file>",
            kind.name()
        )
    })?;
    let ds = load_vectors(input)?.points;
    let metric = parse_metric(opts)?;
    let mut clock = SimClock::default();
    let eng = iqtree_repro::build_engine(
        kind,
        &ds,
        metric,
        || Box::new(MemDevice::new(8192)),
        &mut clock,
    );
    clock.reset();
    Ok((eng, clock))
}

fn cmd_query(opts: &HashMap<String, String>) -> Result<(), String> {
    let point = parse_point(req(opts, "point")?)?;
    let page = parse_page(opts)?;
    let qopts = parse_query_opts(opts)?;
    let (eng, mut clock) = open_engine(opts)?;
    if point.len() != eng.dim() {
        return Err(format!(
            "point has {} coordinates, index is {}-d",
            point.len(),
            eng.dim()
        ));
    }
    let filter = opts
        .get("filter")
        .map(|expr| build_filter(expr, opts, eng.len()))
        .transpose()?;
    let paged = filter.is_some() || page.offset > 0 || page.limit.is_some();
    let traced = opts.contains_key("trace");
    let trace_tree = opts.contains_key("trace-tree");
    let trace_json = opts.get("trace-json").cloned();
    if trace_tree || trace_json.is_some() {
        clock.enable_tracing();
    }
    let (hits, trace) = if paged {
        // Filtered/paginated path: trace the search, then slice the
        // canonically ordered list exactly as `knn_paginated_opts` does.
        let (mut all, trace) =
            eng.knn_opts_traced(&mut clock, &point, page.k, filter.as_ref(), &qopts);
        all.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("no NaN distances")
                .then(a.0.cmp(&b.0))
        });
        let hits: Vec<(u32, f64)> = all
            .into_iter()
            .skip(page.offset)
            .take(page.limit.unwrap_or(usize::MAX))
            .collect();
        (hits, trace)
    } else {
        eng.knn_opts_traced(&mut clock, &point, page.k, None, &qopts)
    };
    for (rank, (id, dist)) in hits.iter().enumerate() {
        println!(
            "{:>3}. id {id:>8}  distance {dist:.6}",
            page.offset + rank + 1
        );
    }
    if let Some(f) = &filter {
        println!(
            "-- filter matches {} of {} points (selectivity {:.3})",
            f.matching(),
            f.domain(),
            f.selectivity(),
        );
    }
    if !qopts.is_exact() {
        println!(
            "-- approximate search ({}): {}",
            describe_query_opts(&qopts),
            if trace.terminated_early > 0 {
                "terminated early"
            } else {
                "knobs never fired (result is exact)"
            },
        );
    }
    println!(
        "-- {} result(s) from {} in {:.2} simulated ms ({} seeks, {} blocks)",
        hits.len(),
        eng.name(),
        clock.total_time() * 1e3,
        clock.stats().seeks,
        clock.stats().blocks_read,
    );
    if traced {
        print_trace(eng.as_ref(), &clock, &trace, page.k, &qopts);
    }
    if let Some(tree) = clock.take_trace() {
        if trace_tree {
            print!("{}", tree.render_text());
        }
        if let Some(path) = trace_json {
            std::fs::write(&path, tree.to_chrome_json())
                .map_err(|e| format!("write {path}: {e}"))?;
            println!(
                "-- wrote Chrome trace ({} span(s)) to {path}; load it in Perfetto or chrome://tracing",
                tree.root.node_count(),
            );
        }
    }
    Ok(())
}

/// Human-readable list of the non-default approximation knobs.
fn describe_query_opts(qopts: &QueryOptions) -> String {
    let mut parts = Vec::new();
    if qopts.epsilon > 0.0 {
        parts.push(format!("epsilon {}", qopts.epsilon));
    }
    if let Some(p) = qopts.nprobes {
        parts.push(format!("nprobes {p}"));
    }
    if qopts.refine_factor > 1 {
        parts.push(format!("refine-factor {}", qopts.refine_factor));
    }
    if let Some(b) = qopts.time_budget {
        parts.push(format!("budget {:.3} ms", b * 1e3));
    }
    parts.join(", ")
}

/// The `--trace` report: per-phase simulated/wall breakdown (the phase
/// sum equals the simulated total whenever every charge happened inside
/// a phase), the query's work counters, and — for engines with a cost
/// model — predicted vs observed page accesses and I/O time.
fn print_trace(
    eng: &dyn AccessMethod,
    clock: &SimClock,
    trace: &iqtree_repro::engine::QueryTrace,
    k: usize,
    qopts: &QueryOptions,
) {
    let p = clock.phase_times();
    let total = clock.total_time();
    println!("phase breakdown:          simulated        wall");
    for ph in iqtree_repro::obs::PHASES {
        println!(
            "  {:<10} {:>16.4} ms {:>10.4} ms",
            ph.name(),
            p.sim[ph.index()] * 1e3,
            p.wall[ph.index()] * 1e3,
        );
    }
    let covered = if total > 0.0 {
        p.total_sim() / total * 100.0
    } else {
        100.0
    };
    println!(
        "  {:<10} {:>16.4} ms of {:.4} ms total ({covered:.1}% attributed)",
        "sum",
        p.total_sim() * 1e3,
        total * 1e3,
    );
    println!(
        "trace: {} pages processed, {} skipped, {} runs, {} refinements, {} approximations enqueued",
        trace.pages_processed,
        trace.pages_skipped,
        trace.runs,
        trace.refinements,
        trace.approx_enqueued,
    );
    if trace.degraded() {
        println!(
            "       degraded: {} quantized fallbacks, {} pages lost, {} points skipped",
            trace.quant_fallbacks, trace.pages_lost, trace.points_skipped,
        );
    }
    if trace.terminated_early > 0 || trace.candidates_skipped > 0 {
        println!(
            "       approximate: terminated early, {} candidate(s) skipped by knobs",
            trace.candidates_skipped,
        );
    }
    if let Some(pred) = eng.cost_prediction(k, qopts) {
        let ratio = trace.pages_processed as f64 / pred.pages.max(1e-12);
        println!(
            "cost model: predicted {:.1} page accesses (observed {}, ratio {ratio:.2}), \
             predicted {:.2} ms I/O (observed {:.2} ms)",
            pred.pages,
            trace.pages_processed,
            pred.io_seconds * 1e3,
            clock.io_time() * 1e3,
        );
    }
}

/// `iq explain`: the engine's cost-model prediction of a k-NN query under
/// the given knob/filter combination, *without executing it* — expected
/// filter-phase page accesses, expected exact-point refinements, and
/// simulated I/O time, phase by phase. With `--analyze` the query also
/// runs (needs `--point`) and predicted vs observed are printed side by
/// side and fed through a [`iqtree_repro::obs::CostAudit`].
fn cmd_explain(opts: &HashMap<String, String>) -> Result<(), String> {
    let page = parse_page(opts)?;
    let k = page.k;
    let qopts = parse_query_opts(opts)?;
    let analyze = opts.contains_key("analyze");
    let json = opts.contains_key("json");
    let (eng, mut clock) = open_engine(opts)?;
    let filter = opts
        .get("filter")
        .map(|expr| build_filter(expr, opts, eng.len()))
        .transpose()?;
    let Some(pred) = eng.cost_prediction(k, &qopts) else {
        return Err(format!("engine {} has no cost model", eng.name()));
    };
    let knobs = describe_query_opts(&qopts);
    let observed = if analyze {
        let point =
            parse_point(req(opts, "point").map_err(|_| {
                "--analyze runs the query and needs --point <x,y,...>".to_string()
            })?)?;
        if point.len() != eng.dim() {
            return Err(format!(
                "point has {} coordinates, index is {}-d",
                point.len(),
                eng.dim()
            ));
        }
        let (_, trace) = eng.knn_opts_traced(&mut clock, &point, k, filter.as_ref(), &qopts);
        Some(trace)
    } else {
        None
    };
    if json {
        let mut out = format!(
            "{{\"explain\":{{\"engine\":\"{}\",\"k\":{k},\"exact\":{},\
             \"predicted\":{{\"pages\":{:.6},\"filter_pages\":{:.6},\"refine_pages\":{:.6},\
             \"io_ms\":{:.6}}}",
            eng.name(),
            qopts.is_exact(),
            pred.pages,
            pred.filter_pages,
            pred.refine_pages,
            pred.io_seconds * 1e3,
        );
        if let Some(t) = &observed {
            let audit = explain_audit(&pred, t, &clock);
            out.push_str(&format!(
                ",\"observed\":{{\"pages\":{},\"refinements\":{},\"io_ms\":{:.6},\
                 \"total_ms\":{:.6}}},\"audit\":{{\"pages_rel_err\":{:.6},\
                 \"io_rel_err\":{:.6}}}",
                t.pages_processed,
                t.refinements,
                clock.io_time() * 1e3,
                clock.total_time() * 1e3,
                audit.0,
                audit.1,
            ));
        }
        out.push_str("}}");
        println!("{out}");
        return Ok(());
    }
    println!(
        "explain: {} k-NN, k={k} ({})",
        eng.name(),
        if qopts.is_exact() {
            "exact".to_string()
        } else {
            knobs
        },
    );
    if let Some(f) = &filter {
        println!(
            "  filter matches {} of {} points (selectivity {:.3}); the model \
             predicts the unfiltered search (a pushed-down filter only drops \
             candidates, it reads no extra pages)",
            f.matching(),
            f.domain(),
            f.selectivity(),
        );
    }
    println!(
        "  predicted filter phase : {:.1} page access(es) (directory + approximation sweep)",
        pred.filter_pages,
    );
    println!(
        "  predicted refine phase : {:.1} exact-point read(s)",
        pred.refine_pages,
    );
    println!(
        "  predicted I/O          : {:.2} simulated ms",
        pred.io_seconds * 1e3,
    );
    if let Some(t) = &observed {
        let (pages_err, io_err) = explain_audit(&pred, t, &clock);
        println!("analyze (ran the query):");
        println!(
            "                         {:>12}  {:>12}",
            "predicted", "observed"
        );
        println!(
            "  pages                  {:>12.1}  {:>12}",
            pred.pages, t.pages_processed,
        );
        println!(
            "  refinements            {:>12.1}  {:>12}",
            pred.refine_pages, t.refinements,
        );
        println!(
            "  I/O ms                 {:>12.2}  {:>12.2}",
            pred.io_seconds * 1e3,
            clock.io_time() * 1e3,
        );
        println!(
            "  signed relative error: pages {pages_err:+.2}, io {io_err:+.2} \
             (prediction − observation, over observation)",
        );
    }
    Ok(())
}

/// Feeds one predicted/observed pair into a [`iqtree_repro::obs::CostAudit`]
/// and returns the signed relative errors for (pages, io_seconds).
fn explain_audit(
    pred: &iqtree_repro::obs::CostPrediction,
    trace: &iqtree_repro::engine::QueryTrace,
    clock: &SimClock,
) -> (f64, f64) {
    let mut audit = iqtree_repro::obs::CostAudit::new();
    audit.record("pages", pred.pages, trace.pages_processed as f64);
    audit.record("io_seconds", pred.io_seconds, clock.io_time());
    let pages_err = audit.relative_errors("pages")[0];
    let io_err = audit.relative_errors("io_seconds")[0];
    (pages_err, io_err)
}

fn cmd_range(opts: &HashMap<String, String>) -> Result<(), String> {
    let point = parse_point(req(opts, "point")?)?;
    let radius: f64 = parse_num(req(opts, "radius")?, "--radius")?;
    let (eng, mut clock) = open_engine(opts)?;
    if point.len() != eng.dim() {
        return Err(format!(
            "point has {} coordinates, index is {}-d",
            point.len(),
            eng.dim()
        ));
    }
    let mut hits = eng.range(&mut clock, &point, radius);
    hits.sort_unstable();
    println!("{} point(s) within {radius}", hits.len());
    for chunk in hits.chunks(10) {
        let row: Vec<String> = chunk.iter().map(u32::to_string).collect();
        println!("  {}", row.join(" "));
    }
    println!(
        "-- {:.2} simulated ms ({} seeks, {} blocks)",
        clock.total_time() * 1e3,
        clock.stats().seeks,
        clock.stats().blocks_read,
    );
    Ok(())
}

/// Runs a whole k-NN workload through the engine-layer batch executor
/// ([`iqtree_repro::engine::knn_batch`]): the queries are CSV rows, fanned
/// out over `--threads` OS threads sharing one engine. Reported costs are
/// the fold of the per-query clocks and are identical for every thread
/// count.
fn cmd_batch(opts: &HashMap<String, String>) -> Result<(), String> {
    let qfile = req(opts, "queries")?;
    let page = parse_page(opts)?;
    let qopts = parse_query_opts(opts)?;
    let k = page.k;
    let threads: usize = opts
        .get("threads")
        .map_or(Ok(1), |s| parse_num(s, "--threads"))?;
    let (eng, mut clock) = open_engine(opts)?;
    let qs = load_vectors(qfile)?.points;
    if qs.dim() != eng.dim() {
        return Err(format!(
            "queries have {} coordinates, index is {}-d",
            qs.dim(),
            eng.dim()
        ));
    }
    let filter = opts
        .get("filter")
        .map(|expr| build_filter(expr, opts, eng.len()))
        .transpose()?;
    let queries: Vec<Vec<f32>> = qs.iter().map(<[f32]>::to_vec).collect();
    let mut agg = iqtree_repro::engine::QueryTrace::default();
    let results: Vec<Vec<(u32, f64)>> =
        if filter.is_some() || page.offset > 0 || page.limit.is_some() {
            // Filtered/paginated workloads run serially: costs accumulate on
            // the one clock exactly as the batch executor's fold would, and
            // the canonically ordered list is sliced as `knn_paginated_opts`
            // does (traced here so the approximate summary still reports).
            queries
                .iter()
                .map(|q| {
                    let (mut all, t) =
                        eng.knn_opts_traced(&mut clock, q, page.k, filter.as_ref(), &qopts);
                    agg.merge(&t);
                    all.sort_by(|a, b| {
                        a.1.partial_cmp(&b.1)
                            .expect("no NaN distances")
                            .then(a.0.cmp(&b.0))
                    });
                    all.into_iter()
                        .skip(page.offset)
                        .take(page.limit.unwrap_or(usize::MAX))
                        .collect()
                })
                .collect()
        } else {
            let (traced, batch_agg) = iqtree_repro::engine::knn_batch_opts_traced(
                eng.as_ref(),
                &mut clock,
                &queries,
                k,
                threads,
                filter.as_ref(),
                &qopts,
            );
            agg = batch_agg;
            traced.into_iter().map(|(res, _)| res).collect()
        };
    for (i, hits) in results.iter().enumerate() {
        let row: Vec<String> = hits
            .iter()
            .map(|(id, dist)| format!("{id}:{dist:.6}"))
            .collect();
        println!("query {i:>4}: {}", row.join(" "));
    }
    let nq = queries.len().max(1) as f64;
    if !qopts.is_exact() {
        println!(
            "-- approximate search ({}): {} of {} queries terminated early, \
             {} candidate(s) skipped by knobs",
            describe_query_opts(&qopts),
            agg.terminated_early,
            queries.len(),
            agg.candidates_skipped,
        );
    }
    println!(
        "-- {} queries against {} on {} thread(s): {:.2} simulated ms total \
         ({:.2} ms/query, {} seeks, {} blocks)",
        queries.len(),
        eng.name(),
        threads.max(1),
        clock.total_time() * 1e3,
        clock.total_time() * 1e3 / nq,
        clock.stats().seeks,
        clock.stats().blocks_read,
    );
    Ok(())
}

/// Scans every block of the three index files (per-block CRC32s, the
/// superblock, the directory payload checksum, page decodability) plus
/// the write-ahead log (frame CRCs, commit structure, torn tails) and
/// reports corruption; exits nonzero unless the index is fully intact.
fn cmd_verify(opts: &HashMap<String, String>) -> Result<(), String> {
    use iqtree_repro::tree::verify::{verify_index, verify_index_with_wal};

    let index = PathBuf::from(req(opts, "index")?);
    let meta = load_meta(&index)?;
    let open = |name: &str| -> Result<Box<dyn BlockDevice>, String> {
        Ok(Box::new(
            FileDevice::open(&index.join(name), meta.block)
                .map_err(|e| format!("open {name}: {e}"))?,
        ))
    };
    let mut clock = SimClock::default();
    let wal_path = index.join(WAL_FILE);
    let report = if wal_path.exists() {
        let image = std::fs::read(&wal_path).map_err(|e| format!("read {WAL_FILE}: {e}"))?;
        verify_index_with_wal(
            open(FILES[0])?,
            open(FILES[1])?,
            open(FILES[2])?,
            &image,
            &mut clock,
        )
    } else {
        verify_index(
            open(FILES[0])?,
            open(FILES[1])?,
            open(FILES[2])?,
            &mut clock,
        )
    };

    println!("verify {index:?} (block size {} B)", meta.block);
    for (level, file) in report.levels.iter().zip(FILES) {
        let bad = level.corrupt_blocks.len();
        println!(
            "  {:<10} {file:<10} {:>8} blocks   {:>4} checksum failure(s)",
            level.name, level.blocks, bad
        );
        for &b in &level.corrupt_blocks {
            println!("      corrupt block {b}");
        }
    }
    match &report.superblock {
        Some(sb) => println!(
            "  superblock: {} pages, {} points, dim {}, directory CRC {:#010x}",
            sb.n_pages, sb.n_points, sb.dim, sb.dir_crc
        ),
        None => println!("  superblock: unreadable"),
    }
    for e in &report.errors {
        println!("  error: {e}");
    }
    for &b in &report.undecodable_pages {
        println!("  error: quantized block {b} passes its CRC but does not decode");
    }
    if let Some(wal) = &report.wal {
        println!(
            "  wal: {} byte(s), {} frame(s), {} committed transaction(s), \
             {} uncommitted frame(s), {} torn byte(s)",
            wal.bytes, wal.frames, wal.committed_txns, wal.uncommitted_frames, wal.torn_bytes,
        );
        if let Some(r) = &wal.stop_reason {
            println!("  wal: scan stopped early: {r}");
        }
        if !wal.is_clean() {
            println!("  wal: needs recovery (`iq recover --index ...`)");
        }
    }
    if report.is_clean() {
        println!("index is clean");
        Ok(())
    } else {
        Err(format!(
            "index is corrupt: {} bad block(s), {} structural error(s)",
            report.corrupt_blocks().len(),
            report.errors.len() + report.undecodable_pages.len(),
        ))
    }
}

/// Folds the write-ahead log into the base files: orphaned exact-level
/// blocks are reclaimed, the log is truncated to empty and the index
/// generation is bumped. A crash anywhere inside the checkpoint itself is
/// recovered like any other transaction.
fn cmd_checkpoint(opts: &HashMap<String, String>) -> Result<(), String> {
    let index = PathBuf::from(req(opts, "index")?);
    if !index.join(WAL_FILE).exists() {
        return Err(format!(
            "{index:?} has no write-ahead log ({WAL_FILE}): a pre-WAL index \
             must be rebuilt with `iq build` before it can checkpoint"
        ));
    }
    let (mut tree, mut clock, meta) = open_tree(&index, None)?;
    let wasted_before = tree.wasted_exact_blocks();
    let wal_before = tree.wal_bytes();
    let generation = tree
        .checkpoint(&mut clock)
        .map_err(|e| format!("checkpoint: {e}"))?;
    println!(
        "checkpointed {index:?}: generation {generation}, folded {wal_before} WAL byte(s), \
         reclaimed {wasted_before} orphaned exact block(s) of {} B \
         ({:.2} simulated ms)",
        meta.block,
        clock.total_time() * 1e3,
    );
    Ok(())
}

/// Replays committed transactions left in the write-ahead log and drops
/// torn or uncommitted tails — exactly what every `iq` command does on
/// open, surfaced as an explicit command with a report. With `--dry-run`
/// the log is only scanned and described; nothing is mutated.
fn cmd_recover(opts: &HashMap<String, String>) -> Result<(), String> {
    let index = PathBuf::from(req(opts, "index")?);
    let wal_path = index.join(WAL_FILE);
    if !wal_path.exists() {
        return Err(format!("{index:?} has no write-ahead log ({WAL_FILE})"));
    }
    if opts.contains_key("dry-run") {
        let image = std::fs::read(&wal_path).map_err(|e| format!("read {WAL_FILE}: {e}"))?;
        let scan = iqtree_repro::wal::scan(&image);
        println!(
            "dry run: {} byte(s) of log, {} whole frame(s), {} committed transaction(s)",
            image.len(),
            scan.frames,
            scan.txns.len(),
        );
        for t in &scan.txns {
            let head = t.records.first().map_or_else(
                || "(empty)".to_string(),
                iqtree_repro::wal::WalRecord::describe,
            );
            println!("  txn {:>4}: {} record(s)  {head}", t.txn, t.records.len());
        }
        if !scan.uncommitted.is_empty() {
            println!(
                "  would discard {} uncommitted frame(s) (bytes {}..{})",
                scan.uncommitted.len(),
                scan.committed_len,
                scan.valid_len,
            );
        }
        if scan.torn_bytes > 0 {
            println!(
                "  would discard {} torn byte(s) at the tail{}",
                scan.torn_bytes,
                scan.stop_reason
                    .as_deref()
                    .map_or_else(String::new, |r| format!(" ({r})")),
            );
        }
        println!(
            "recovery would replay {} transaction(s) and truncate the log to {} byte(s)",
            scan.txns.len(),
            scan.committed_len,
        );
        return Ok(());
    }
    // A plain open performs the actual recovery; report what it did.
    let meta = load_meta(&index)?;
    let mut clock = SimClock::default();
    let open = |name: &str| -> Result<Box<dyn BlockDevice>, String> {
        Ok(Box::new(
            FileDevice::open(&index.join(name), meta.block)
                .map_err(|e| format!("open {name}: {e}"))?,
        ))
    };
    let store = FileWal::open(&wal_path).map_err(|e| format!("open {WAL_FILE}: {e}"))?;
    let (tree, report) = IqTree::open_with_wal(
        meta.dim,
        meta.metric,
        IqTreeOptions::default(),
        open(FILES[0])?,
        open(FILES[1])?,
        open(FILES[2])?,
        Box::new(store),
        &mut clock,
    )
    .map_err(|e| format!("recover: {e}"))?;
    println!(
        "recovered {index:?}: replayed {} transaction(s) ({} frame(s)), \
         discarded {} byte(s), log now {} byte(s), {} point(s) indexed",
        report.replayed_txns,
        report.replayed_frames,
        report.discarded_bytes,
        tree.wal_bytes(),
        tree.len(),
    );
    if report.log_was_clean() {
        println!("log was already clean: nothing to do");
    }
    Ok(())
}

/// Races the IQ-tree against the X-tree, VA-file (model-chosen bits) and
/// sequential scan on the given points; the last `--queries` rows are held
/// out as the query workload. Every engine is built through the
/// [`iqtree_repro::build_engine_with`] factory and queried through
/// `&dyn AccessMethod`. With `--json`, emits one machine-readable object
/// per engine instead of the text table, plus a `kernel-filter` row with
/// the measured candidate-filter throughput (points/sec in the quantized
/// domain, wall-clock).
fn cmd_bench(opts: &HashMap<String, String>) -> Result<(), String> {
    use iqtree_repro::data::Workload;
    use iqtree_repro::{EngineKind, EngineOptions};

    let input = req(opts, "input")?;
    let queries: usize = opts
        .get("queries")
        .map_or(Ok(20), |s| parse_num(s, "--queries"))?;
    let metric = parse_metric(opts)?;
    let json = opts.contains_key("json");
    // The bench always records: the JSON report embeds the registry
    // snapshot, and the periodic telemetry snapshots persisted for
    // `iq stats --window` need live counters. Recording must be on before
    // the engines (and their device stacks) are built.
    iqtree_repro::obs::global().set_enabled(true);
    let provenance = iq_bench::provenance::collect(opts.get("date").map(String::as_str));
    let slowlog = iqtree_repro::obs::SlowLog::global();
    let mut telemetry = iqtree_repro::obs::TelemetryWindow::new(32);
    let mut sim_elapsed = 0.0f64;
    let all = load_vectors(input)?.points;
    if all.len() <= queries {
        return Err(format!("need more than {queries} points for a benchmark"));
    }
    let w = Workload::split(all, queries);
    let dim = w.db.dim();
    let df = iqtree_repro::data::correlation_dimension_auto(&w.db);
    if !json {
        println!(
            "{} points, {dim}-d, {queries} held-out queries, fractal dim ~ {df:.2}\n",
            w.db.len()
        );
    }

    let mut build_clock = SimClock::default();
    let bits = iqtree_repro::vafile::auto_bits(build_clock.disk(), build_clock.cpu(), &w.db, df);
    let display = |kind: EngineKind| -> String {
        match kind {
            EngineKind::IqTree => "IQ-tree".into(),
            EngineKind::XTree => "X-tree".into(),
            EngineKind::VaFile => format!("VA-file (auto: {bits} bits)"),
            EngineKind::Scan => "sequential scan".into(),
        }
    };
    let eng_opts = EngineOptions {
        iq: IqTreeOptions {
            fractal_dim: Some(df),
            ..Default::default()
        },
        va_bits: Some(bits),
        ..Default::default()
    };

    let mut clock = SimClock::default();
    // Provenance leads the JSON report: every committed BENCH artifact
    // records what produced it before any numbers.
    let mut json_rows: Vec<String> = vec![format!(
        "{{\"engine\":\"provenance\",\"provenance\":{}}}",
        provenance.to_json()
    )];
    for kind in EngineKind::ALL {
        let eng = iqtree_repro::build_engine_with(
            kind,
            &w.db,
            metric,
            eng_opts.clone(),
            || Box::new(MemDevice::new(8192)),
            &mut build_clock,
        );
        let mut total = 0.0;
        let mut seeks = 0u64;
        let mut blocks = 0u64;
        for (qi, q) in w.queries.iter().enumerate() {
            clock.reset();
            if slowlog.should_sample() {
                clock.enable_tracing();
            }
            eng.nearest(&mut clock, q);
            total += clock.total_time();
            seeks += clock.stats().seeks;
            blocks += clock.stats().blocks_read;
            if let Some(tree) = clock.take_trace() {
                slowlog.offer(&format!("{}/nn/q{qi}", eng.name()), tree);
            }
        }
        sim_elapsed += total;
        telemetry.push(sim_elapsed, iqtree_repro::obs::global().snapshot());
        let nq = w.queries.len() as f64;
        if json {
            json_rows.push(format!(
                "{{\"engine\":\"{}\",\"dataset\":\"{}\",\"queries\":{},\"ms_per_query\":{:.6},\
                 \"seeks_per_query\":{:.3},\"blocks_per_query\":{:.3}}}",
                eng.name(),
                input.replace('\\', "\\\\").replace('"', "\\\""),
                w.queries.len(),
                total / nq * 1e3,
                seeks as f64 / nq,
                blocks as f64 / nq,
            ));
        } else {
            println!(
                "{:<28} {:>9.2} ms/query   {:>6.1} seeks/query",
                display(kind),
                total / nq * 1e3,
                seeks as f64 / nq,
            );
        }
    }
    // Filtered k-NN workload: the k nearest neighbors satisfying a
    // predicate over the synthesized `mod10` attribute (id modulo 10), k
    // counting post-filter results. Recall is measured per query against a
    // filter-then-scan brute-force oracle — every engine is exact, so
    // anything below 1.0 is a bug, and the row proves it on record.
    let filter_expr = "mod10 in 0,1,2";
    let fk = 10usize.min(w.db.len());
    let filter = {
        let mut attrs = data::AttrTable::with_columns(vec!["mod10".into()]);
        for id in 0..w.db.len() {
            attrs.push_row(&[(id % 10) as i64]);
        }
        data::Predicate::parse(filter_expr)?.compile(&attrs)?
    };
    if !json {
        println!(
            "\nfiltered k-NN (k={fk}, filter `{filter_expr}`, selectivity {:.3}):",
            filter.selectivity()
        );
    }
    for kind in EngineKind::ALL {
        let eng = iqtree_repro::build_engine_with(
            kind,
            &w.db,
            metric,
            eng_opts.clone(),
            || Box::new(MemDevice::new(8192)),
            &mut build_clock,
        );
        let page = PageSpec::top(fk);
        let mut total = 0.0;
        let mut recall_sum = 0.0;
        for (qi, q) in w.queries.iter().enumerate() {
            clock.reset();
            if slowlog.should_sample() {
                clock.enable_tracing();
            }
            let got = knn_paginated(eng.as_ref(), &mut clock, q, Some(&filter), &page);
            total += clock.total_time();
            if let Some(tree) = clock.take_trace() {
                slowlog.offer(&format!("{}/filtered/q{qi}", eng.name()), tree);
            }
            let mut oracle: Vec<(u32, f64)> = (0..w.db.len() as u32)
                .filter(|&i| filter.matches(i))
                .map(|i| (i, metric.distance(w.db.point(i as usize), q)))
                .collect();
            oracle.sort_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("no NaN distances")
                    .then(a.0.cmp(&b.0))
            });
            oracle.truncate(fk);
            let matched = oracle
                .iter()
                .zip(&got)
                .filter(|(o, g)| o.1.to_bits() == g.1.to_bits())
                .count();
            recall_sum += matched as f64 / oracle.len().max(1) as f64;
        }
        sim_elapsed += total;
        telemetry.push(sim_elapsed, iqtree_repro::obs::global().snapshot());
        let nq = w.queries.len() as f64;
        if json {
            json_rows.push(format!(
                "{{\"engine\":\"{}\",\"workload\":\"filtered_knn\",\"filter\":\"{filter_expr}\",\
                 \"k\":{fk},\"selectivity\":{:.4},\"recall\":{:.4},\"ms_per_query\":{:.6}}}",
                eng.name(),
                filter.selectivity(),
                recall_sum / nq,
                total / nq * 1e3,
            ));
        } else {
            println!(
                "{:<28} {:>9.2} ms/query   recall {:.3}",
                display(kind),
                total / nq * 1e3,
                recall_sum / nq,
            );
        }
    }
    // Candidate-filter throughput of the quantized-domain kernel (the
    // level-2 MINDIST pass), measured wall-clock on synthetic pages.
    let filt = iq_bench::kernels::page_scan_throughput(true);
    // Multi-query page-scan amortization (one decode serving Q queries),
    // on the selected SIMD dispatch tier.
    let multiq = iq_bench::kernels::page_scan_multiq(true);
    let kernel = iqtree_repro::quantize::kernel_name();
    if json {
        json_rows.push(format!(
            "{{\"engine\":\"kernel-filter\",\"filter_points_per_sec\":{:.0},\
             \"naive_points_per_sec\":{:.0},\"speedup\":{:.3}}}",
            filt.kernel_pps, filt.naive_pps, filt.speedup
        ));
        for r in &multiq {
            json_rows.push(format!(
                "{{\"engine\":\"page_scan_multiq\",\"kernel\":\"{kernel}\",\"q\":{},\
                 \"ns_per_point_query\":{:.2},\"amortization\":{:.3}}}",
                r.q, r.ns_per_point_query, r.amortization
            ));
        }
        let registry = iqtree_repro::obs::global().to_json();
        json_rows.push(format!(
            "{{\"engine\":\"metrics-registry\",\"registry\":{}}}",
            registry.trim_end()
        ));
        println!("[{}]", json_rows.join(","));
    } else {
        println!(
            "\nquantized-domain filter: {:.1} Mpts/s (naive decode: {:.1} Mpts/s, {:.2}x)",
            filt.kernel_pps / 1e6,
            filt.naive_pps / 1e6,
            filt.speedup
        );
        print!("multi-query page scan ({kernel}):");
        for r in &multiq {
            print!(
                " Q={} {:.1} ns/pt·q ({:.2}x)",
                r.q, r.ns_per_point_query, r.amortization
            );
        }
        println!();
        println!("(times are simulated: 10 ms seek, 1 ms / 8 KiB block, 100 ns CPU per dim-op)");
    }
    // Persist the observability artifacts next to the run so `iq stats
    // --slow` / `--window` can read them back later.
    std::fs::write(SLOWLOG_FILE, slowlog.to_json())
        .map_err(|e| format!("write {SLOWLOG_FILE}: {e}"))?;
    std::fs::write(TELEMETRY_FILE, telemetry.to_json())
        .map_err(|e| format!("write {TELEMETRY_FILE}: {e}"))?;
    if !json {
        println!(
            "wrote {SLOWLOG_FILE} ({} retained) and {TELEMETRY_FILE} ({} snapshot(s))",
            slowlog.entries().len(),
            telemetry.len()
        );
    }
    Ok(())
}

/// Default paths of the observability artifacts `iq bench` persists next
/// to wherever it runs; `iq stats --slow` / `--window` read them back.
const SLOWLOG_FILE: &str = "iq-slowlog.json";
const TELEMETRY_FILE: &str = "iq-telemetry.json";

/// `iq stats --slow`: the retained slow-query log — the top-K slowest
/// sampled queries with their full trace trees.
fn cmd_stats_slow(opts: &HashMap<String, String>) -> Result<(), String> {
    let path = opts
        .get("slow-log")
        .map_or(SLOWLOG_FILE, String::as_str)
        .to_string();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("read {path}: {e} (run `iq bench` first, or pass --slow-log)"))?;
    let entries = iqtree_repro::obs::SlowLog::load_json(&text)?;
    if entries.is_empty() {
        println!("{path}: no slow queries retained");
        return Ok(());
    }
    println!(
        "{path}: {} retained slow quer(ies), slowest first",
        entries.len()
    );
    print!("{}", iqtree_repro::obs::slowlog::render_entries(&entries));
    Ok(())
}

/// `iq stats --window <n>`: counter rates and histogram percentiles over
/// the last `n` persisted telemetry snapshots.
fn cmd_stats_window(opts: &HashMap<String, String>) -> Result<(), String> {
    let n: usize = parse_num(req(opts, "window")?, "--window")?;
    let path = opts
        .get("telemetry")
        .map_or(TELEMETRY_FILE, String::as_str)
        .to_string();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("read {path}: {e} (run `iq bench` first, or pass --telemetry)"))?;
    let window = iqtree_repro::obs::TelemetryWindow::load_json(&text)?;
    let Some(report) = window.report(n) else {
        return Err(format!(
            "{path} holds {} snapshot(s); a window of {n} needs at least 2",
            window.len(),
        ));
    };
    print!("{}", iqtree_repro::obs::window::render_report(&report));
    Ok(())
}

fn cmd_stats(opts: &HashMap<String, String>) -> Result<(), String> {
    if opts.contains_key("slow") {
        return cmd_stats_slow(opts);
    }
    if opts.contains_key("window") {
        return cmd_stats_window(opts);
    }
    let index = PathBuf::from(req(opts, "index")?);
    let format = opts.get("format").map(String::as_str);
    // Machine formats export the full metrics registry, so recording must
    // be on before the index (and its observed device stacks) is opened.
    let reg = iqtree_repro::obs::global();
    if format.is_some() {
        reg.set_enabled(true);
    }
    let (tree, _, meta) = open_tree(&index, parse_cache_blocks(opts)?)?;
    let (d, q, e) = tree.storage_blocks();
    let Some(format) = format else {
        println!("IQ-tree index at {index:?}");
        println!("  points      : {}", tree.len());
        println!("  dimension   : {}", meta.dim);
        println!("  metric      : {:?}", meta.metric);
        println!("  block size  : {} B", meta.block);
        println!("  pages       : {}", tree.num_pages());
        println!("  resolutions : {:?}", tree.bits_histogram());
        println!("  blocks      : dir {d}, quantized {q}, exact {e}");
        println!(
            "  compression : scanned level at {:.0}% of exact",
            tree.compression_ratio() * 100.0
        );
        println!("  generation  : {}", tree.generation());
        println!(
            "  wal         : {}",
            if tree.has_wal() {
                format!("{} byte(s) pending", tree.wal_bytes())
            } else {
                "none (read-only or pre-WAL index)".to_string()
            }
        );
        println!(
            "  wasted      : {} orphaned exact block(s) (reclaimed by `iq checkpoint`)",
            tree.wasted_exact_blocks()
        );
        println!(
            "  simd        : {} (scan kernels; set IQ_FORCE_SCALAR=1 to disable)",
            iqtree_repro::quantize::kernel_name()
        );
        return Ok(());
    };
    // Index-shape gauges, exported alongside whatever the open recorded.
    reg.gauge("index_points").set(tree.len() as f64);
    reg.gauge("index_dim").set(meta.dim as f64);
    reg.gauge("index_block_bytes").set(meta.block as f64);
    reg.gauge("index_pages").set(tree.num_pages() as f64);
    reg.gauge("index_blocks_dir").set(d as f64);
    reg.gauge("index_blocks_quant").set(q as f64);
    reg.gauge("index_blocks_exact").set(e as f64);
    reg.gauge("index_compression_ratio")
        .set(tree.compression_ratio());
    reg.gauge("index_generation").set(tree.generation() as f64);
    reg.gauge("index_wal_bytes").set(tree.wal_bytes() as f64);
    reg.gauge("wasted_exact_blocks")
        .set(tree.wasted_exact_blocks() as f64);
    // Selected scan-kernel dispatch tier: 0 = scalar, 1 = sse41, 2 = avx2.
    reg.gauge("simd_dispatch")
        .set(f64::from(iqtree_repro::quantize::simd::kernel().code()));
    match format {
        "prometheus" => print!("{}", reg.to_prometheus()),
        "json" => print!("{}", reg.to_json()),
        other => return Err(format!("unknown format `{other}` (use prometheus or json)")),
    }
    Ok(())
}
