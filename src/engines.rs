//! Engine factory: every access method of the evaluation behind one
//! trait object.
//!
//! The four engines — the IQ-tree and its three baselines — all implement
//! [`AccessMethod`], so drivers (CLI, benches, conformance tests) can hold
//! a `Box<dyn AccessMethod>` and stay engine-agnostic. This module is the
//! one place that knows how to construct each of them from a dataset.

use iq_engine::AccessMethod;
use iq_geometry::{Dataset, Metric};
use iq_scan::SeqScan;
use iq_storage::{BlockDevice, SimClock};
use iq_tree::{IqTree, IqTreeOptions};
use iq_vafile::VaFile;
use iq_xtree::{XTree, XTreeOptions};

/// Which access method to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's contribution (three-level compressed index).
    IqTree,
    /// VA-file baseline (filter-and-refine over bit approximations).
    VaFile,
    /// X-tree baseline (hierarchical directory with supernodes).
    XTree,
    /// Sequential scan baseline.
    Scan,
}

impl EngineKind {
    /// Every engine, in the order the paper's figures report them.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::IqTree,
        EngineKind::XTree,
        EngineKind::VaFile,
        EngineKind::Scan,
    ];

    /// The engine's canonical name (matches [`AccessMethod::name`]).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::IqTree => "iqtree",
            EngineKind::VaFile => "vafile",
            EngineKind::XTree => "xtree",
            EngineKind::Scan => "scan",
        }
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "iqtree" => Ok(EngineKind::IqTree),
            "vafile" => Ok(EngineKind::VaFile),
            "xtree" => Ok(EngineKind::XTree),
            "scan" => Ok(EngineKind::Scan),
            other => Err(format!(
                "unknown engine `{other}` (use iqtree, vafile, xtree or scan)"
            )),
        }
    }
}

/// Per-engine construction knobs; the defaults match the paper's setup.
#[derive(Clone, Debug, Default)]
pub struct EngineOptions {
    /// IQ-tree options (quantization, scheduled I/O, cache, ...).
    pub iq: IqTreeOptions,
    /// VA-file bits per dimension; `None` picks them with the cost model
    /// from the data's fractal dimension.
    pub va_bits: Option<u32>,
    /// X-tree options (supernode threshold, ...).
    pub xtree: XTreeOptions,
}

/// Builds engine `kind` over `ds` with default options, writing its files
/// through devices from `make_dev`.
pub fn build_engine(
    kind: EngineKind,
    ds: &Dataset,
    metric: Metric,
    make_dev: impl FnMut() -> Box<dyn BlockDevice>,
    clock: &mut SimClock,
) -> Box<dyn AccessMethod> {
    build_engine_with(kind, ds, metric, EngineOptions::default(), make_dev, clock)
}

/// Builds engine `kind` over `ds` with explicit [`EngineOptions`].
pub fn build_engine_with(
    kind: EngineKind,
    ds: &Dataset,
    metric: Metric,
    opts: EngineOptions,
    mut make_dev: impl FnMut() -> Box<dyn BlockDevice>,
    clock: &mut SimClock,
) -> Box<dyn AccessMethod> {
    match kind {
        EngineKind::IqTree => Box::new(IqTree::build(ds, metric, opts.iq, &mut make_dev, clock)),
        EngineKind::VaFile => {
            let bits = opts.va_bits.unwrap_or_else(|| {
                let df = iq_data::correlation_dimension_auto(ds);
                iq_vafile::auto_bits(clock.disk(), clock.cpu(), ds, df)
            });
            Box::new(VaFile::build(
                ds,
                metric,
                bits,
                make_dev(),
                make_dev(),
                clock,
            ))
        }
        EngineKind::XTree => Box::new(XTree::build(
            ds,
            metric,
            opts.xtree,
            make_dev(),
            make_dev(),
            clock,
        )),
        EngineKind::Scan => Box::new(SeqScan::build(ds, metric, make_dev(), clock)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_storage::MemDevice;

    #[test]
    fn factory_builds_every_engine() {
        let ds = iq_data::uniform(4, 400, 9);
        for kind in EngineKind::ALL {
            let mut clock = SimClock::default();
            let eng = build_engine(
                kind,
                &ds,
                Metric::Euclidean,
                || Box::new(MemDevice::new(4096)),
                &mut clock,
            );
            assert_eq!(eng.name(), kind.name());
            assert_eq!(eng.len(), 400);
            assert_eq!(eng.dim(), 4);
            clock.reset();
            let (id, d) = eng.nearest(&mut clock, ds.point(7)).expect("non-empty");
            assert_eq!(id, 7, "{}", kind.name());
            assert!(d.abs() < 1e-9);
        }
    }

    #[test]
    fn engine_kind_round_trips_through_parse() {
        for kind in EngineKind::ALL {
            assert_eq!(kind.name().parse::<EngineKind>(), Ok(kind));
        }
        assert!("btree".parse::<EngineKind>().is_err());
    }
}
