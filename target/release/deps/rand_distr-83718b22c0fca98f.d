/root/repo/target/release/deps/rand_distr-83718b22c0fca98f.d: compat/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-83718b22c0fca98f.rlib: compat/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-83718b22c0fca98f.rmeta: compat/rand_distr/src/lib.rs

compat/rand_distr/src/lib.rs:
