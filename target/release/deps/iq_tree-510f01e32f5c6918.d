/root/repo/target/release/deps/iq_tree-510f01e32f5c6918.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

/root/repo/target/release/deps/libiq_tree-510f01e32f5c6918.rlib: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

/root/repo/target/release/deps/libiq_tree-510f01e32f5c6918.rmeta: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/maintain.rs:
crates/core/src/persist.rs:
crates/core/src/search.rs:
crates/core/src/update.rs:
