/root/repo/target/release/deps/proptest-90566044499e94bb.d: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs Cargo.toml

/root/repo/target/release/deps/libproptest-90566044499e94bb.rmeta: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs Cargo.toml

compat/proptest/src/lib.rs:
compat/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
