/root/repo/target/release/deps/fig12-c8d64adb4569d0d3.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-c8d64adb4569d0d3: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
