/root/repo/target/release/deps/fig9-1ed42a475086b540.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-1ed42a475086b540: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
