/root/repo/target/release/deps/criterion-149efab26fc16ce5.d: compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-149efab26fc16ce5.rlib: compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-149efab26fc16ce5.rmeta: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
