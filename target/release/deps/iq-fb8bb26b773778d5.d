/root/repo/target/release/deps/iq-fb8bb26b773778d5.d: src/bin/iq.rs

/root/repo/target/release/deps/iq-fb8bb26b773778d5: src/bin/iq.rs

src/bin/iq.rs:
