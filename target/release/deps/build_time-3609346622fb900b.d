/root/repo/target/release/deps/build_time-3609346622fb900b.d: crates/bench/src/bin/build_time.rs

/root/repo/target/release/deps/build_time-3609346622fb900b: crates/bench/src/bin/build_time.rs

crates/bench/src/bin/build_time.rs:
