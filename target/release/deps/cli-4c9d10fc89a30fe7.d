/root/repo/target/release/deps/cli-4c9d10fc89a30fe7.d: tests/cli.rs

/root/repo/target/release/deps/cli-4c9d10fc89a30fe7: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_iq=/root/repo/target/release/iq
