/root/repo/target/release/deps/fig7-26b3cc7ccfdbd4ac.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-26b3cc7ccfdbd4ac: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
