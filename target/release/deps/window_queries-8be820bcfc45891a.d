/root/repo/target/release/deps/window_queries-8be820bcfc45891a.d: tests/window_queries.rs

/root/repo/target/release/deps/window_queries-8be820bcfc45891a: tests/window_queries.rs

tests/window_queries.rs:
