/root/repo/target/release/deps/iqtree_repro-e61225c9e3d0cf23.d: src/lib.rs

/root/repo/target/release/deps/iqtree_repro-e61225c9e3d0cf23: src/lib.rs

src/lib.rs:
