/root/repo/target/release/deps/extensions-ac8cf3e4819ed518.d: crates/bench/src/bin/extensions.rs

/root/repo/target/release/deps/extensions-ac8cf3e4819ed518: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
