/root/repo/target/release/deps/file_backed-75a4c379395997c9.d: tests/file_backed.rs

/root/repo/target/release/deps/file_backed-75a4c379395997c9: tests/file_backed.rs

tests/file_backed.rs:
