/root/repo/target/release/deps/fig12-2671274f1602a9e0.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-2671274f1602a9e0: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
