/root/repo/target/release/deps/proptest-f3a8403ce3b15988.d: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs Cargo.toml

/root/repo/target/release/deps/libproptest-f3a8403ce3b15988.rmeta: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs Cargo.toml

compat/proptest/src/lib.rs:
compat/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
