/root/repo/target/release/deps/iq_cost-8161981430631429.d: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs Cargo.toml

/root/repo/target/release/deps/libiq_cost-8161981430631429.rmeta: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs Cargo.toml

crates/costmodel/src/lib.rs:
crates/costmodel/src/access_prob.rs:
crates/costmodel/src/directory.rs:
crates/costmodel/src/refine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
