/root/repo/target/release/deps/rand-8196e4bc6d3abbbf.d: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

/root/repo/target/release/deps/librand-8196e4bc6d3abbbf.rlib: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

/root/repo/target/release/deps/librand-8196e4bc6d3abbbf.rmeta: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

compat/rand/src/lib.rs:
compat/rand/src/distributions.rs:
compat/rand/src/rngs.rs:
compat/rand/src/seq.rs:
