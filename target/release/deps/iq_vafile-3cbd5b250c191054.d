/root/repo/target/release/deps/iq_vafile-3cbd5b250c191054.d: crates/vafile/src/lib.rs

/root/repo/target/release/deps/libiq_vafile-3cbd5b250c191054.rlib: crates/vafile/src/lib.rs

/root/repo/target/release/deps/libiq_vafile-3cbd5b250c191054.rmeta: crates/vafile/src/lib.rs

crates/vafile/src/lib.rs:
