/root/repo/target/release/deps/fig9-f8758d0921b349c5.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/release/deps/libfig9-f8758d0921b349c5.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
