/root/repo/target/release/deps/rand_distr-2bd0f624d21f67db.d: compat/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-2bd0f624d21f67db.rlib: compat/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-2bd0f624d21f67db.rmeta: compat/rand_distr/src/lib.rs

compat/rand_distr/src/lib.rs:
