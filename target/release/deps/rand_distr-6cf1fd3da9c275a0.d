/root/repo/target/release/deps/rand_distr-6cf1fd3da9c275a0.d: compat/rand_distr/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_distr-6cf1fd3da9c275a0.rmeta: compat/rand_distr/src/lib.rs Cargo.toml

compat/rand_distr/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
