/root/repo/target/release/deps/properties-0f0b8d939f4d18bd.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-0f0b8d939f4d18bd.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
