/root/repo/target/release/deps/iqtree_repro-30d19911bfcdb2aa.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libiqtree_repro-30d19911bfcdb2aa.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
