/root/repo/target/release/deps/fig9-3a00d0b29e109bdb.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-3a00d0b29e109bdb: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
