/root/repo/target/release/deps/iq-3153d52cd6ce95a9.d: src/bin/iq.rs Cargo.toml

/root/repo/target/release/deps/libiq-3153d52cd6ce95a9.rmeta: src/bin/iq.rs Cargo.toml

src/bin/iq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
