/root/repo/target/release/deps/dynamic_maintenance-e3da19cb31e873e0.d: tests/dynamic_maintenance.rs

/root/repo/target/release/deps/dynamic_maintenance-e3da19cb31e873e0: tests/dynamic_maintenance.rs

tests/dynamic_maintenance.rs:
