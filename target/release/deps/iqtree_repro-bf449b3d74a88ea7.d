/root/repo/target/release/deps/iqtree_repro-bf449b3d74a88ea7.d: src/lib.rs

/root/repo/target/release/deps/libiqtree_repro-bf449b3d74a88ea7.rlib: src/lib.rs

/root/repo/target/release/deps/libiqtree_repro-bf449b3d74a88ea7.rmeta: src/lib.rs

src/lib.rs:
