/root/repo/target/release/deps/iq_cost-048d09966fd3cf1b.d: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs

/root/repo/target/release/deps/libiq_cost-048d09966fd3cf1b.rlib: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs

/root/repo/target/release/deps/libiq_cost-048d09966fd3cf1b.rmeta: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs

crates/costmodel/src/lib.rs:
crates/costmodel/src/access_prob.rs:
crates/costmodel/src/directory.rs:
crates/costmodel/src/refine.rs:
