/root/repo/target/release/deps/io_profile-afa2220b1695fc6f.d: crates/bench/src/bin/io_profile.rs Cargo.toml

/root/repo/target/release/deps/libio_profile-afa2220b1695fc6f.rmeta: crates/bench/src/bin/io_profile.rs Cargo.toml

crates/bench/src/bin/io_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
