/root/repo/target/release/deps/iq_storage-e4e0695df850318b.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs Cargo.toml

/root/repo/target/release/deps/libiq_storage-e4e0695df850318b.rmeta: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/fetch.rs:
crates/storage/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
