/root/repo/target/release/deps/iq_vafile-66710aec0787427a.d: crates/vafile/src/lib.rs

/root/repo/target/release/deps/iq_vafile-66710aec0787427a: crates/vafile/src/lib.rs

crates/vafile/src/lib.rs:
