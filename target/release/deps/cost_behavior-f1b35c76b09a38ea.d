/root/repo/target/release/deps/cost_behavior-f1b35c76b09a38ea.d: tests/cost_behavior.rs

/root/repo/target/release/deps/cost_behavior-f1b35c76b09a38ea: tests/cost_behavior.rs

tests/cost_behavior.rs:
