/root/repo/target/release/deps/iq_xtree-17aca269fd83a450.d: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs

/root/repo/target/release/deps/iq_xtree-17aca269fd83a450: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs

crates/xtree/src/lib.rs:
crates/xtree/src/node.rs:
crates/xtree/src/split.rs:
