/root/repo/target/release/deps/iq-be8353717bef9160.d: src/bin/iq.rs

/root/repo/target/release/deps/iq-be8353717bef9160: src/bin/iq.rs

src/bin/iq.rs:
