/root/repo/target/release/deps/iq_quantize-d994995157357945.d: crates/quantize/src/lib.rs crates/quantize/src/bits.rs crates/quantize/src/grid.rs crates/quantize/src/page.rs

/root/repo/target/release/deps/libiq_quantize-d994995157357945.rlib: crates/quantize/src/lib.rs crates/quantize/src/bits.rs crates/quantize/src/grid.rs crates/quantize/src/page.rs

/root/repo/target/release/deps/libiq_quantize-d994995157357945.rmeta: crates/quantize/src/lib.rs crates/quantize/src/bits.rs crates/quantize/src/grid.rs crates/quantize/src/page.rs

crates/quantize/src/lib.rs:
crates/quantize/src/bits.rs:
crates/quantize/src/grid.rs:
crates/quantize/src/page.rs:
