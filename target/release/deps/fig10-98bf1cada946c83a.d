/root/repo/target/release/deps/fig10-98bf1cada946c83a.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-98bf1cada946c83a: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
