/root/repo/target/release/deps/va_sweep-e7458f8498f0f90d.d: crates/bench/src/bin/va_sweep.rs

/root/repo/target/release/deps/va_sweep-e7458f8498f0f90d: crates/bench/src/bin/va_sweep.rs

crates/bench/src/bin/va_sweep.rs:
