/root/repo/target/release/deps/fig9-8e4bd7648bd89d69.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/release/deps/libfig9-8e4bd7648bd89d69.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
