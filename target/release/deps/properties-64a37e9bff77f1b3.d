/root/repo/target/release/deps/properties-64a37e9bff77f1b3.d: crates/core/tests/properties.rs

/root/repo/target/release/deps/properties-64a37e9bff77f1b3: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
