/root/repo/target/release/deps/iq_tree-3d2c282400dec237.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

/root/repo/target/release/deps/iq_tree-3d2c282400dec237: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/maintain.rs:
crates/core/src/persist.rs:
crates/core/src/search.rs:
crates/core/src/update.rs:
