/root/repo/target/release/deps/properties-b6ab6e061bbf10d3.d: crates/geometry/tests/properties.rs

/root/repo/target/release/deps/properties-b6ab6e061bbf10d3: crates/geometry/tests/properties.rs

crates/geometry/tests/properties.rs:
