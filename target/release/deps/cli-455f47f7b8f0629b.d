/root/repo/target/release/deps/cli-455f47f7b8f0629b.d: tests/cli.rs Cargo.toml

/root/repo/target/release/deps/libcli-455f47f7b8f0629b.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_iq=placeholder:iq
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
