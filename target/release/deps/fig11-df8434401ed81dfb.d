/root/repo/target/release/deps/fig11-df8434401ed81dfb.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-df8434401ed81dfb: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
