/root/repo/target/release/deps/iq_cost-a6f005027e9947fb.d: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs

/root/repo/target/release/deps/iq_cost-a6f005027e9947fb: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs

crates/costmodel/src/lib.rs:
crates/costmodel/src/access_prob.rs:
crates/costmodel/src/directory.rs:
crates/costmodel/src/refine.rs:
