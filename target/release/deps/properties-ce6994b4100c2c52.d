/root/repo/target/release/deps/properties-ce6994b4100c2c52.d: crates/xtree/tests/properties.rs

/root/repo/target/release/deps/properties-ce6994b4100c2c52: crates/xtree/tests/properties.rs

crates/xtree/tests/properties.rs:
