/root/repo/target/release/deps/iq_quantize-5670ede2b158ec07.d: crates/quantize/src/lib.rs crates/quantize/src/bits.rs crates/quantize/src/grid.rs crates/quantize/src/page.rs

/root/repo/target/release/deps/iq_quantize-5670ede2b158ec07: crates/quantize/src/lib.rs crates/quantize/src/bits.rs crates/quantize/src/grid.rs crates/quantize/src/page.rs

crates/quantize/src/lib.rs:
crates/quantize/src/bits.rs:
crates/quantize/src/grid.rs:
crates/quantize/src/page.rs:
