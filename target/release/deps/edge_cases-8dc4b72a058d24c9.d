/root/repo/target/release/deps/edge_cases-8dc4b72a058d24c9.d: crates/quantize/tests/edge_cases.rs Cargo.toml

/root/repo/target/release/deps/libedge_cases-8dc4b72a058d24c9.rmeta: crates/quantize/tests/edge_cases.rs Cargo.toml

crates/quantize/tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
