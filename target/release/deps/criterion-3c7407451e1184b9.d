/root/repo/target/release/deps/criterion-3c7407451e1184b9.d: compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-3c7407451e1184b9.rmeta: compat/criterion/src/lib.rs Cargo.toml

compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
