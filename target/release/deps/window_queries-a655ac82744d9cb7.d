/root/repo/target/release/deps/window_queries-a655ac82744d9cb7.d: tests/window_queries.rs

/root/repo/target/release/deps/window_queries-a655ac82744d9cb7: tests/window_queries.rs

tests/window_queries.rs:
