/root/repo/target/release/deps/iq_xtree-d3820a546ce52ed6.d: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs Cargo.toml

/root/repo/target/release/deps/libiq_xtree-d3820a546ce52ed6.rmeta: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs Cargo.toml

crates/xtree/src/lib.rs:
crates/xtree/src/node.rs:
crates/xtree/src/split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
