/root/repo/target/release/deps/properties-e6111719eb22299f.d: crates/core/tests/properties.rs

/root/repo/target/release/deps/properties-e6111719eb22299f: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
