/root/repo/target/release/deps/iqtree_repro-3a14757513d91c6a.d: src/lib.rs

/root/repo/target/release/deps/libiqtree_repro-3a14757513d91c6a.rlib: src/lib.rs

/root/repo/target/release/deps/libiqtree_repro-3a14757513d91c6a.rmeta: src/lib.rs

src/lib.rs:
