/root/repo/target/release/deps/fig11-3faeb30eb0baa138.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-3faeb30eb0baa138: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
