/root/repo/target/release/deps/fig8-7ddb004c0be28c83.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/release/deps/libfig8-7ddb004c0be28c83.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
