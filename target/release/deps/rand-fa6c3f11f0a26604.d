/root/repo/target/release/deps/rand-fa6c3f11f0a26604.d: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs Cargo.toml

/root/repo/target/release/deps/librand-fa6c3f11f0a26604.rmeta: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs Cargo.toml

compat/rand/src/lib.rs:
compat/rand/src/distributions.rs:
compat/rand/src/rngs.rs:
compat/rand/src/seq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
