/root/repo/target/release/deps/fig1-2fa5e406468aad0c.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/release/deps/libfig1-2fa5e406468aad0c.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
