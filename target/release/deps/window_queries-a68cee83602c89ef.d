/root/repo/target/release/deps/window_queries-a68cee83602c89ef.d: tests/window_queries.rs Cargo.toml

/root/repo/target/release/deps/libwindow_queries-a68cee83602c89ef.rmeta: tests/window_queries.rs Cargo.toml

tests/window_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
