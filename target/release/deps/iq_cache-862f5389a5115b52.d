/root/repo/target/release/deps/iq_cache-862f5389a5115b52.d: crates/cache/src/lib.rs

/root/repo/target/release/deps/libiq_cache-862f5389a5115b52.rlib: crates/cache/src/lib.rs

/root/repo/target/release/deps/libiq_cache-862f5389a5115b52.rmeta: crates/cache/src/lib.rs

crates/cache/src/lib.rs:
