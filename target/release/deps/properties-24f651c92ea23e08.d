/root/repo/target/release/deps/properties-24f651c92ea23e08.d: crates/vafile/tests/properties.rs

/root/repo/target/release/deps/properties-24f651c92ea23e08: crates/vafile/tests/properties.rs

crates/vafile/tests/properties.rs:
