/root/repo/target/release/deps/io_profile-f3e0c5d36a118967.d: crates/bench/src/bin/io_profile.rs

/root/repo/target/release/deps/io_profile-f3e0c5d36a118967: crates/bench/src/bin/io_profile.rs

crates/bench/src/bin/io_profile.rs:
