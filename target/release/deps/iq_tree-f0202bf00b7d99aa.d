/root/repo/target/release/deps/iq_tree-f0202bf00b7d99aa.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

/root/repo/target/release/deps/libiq_tree-f0202bf00b7d99aa.rlib: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

/root/repo/target/release/deps/libiq_tree-f0202bf00b7d99aa.rmeta: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/maintain.rs:
crates/core/src/persist.rs:
crates/core/src/search.rs:
crates/core/src/update.rs:
