/root/repo/target/release/deps/iq_vafile-d448ed5474abb623.d: crates/vafile/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libiq_vafile-d448ed5474abb623.rmeta: crates/vafile/src/lib.rs Cargo.toml

crates/vafile/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
