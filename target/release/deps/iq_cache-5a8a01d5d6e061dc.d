/root/repo/target/release/deps/iq_cache-5a8a01d5d6e061dc.d: crates/cache/src/lib.rs

/root/repo/target/release/deps/iq_cache-5a8a01d5d6e061dc: crates/cache/src/lib.rs

crates/cache/src/lib.rs:
