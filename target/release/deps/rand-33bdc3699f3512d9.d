/root/repo/target/release/deps/rand-33bdc3699f3512d9.d: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

/root/repo/target/release/deps/rand-33bdc3699f3512d9: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

compat/rand/src/lib.rs:
compat/rand/src/distributions.rs:
compat/rand/src/rngs.rs:
compat/rand/src/seq.rs:
