/root/repo/target/release/deps/build_time-c12823f1bf9b82e8.d: crates/bench/src/bin/build_time.rs

/root/repo/target/release/deps/build_time-c12823f1bf9b82e8: crates/bench/src/bin/build_time.rs

crates/bench/src/bin/build_time.rs:
