/root/repo/target/release/deps/cross_method_agreement-e6f6ee90d0412ed7.d: tests/cross_method_agreement.rs

/root/repo/target/release/deps/cross_method_agreement-e6f6ee90d0412ed7: tests/cross_method_agreement.rs

tests/cross_method_agreement.rs:
