/root/repo/target/release/deps/fig1-906f1cf11edb122c.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/release/deps/libfig1-906f1cf11edb122c.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
