/root/repo/target/release/deps/build_time-e678bb6959661b29.d: crates/bench/src/bin/build_time.rs Cargo.toml

/root/repo/target/release/deps/libbuild_time-e678bb6959661b29.rmeta: crates/bench/src/bin/build_time.rs Cargo.toml

crates/bench/src/bin/build_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
