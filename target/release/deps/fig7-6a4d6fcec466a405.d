/root/repo/target/release/deps/fig7-6a4d6fcec466a405.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/release/deps/libfig7-6a4d6fcec466a405.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
