/root/repo/target/release/deps/iq_scan-c98691420d997dec.d: crates/scan/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libiq_scan-c98691420d997dec.rmeta: crates/scan/src/lib.rs Cargo.toml

crates/scan/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
