/root/repo/target/release/deps/fig11-6d30464c50af4f46.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/release/deps/libfig11-6d30464c50af4f46.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
