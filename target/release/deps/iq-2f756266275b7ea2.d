/root/repo/target/release/deps/iq-2f756266275b7ea2.d: src/bin/iq.rs

/root/repo/target/release/deps/iq-2f756266275b7ea2: src/bin/iq.rs

src/bin/iq.rs:
