/root/repo/target/release/deps/extensions-6d9f24bc4539303a.d: crates/bench/src/bin/extensions.rs Cargo.toml

/root/repo/target/release/deps/libextensions-6d9f24bc4539303a.rmeta: crates/bench/src/bin/extensions.rs Cargo.toml

crates/bench/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
