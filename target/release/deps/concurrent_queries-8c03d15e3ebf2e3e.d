/root/repo/target/release/deps/concurrent_queries-8c03d15e3ebf2e3e.d: tests/concurrent_queries.rs Cargo.toml

/root/repo/target/release/deps/libconcurrent_queries-8c03d15e3ebf2e3e.rmeta: tests/concurrent_queries.rs Cargo.toml

tests/concurrent_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
