/root/repo/target/release/deps/iq-7bc6993ca7e1d369.d: src/bin/iq.rs Cargo.toml

/root/repo/target/release/deps/libiq-7bc6993ca7e1d369.rmeta: src/bin/iq.rs Cargo.toml

src/bin/iq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
