/root/repo/target/release/deps/all_figures-5a72cf9a5985a8a7.d: crates/bench/src/bin/all_figures.rs Cargo.toml

/root/repo/target/release/deps/liball_figures-5a72cf9a5985a8a7.rmeta: crates/bench/src/bin/all_figures.rs Cargo.toml

crates/bench/src/bin/all_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
