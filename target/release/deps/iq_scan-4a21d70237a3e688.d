/root/repo/target/release/deps/iq_scan-4a21d70237a3e688.d: crates/scan/src/lib.rs

/root/repo/target/release/deps/iq_scan-4a21d70237a3e688: crates/scan/src/lib.rs

crates/scan/src/lib.rs:
