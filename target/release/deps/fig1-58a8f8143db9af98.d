/root/repo/target/release/deps/fig1-58a8f8143db9af98.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-58a8f8143db9af98: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
