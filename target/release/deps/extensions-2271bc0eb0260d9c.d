/root/repo/target/release/deps/extensions-2271bc0eb0260d9c.d: crates/bench/src/bin/extensions.rs

/root/repo/target/release/deps/extensions-2271bc0eb0260d9c: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
