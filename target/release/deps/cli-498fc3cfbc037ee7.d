/root/repo/target/release/deps/cli-498fc3cfbc037ee7.d: tests/cli.rs

/root/repo/target/release/deps/cli-498fc3cfbc037ee7: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_iq=/root/repo/target/release/iq
