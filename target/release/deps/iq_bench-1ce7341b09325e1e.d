/root/repo/target/release/deps/iq_bench-1ce7341b09325e1e.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs

/root/repo/target/release/deps/libiq_bench-1ce7341b09325e1e.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs

/root/repo/target/release/deps/libiq_bench-1ce7341b09325e1e.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
