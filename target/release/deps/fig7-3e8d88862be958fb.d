/root/repo/target/release/deps/fig7-3e8d88862be958fb.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-3e8d88862be958fb: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
