/root/repo/target/release/deps/all_figures-f041eeff2d7babc9.d: crates/bench/src/bin/all_figures.rs Cargo.toml

/root/repo/target/release/deps/liball_figures-f041eeff2d7babc9.rmeta: crates/bench/src/bin/all_figures.rs Cargo.toml

crates/bench/src/bin/all_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
