/root/repo/target/release/deps/iqtree_repro-3a1683817da09e01.d: src/lib.rs

/root/repo/target/release/deps/libiqtree_repro-3a1683817da09e01.rlib: src/lib.rs

/root/repo/target/release/deps/libiqtree_repro-3a1683817da09e01.rmeta: src/lib.rs

src/lib.rs:
