/root/repo/target/release/deps/iq_scan-b4ebdbf548e3ea7e.d: crates/scan/src/lib.rs

/root/repo/target/release/deps/libiq_scan-b4ebdbf548e3ea7e.rlib: crates/scan/src/lib.rs

/root/repo/target/release/deps/libiq_scan-b4ebdbf548e3ea7e.rmeta: crates/scan/src/lib.rs

crates/scan/src/lib.rs:
