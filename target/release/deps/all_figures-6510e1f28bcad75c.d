/root/repo/target/release/deps/all_figures-6510e1f28bcad75c.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-6510e1f28bcad75c: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
