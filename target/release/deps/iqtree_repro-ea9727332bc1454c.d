/root/repo/target/release/deps/iqtree_repro-ea9727332bc1454c.d: src/lib.rs

/root/repo/target/release/deps/iqtree_repro-ea9727332bc1454c: src/lib.rs

src/lib.rs:
