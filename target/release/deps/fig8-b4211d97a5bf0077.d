/root/repo/target/release/deps/fig8-b4211d97a5bf0077.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/release/deps/libfig8-b4211d97a5bf0077.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
