/root/repo/target/release/deps/va_sweep-60852f0d9d1d0525.d: crates/bench/src/bin/va_sweep.rs Cargo.toml

/root/repo/target/release/deps/libva_sweep-60852f0d9d1d0525.rmeta: crates/bench/src/bin/va_sweep.rs Cargo.toml

crates/bench/src/bin/va_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
