/root/repo/target/release/deps/va_sweep-c29deab7fca7bb43.d: crates/bench/src/bin/va_sweep.rs Cargo.toml

/root/repo/target/release/deps/libva_sweep-c29deab7fca7bb43.rmeta: crates/bench/src/bin/va_sweep.rs Cargo.toml

crates/bench/src/bin/va_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
