/root/repo/target/release/deps/dynamic_maintenance-7e51a47f6c62a2ed.d: tests/dynamic_maintenance.rs Cargo.toml

/root/repo/target/release/deps/libdynamic_maintenance-7e51a47f6c62a2ed.rmeta: tests/dynamic_maintenance.rs Cargo.toml

tests/dynamic_maintenance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
