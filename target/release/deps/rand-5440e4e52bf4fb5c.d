/root/repo/target/release/deps/rand-5440e4e52bf4fb5c.d: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs Cargo.toml

/root/repo/target/release/deps/librand-5440e4e52bf4fb5c.rmeta: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs Cargo.toml

compat/rand/src/lib.rs:
compat/rand/src/distributions.rs:
compat/rand/src/rngs.rs:
compat/rand/src/seq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
