/root/repo/target/release/deps/fig10-a2545f403e497899.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-a2545f403e497899: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
