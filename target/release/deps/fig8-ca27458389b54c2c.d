/root/repo/target/release/deps/fig8-ca27458389b54c2c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-ca27458389b54c2c: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
