/root/repo/target/release/deps/iq_vafile-55eff1f9ddea648c.d: crates/vafile/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libiq_vafile-55eff1f9ddea648c.rmeta: crates/vafile/src/lib.rs Cargo.toml

crates/vafile/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
