/root/repo/target/release/deps/properties-5f2931cb2fa3def1.d: crates/cache/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-5f2931cb2fa3def1.rmeta: crates/cache/tests/properties.rs Cargo.toml

crates/cache/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
