/root/repo/target/release/deps/iq_geometry-e2fae84f883f88dc.d: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs

/root/repo/target/release/deps/iq_geometry-e2fae84f883f88dc: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs

crates/geometry/src/lib.rs:
crates/geometry/src/mbr.rs:
crates/geometry/src/metric.rs:
crates/geometry/src/partition.rs:
crates/geometry/src/point.rs:
crates/geometry/src/volume.rs:
