/root/repo/target/release/deps/iq_cache-840511f9b456c476.d: crates/cache/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libiq_cache-840511f9b456c476.rmeta: crates/cache/src/lib.rs Cargo.toml

crates/cache/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
