/root/repo/target/release/deps/figures-13897e6d94d6a9b1.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/release/deps/libfigures-13897e6d94d6a9b1.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
