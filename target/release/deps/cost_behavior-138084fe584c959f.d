/root/repo/target/release/deps/cost_behavior-138084fe584c959f.d: tests/cost_behavior.rs

/root/repo/target/release/deps/cost_behavior-138084fe584c959f: tests/cost_behavior.rs

tests/cost_behavior.rs:
