/root/repo/target/release/deps/properties-70743d1d98786573.d: crates/xtree/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-70743d1d98786573.rmeta: crates/xtree/tests/properties.rs Cargo.toml

crates/xtree/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
