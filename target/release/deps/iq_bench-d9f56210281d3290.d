/root/repo/target/release/deps/iq_bench-d9f56210281d3290.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs

/root/repo/target/release/deps/iq_bench-d9f56210281d3290: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
