/root/repo/target/release/deps/iq_cache-23ac4d2c98fa65c6.d: crates/cache/src/lib.rs

/root/repo/target/release/deps/iq_cache-23ac4d2c98fa65c6: crates/cache/src/lib.rs

crates/cache/src/lib.rs:
