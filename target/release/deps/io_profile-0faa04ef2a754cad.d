/root/repo/target/release/deps/io_profile-0faa04ef2a754cad.d: crates/bench/src/bin/io_profile.rs

/root/repo/target/release/deps/io_profile-0faa04ef2a754cad: crates/bench/src/bin/io_profile.rs

crates/bench/src/bin/io_profile.rs:
