/root/repo/target/release/deps/properties-a5754ab7f3e7de9e.d: crates/geometry/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-a5754ab7f3e7de9e.rmeta: crates/geometry/tests/properties.rs Cargo.toml

crates/geometry/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
