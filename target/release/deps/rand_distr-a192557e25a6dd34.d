/root/repo/target/release/deps/rand_distr-a192557e25a6dd34.d: compat/rand_distr/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_distr-a192557e25a6dd34.rmeta: compat/rand_distr/src/lib.rs Cargo.toml

compat/rand_distr/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
