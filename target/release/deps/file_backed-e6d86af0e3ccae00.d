/root/repo/target/release/deps/file_backed-e6d86af0e3ccae00.d: tests/file_backed.rs

/root/repo/target/release/deps/file_backed-e6d86af0e3ccae00: tests/file_backed.rs

tests/file_backed.rs:
