/root/repo/target/release/deps/proptest-220055b6b2b09818.d: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-220055b6b2b09818.rlib: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-220055b6b2b09818.rmeta: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

compat/proptest/src/lib.rs:
compat/proptest/src/strategy.rs:
