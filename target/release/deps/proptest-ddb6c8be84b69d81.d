/root/repo/target/release/deps/proptest-ddb6c8be84b69d81.d: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

/root/repo/target/release/deps/proptest-ddb6c8be84b69d81: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

compat/proptest/src/lib.rs:
compat/proptest/src/strategy.rs:
