/root/repo/target/release/deps/iq_xtree-1a9558cdf86296cc.d: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs

/root/repo/target/release/deps/libiq_xtree-1a9558cdf86296cc.rlib: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs

/root/repo/target/release/deps/libiq_xtree-1a9558cdf86296cc.rmeta: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs

crates/xtree/src/lib.rs:
crates/xtree/src/node.rs:
crates/xtree/src/split.rs:
