/root/repo/target/release/deps/iq_storage-93fdb30d13383126.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs

/root/repo/target/release/deps/libiq_storage-93fdb30d13383126.rlib: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs

/root/repo/target/release/deps/libiq_storage-93fdb30d13383126.rmeta: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/fetch.rs:
crates/storage/src/model.rs:
