/root/repo/target/release/deps/dynamic_maintenance-7840a2f2c6d33c18.d: tests/dynamic_maintenance.rs

/root/repo/target/release/deps/dynamic_maintenance-7840a2f2c6d33c18: tests/dynamic_maintenance.rs

tests/dynamic_maintenance.rs:
