/root/repo/target/release/deps/fig12-cff7b93774b49410.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/release/deps/libfig12-cff7b93774b49410.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
