/root/repo/target/release/deps/properties-3b9aa2d70a0e0669.d: crates/cache/tests/properties.rs

/root/repo/target/release/deps/properties-3b9aa2d70a0e0669: crates/cache/tests/properties.rs

crates/cache/tests/properties.rs:
