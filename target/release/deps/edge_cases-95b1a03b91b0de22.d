/root/repo/target/release/deps/edge_cases-95b1a03b91b0de22.d: crates/quantize/tests/edge_cases.rs

/root/repo/target/release/deps/edge_cases-95b1a03b91b0de22: crates/quantize/tests/edge_cases.rs

crates/quantize/tests/edge_cases.rs:
