/root/repo/target/release/deps/iq_scan-d0bf41ec3bb6e169.d: crates/scan/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libiq_scan-d0bf41ec3bb6e169.rmeta: crates/scan/src/lib.rs Cargo.toml

crates/scan/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
