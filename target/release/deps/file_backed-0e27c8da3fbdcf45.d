/root/repo/target/release/deps/file_backed-0e27c8da3fbdcf45.d: tests/file_backed.rs Cargo.toml

/root/repo/target/release/deps/libfile_backed-0e27c8da3fbdcf45.rmeta: tests/file_backed.rs Cargo.toml

tests/file_backed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
