/root/repo/target/release/deps/extensions-6a74c5afe1468454.d: crates/bench/src/bin/extensions.rs Cargo.toml

/root/repo/target/release/deps/libextensions-6a74c5afe1468454.rmeta: crates/bench/src/bin/extensions.rs Cargo.toml

crates/bench/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
