/root/repo/target/release/deps/all_figures-658a6013f50f45c4.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-658a6013f50f45c4: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
