/root/repo/target/release/deps/iq_tree-9beeacca71c1d827.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs Cargo.toml

/root/repo/target/release/deps/libiq_tree-9beeacca71c1d827.rmeta: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/maintain.rs:
crates/core/src/persist.rs:
crates/core/src/search.rs:
crates/core/src/update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
