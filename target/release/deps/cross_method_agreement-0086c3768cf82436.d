/root/repo/target/release/deps/cross_method_agreement-0086c3768cf82436.d: tests/cross_method_agreement.rs

/root/repo/target/release/deps/cross_method_agreement-0086c3768cf82436: tests/cross_method_agreement.rs

tests/cross_method_agreement.rs:
