/root/repo/target/release/deps/iq_bench-835a267880d637eb.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs Cargo.toml

/root/repo/target/release/deps/libiq_bench-835a267880d637eb.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
