/root/repo/target/release/deps/va_sweep-26c0cdc5d9d7bf43.d: crates/bench/src/bin/va_sweep.rs

/root/repo/target/release/deps/va_sweep-26c0cdc5d9d7bf43: crates/bench/src/bin/va_sweep.rs

crates/bench/src/bin/va_sweep.rs:
