/root/repo/target/release/deps/iq-e9217876912f168b.d: src/bin/iq.rs

/root/repo/target/release/deps/iq-e9217876912f168b: src/bin/iq.rs

src/bin/iq.rs:
