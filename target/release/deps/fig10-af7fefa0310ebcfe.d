/root/repo/target/release/deps/fig10-af7fefa0310ebcfe.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/release/deps/libfig10-af7fefa0310ebcfe.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
