/root/repo/target/release/deps/rand-7a0b3e533d46d768.d: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

/root/repo/target/release/deps/librand-7a0b3e533d46d768.rlib: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

/root/repo/target/release/deps/librand-7a0b3e533d46d768.rmeta: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

compat/rand/src/lib.rs:
compat/rand/src/distributions.rs:
compat/rand/src/rngs.rs:
compat/rand/src/seq.rs:
