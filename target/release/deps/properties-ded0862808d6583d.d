/root/repo/target/release/deps/properties-ded0862808d6583d.d: crates/vafile/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-ded0862808d6583d.rmeta: crates/vafile/tests/properties.rs Cargo.toml

crates/vafile/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
