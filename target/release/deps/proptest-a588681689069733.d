/root/repo/target/release/deps/proptest-a588681689069733.d: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-a588681689069733.rlib: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-a588681689069733.rmeta: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

compat/proptest/src/lib.rs:
compat/proptest/src/strategy.rs:
