/root/repo/target/release/deps/io_profile-e0e179e35f061df5.d: crates/bench/src/bin/io_profile.rs Cargo.toml

/root/repo/target/release/deps/libio_profile-e0e179e35f061df5.rmeta: crates/bench/src/bin/io_profile.rs Cargo.toml

crates/bench/src/bin/io_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
