/root/repo/target/release/deps/concurrent_queries-0b98e0dd47495977.d: tests/concurrent_queries.rs

/root/repo/target/release/deps/concurrent_queries-0b98e0dd47495977: tests/concurrent_queries.rs

tests/concurrent_queries.rs:
