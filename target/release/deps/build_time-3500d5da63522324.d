/root/repo/target/release/deps/build_time-3500d5da63522324.d: crates/bench/src/bin/build_time.rs Cargo.toml

/root/repo/target/release/deps/libbuild_time-3500d5da63522324.rmeta: crates/bench/src/bin/build_time.rs Cargo.toml

crates/bench/src/bin/build_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
