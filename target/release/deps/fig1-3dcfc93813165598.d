/root/repo/target/release/deps/fig1-3dcfc93813165598.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-3dcfc93813165598: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
