/root/repo/target/release/deps/fig8-17eae53e1608b661.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-17eae53e1608b661: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
