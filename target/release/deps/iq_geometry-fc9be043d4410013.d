/root/repo/target/release/deps/iq_geometry-fc9be043d4410013.d: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs Cargo.toml

/root/repo/target/release/deps/libiq_geometry-fc9be043d4410013.rmeta: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs Cargo.toml

crates/geometry/src/lib.rs:
crates/geometry/src/mbr.rs:
crates/geometry/src/metric.rs:
crates/geometry/src/partition.rs:
crates/geometry/src/point.rs:
crates/geometry/src/volume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
