/root/repo/target/release/deps/iq-f79997f1e45f7c8e.d: src/bin/iq.rs

/root/repo/target/release/deps/iq-f79997f1e45f7c8e: src/bin/iq.rs

src/bin/iq.rs:
