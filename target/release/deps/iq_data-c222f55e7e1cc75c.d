/root/repo/target/release/deps/iq_data-c222f55e7e1cc75c.d: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

/root/repo/target/release/deps/iq_data-c222f55e7e1cc75c: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

crates/data/src/lib.rs:
crates/data/src/fractal.rs:
crates/data/src/generate.rs:
crates/data/src/io.rs:
crates/data/src/workload.rs:
