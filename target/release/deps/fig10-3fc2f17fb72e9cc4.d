/root/repo/target/release/deps/fig10-3fc2f17fb72e9cc4.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/release/deps/libfig10-3fc2f17fb72e9cc4.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
