/root/repo/target/release/deps/concurrent_queries-93518a056ea072dd.d: tests/concurrent_queries.rs

/root/repo/target/release/deps/concurrent_queries-93518a056ea072dd: tests/concurrent_queries.rs

tests/concurrent_queries.rs:
