/root/repo/target/release/deps/rand_distr-ff3f45f157ca5cba.d: compat/rand_distr/src/lib.rs

/root/repo/target/release/deps/rand_distr-ff3f45f157ca5cba: compat/rand_distr/src/lib.rs

compat/rand_distr/src/lib.rs:
