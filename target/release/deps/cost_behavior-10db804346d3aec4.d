/root/repo/target/release/deps/cost_behavior-10db804346d3aec4.d: tests/cost_behavior.rs Cargo.toml

/root/repo/target/release/deps/libcost_behavior-10db804346d3aec4.rmeta: tests/cost_behavior.rs Cargo.toml

tests/cost_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
