/root/repo/target/release/deps/iq_data-aa2889f57f94dd4f.d: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

/root/repo/target/release/deps/libiq_data-aa2889f57f94dd4f.rlib: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

/root/repo/target/release/deps/libiq_data-aa2889f57f94dd4f.rmeta: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

crates/data/src/lib.rs:
crates/data/src/fractal.rs:
crates/data/src/generate.rs:
crates/data/src/io.rs:
crates/data/src/workload.rs:
