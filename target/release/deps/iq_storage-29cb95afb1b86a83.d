/root/repo/target/release/deps/iq_storage-29cb95afb1b86a83.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs

/root/repo/target/release/deps/iq_storage-29cb95afb1b86a83: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/fetch.rs:
crates/storage/src/model.rs:
