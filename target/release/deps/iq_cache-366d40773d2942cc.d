/root/repo/target/release/deps/iq_cache-366d40773d2942cc.d: crates/cache/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libiq_cache-366d40773d2942cc.rmeta: crates/cache/src/lib.rs Cargo.toml

crates/cache/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
