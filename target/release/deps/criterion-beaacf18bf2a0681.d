/root/repo/target/release/deps/criterion-beaacf18bf2a0681.d: compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-beaacf18bf2a0681.rmeta: compat/criterion/src/lib.rs Cargo.toml

compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
