/root/repo/target/release/deps/properties-19618baefd5b46c7.d: crates/cache/tests/properties.rs

/root/repo/target/release/deps/properties-19618baefd5b46c7: crates/cache/tests/properties.rs

crates/cache/tests/properties.rs:
