/root/repo/target/release/deps/iq_data-1b90eb6bf822717a.d: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

/root/repo/target/release/deps/libiq_data-1b90eb6bf822717a.rlib: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

/root/repo/target/release/deps/libiq_data-1b90eb6bf822717a.rmeta: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

crates/data/src/lib.rs:
crates/data/src/fractal.rs:
crates/data/src/generate.rs:
crates/data/src/io.rs:
crates/data/src/workload.rs:
