/root/repo/target/release/deps/cross_method_agreement-eab05c66f792af1d.d: tests/cross_method_agreement.rs Cargo.toml

/root/repo/target/release/deps/libcross_method_agreement-eab05c66f792af1d.rmeta: tests/cross_method_agreement.rs Cargo.toml

tests/cross_method_agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
