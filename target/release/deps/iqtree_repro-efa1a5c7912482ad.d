/root/repo/target/release/deps/iqtree_repro-efa1a5c7912482ad.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libiqtree_repro-efa1a5c7912482ad.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
