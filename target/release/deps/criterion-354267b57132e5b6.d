/root/repo/target/release/deps/criterion-354267b57132e5b6.d: compat/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-354267b57132e5b6: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
