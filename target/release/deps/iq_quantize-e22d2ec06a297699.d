/root/repo/target/release/deps/iq_quantize-e22d2ec06a297699.d: crates/quantize/src/lib.rs crates/quantize/src/bits.rs crates/quantize/src/grid.rs crates/quantize/src/page.rs Cargo.toml

/root/repo/target/release/deps/libiq_quantize-e22d2ec06a297699.rmeta: crates/quantize/src/lib.rs crates/quantize/src/bits.rs crates/quantize/src/grid.rs crates/quantize/src/page.rs Cargo.toml

crates/quantize/src/lib.rs:
crates/quantize/src/bits.rs:
crates/quantize/src/grid.rs:
crates/quantize/src/page.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
