/root/repo/target/release/deps/components-08b2c7eb7a641d5e.d: crates/bench/benches/components.rs Cargo.toml

/root/repo/target/release/deps/libcomponents-08b2c7eb7a641d5e.rmeta: crates/bench/benches/components.rs Cargo.toml

crates/bench/benches/components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
