/root/repo/target/release/deps/iq_geometry-8d6b9d075f745f96.d: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs

/root/repo/target/release/deps/libiq_geometry-8d6b9d075f745f96.rlib: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs

/root/repo/target/release/deps/libiq_geometry-8d6b9d075f745f96.rmeta: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs

crates/geometry/src/lib.rs:
crates/geometry/src/mbr.rs:
crates/geometry/src/metric.rs:
crates/geometry/src/partition.rs:
crates/geometry/src/point.rs:
crates/geometry/src/volume.rs:
