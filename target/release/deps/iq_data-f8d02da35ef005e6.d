/root/repo/target/release/deps/iq_data-f8d02da35ef005e6.d: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs Cargo.toml

/root/repo/target/release/deps/libiq_data-f8d02da35ef005e6.rmeta: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/fractal.rs:
crates/data/src/generate.rs:
crates/data/src/io.rs:
crates/data/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
