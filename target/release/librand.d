/root/repo/target/release/librand.rlib: /root/repo/compat/rand/src/distributions.rs /root/repo/compat/rand/src/lib.rs /root/repo/compat/rand/src/rngs.rs /root/repo/compat/rand/src/seq.rs
