/root/repo/target/release/examples/image_search-a893eb563e8c9b2a.d: examples/image_search.rs Cargo.toml

/root/repo/target/release/examples/libimage_search-a893eb563e8c9b2a.rmeta: examples/image_search.rs Cargo.toml

examples/image_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
