/root/repo/target/release/examples/cad_retrieval-ddfa70c94b62710a.d: examples/cad_retrieval.rs

/root/repo/target/release/examples/cad_retrieval-ddfa70c94b62710a: examples/cad_retrieval.rs

examples/cad_retrieval.rs:
