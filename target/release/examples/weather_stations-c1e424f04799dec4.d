/root/repo/target/release/examples/weather_stations-c1e424f04799dec4.d: examples/weather_stations.rs Cargo.toml

/root/repo/target/release/examples/libweather_stations-c1e424f04799dec4.rmeta: examples/weather_stations.rs Cargo.toml

examples/weather_stations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
