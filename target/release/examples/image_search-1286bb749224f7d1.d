/root/repo/target/release/examples/image_search-1286bb749224f7d1.d: examples/image_search.rs

/root/repo/target/release/examples/image_search-1286bb749224f7d1: examples/image_search.rs

examples/image_search.rs:
