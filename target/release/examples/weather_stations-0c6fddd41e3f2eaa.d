/root/repo/target/release/examples/weather_stations-0c6fddd41e3f2eaa.d: examples/weather_stations.rs

/root/repo/target/release/examples/weather_stations-0c6fddd41e3f2eaa: examples/weather_stations.rs

examples/weather_stations.rs:
