/root/repo/target/release/examples/cad_retrieval-bf588417f77803b5.d: examples/cad_retrieval.rs

/root/repo/target/release/examples/cad_retrieval-bf588417f77803b5: examples/cad_retrieval.rs

examples/cad_retrieval.rs:
