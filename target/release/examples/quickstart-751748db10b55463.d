/root/repo/target/release/examples/quickstart-751748db10b55463.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-751748db10b55463.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
