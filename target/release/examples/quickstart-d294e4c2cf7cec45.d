/root/repo/target/release/examples/quickstart-d294e4c2cf7cec45.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d294e4c2cf7cec45: examples/quickstart.rs

examples/quickstart.rs:
