/root/repo/target/release/examples/image_search-f732a85d9bfd55b5.d: examples/image_search.rs

/root/repo/target/release/examples/image_search-f732a85d9bfd55b5: examples/image_search.rs

examples/image_search.rs:
