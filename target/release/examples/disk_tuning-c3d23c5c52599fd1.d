/root/repo/target/release/examples/disk_tuning-c3d23c5c52599fd1.d: examples/disk_tuning.rs

/root/repo/target/release/examples/disk_tuning-c3d23c5c52599fd1: examples/disk_tuning.rs

examples/disk_tuning.rs:
