/root/repo/target/release/examples/cad_retrieval-36a49a696bc64ab1.d: examples/cad_retrieval.rs Cargo.toml

/root/repo/target/release/examples/libcad_retrieval-36a49a696bc64ab1.rmeta: examples/cad_retrieval.rs Cargo.toml

examples/cad_retrieval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
