/root/repo/target/release/examples/disk_tuning-2735cbf6bc1a6de0.d: examples/disk_tuning.rs Cargo.toml

/root/repo/target/release/examples/libdisk_tuning-2735cbf6bc1a6de0.rmeta: examples/disk_tuning.rs Cargo.toml

examples/disk_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
