/root/repo/target/release/examples/weather_stations-eba8c523fd4217da.d: examples/weather_stations.rs

/root/repo/target/release/examples/weather_stations-eba8c523fd4217da: examples/weather_stations.rs

examples/weather_stations.rs:
