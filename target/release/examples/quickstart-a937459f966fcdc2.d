/root/repo/target/release/examples/quickstart-a937459f966fcdc2.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a937459f966fcdc2: examples/quickstart.rs

examples/quickstart.rs:
