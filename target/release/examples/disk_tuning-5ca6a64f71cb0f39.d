/root/repo/target/release/examples/disk_tuning-5ca6a64f71cb0f39.d: examples/disk_tuning.rs

/root/repo/target/release/examples/disk_tuning-5ca6a64f71cb0f39: examples/disk_tuning.rs

examples/disk_tuning.rs:
