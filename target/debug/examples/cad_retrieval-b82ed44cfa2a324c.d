/root/repo/target/debug/examples/cad_retrieval-b82ed44cfa2a324c.d: examples/cad_retrieval.rs

/root/repo/target/debug/examples/cad_retrieval-b82ed44cfa2a324c: examples/cad_retrieval.rs

examples/cad_retrieval.rs:
