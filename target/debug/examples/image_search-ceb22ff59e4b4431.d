/root/repo/target/debug/examples/image_search-ceb22ff59e4b4431.d: examples/image_search.rs

/root/repo/target/debug/examples/image_search-ceb22ff59e4b4431: examples/image_search.rs

examples/image_search.rs:
