/root/repo/target/debug/examples/weather_stations-3b64e1eb4b1051ca.d: examples/weather_stations.rs Cargo.toml

/root/repo/target/debug/examples/libweather_stations-3b64e1eb4b1051ca.rmeta: examples/weather_stations.rs Cargo.toml

examples/weather_stations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
