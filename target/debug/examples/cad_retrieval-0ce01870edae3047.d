/root/repo/target/debug/examples/cad_retrieval-0ce01870edae3047.d: examples/cad_retrieval.rs

/root/repo/target/debug/examples/cad_retrieval-0ce01870edae3047: examples/cad_retrieval.rs

examples/cad_retrieval.rs:
