/root/repo/target/debug/examples/quickstart-4b67bd3e7e0a4b21.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4b67bd3e7e0a4b21: examples/quickstart.rs

examples/quickstart.rs:
