/root/repo/target/debug/examples/disk_tuning-87d678d2a03ccc88.d: examples/disk_tuning.rs

/root/repo/target/debug/examples/disk_tuning-87d678d2a03ccc88: examples/disk_tuning.rs

examples/disk_tuning.rs:
