/root/repo/target/debug/examples/cad_retrieval-2155790524646ca1.d: examples/cad_retrieval.rs Cargo.toml

/root/repo/target/debug/examples/libcad_retrieval-2155790524646ca1.rmeta: examples/cad_retrieval.rs Cargo.toml

examples/cad_retrieval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
