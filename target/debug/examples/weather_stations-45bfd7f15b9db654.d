/root/repo/target/debug/examples/weather_stations-45bfd7f15b9db654.d: examples/weather_stations.rs

/root/repo/target/debug/examples/weather_stations-45bfd7f15b9db654: examples/weather_stations.rs

examples/weather_stations.rs:
