/root/repo/target/debug/examples/weather_stations-720874cd54ee2032.d: examples/weather_stations.rs

/root/repo/target/debug/examples/weather_stations-720874cd54ee2032: examples/weather_stations.rs

examples/weather_stations.rs:
