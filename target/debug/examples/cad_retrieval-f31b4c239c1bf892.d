/root/repo/target/debug/examples/cad_retrieval-f31b4c239c1bf892.d: examples/cad_retrieval.rs

/root/repo/target/debug/examples/cad_retrieval-f31b4c239c1bf892: examples/cad_retrieval.rs

examples/cad_retrieval.rs:
