/root/repo/target/debug/examples/image_search-a79214e485f7b22d.d: examples/image_search.rs Cargo.toml

/root/repo/target/debug/examples/libimage_search-a79214e485f7b22d.rmeta: examples/image_search.rs Cargo.toml

examples/image_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
