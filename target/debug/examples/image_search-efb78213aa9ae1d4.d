/root/repo/target/debug/examples/image_search-efb78213aa9ae1d4.d: examples/image_search.rs

/root/repo/target/debug/examples/image_search-efb78213aa9ae1d4: examples/image_search.rs

examples/image_search.rs:
