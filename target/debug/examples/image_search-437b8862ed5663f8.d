/root/repo/target/debug/examples/image_search-437b8862ed5663f8.d: examples/image_search.rs

/root/repo/target/debug/examples/image_search-437b8862ed5663f8: examples/image_search.rs

examples/image_search.rs:
