/root/repo/target/debug/examples/cad_retrieval-af67dda8a4704ee1.d: examples/cad_retrieval.rs

/root/repo/target/debug/examples/cad_retrieval-af67dda8a4704ee1: examples/cad_retrieval.rs

examples/cad_retrieval.rs:
