/root/repo/target/debug/examples/quickstart-fbc4430656066bec.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-fbc4430656066bec: examples/quickstart.rs

examples/quickstart.rs:
