/root/repo/target/debug/examples/disk_tuning-8713d7c64e43f6af.d: examples/disk_tuning.rs

/root/repo/target/debug/examples/disk_tuning-8713d7c64e43f6af: examples/disk_tuning.rs

examples/disk_tuning.rs:
