/root/repo/target/debug/examples/disk_tuning-5630d4b642c3ba05.d: examples/disk_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libdisk_tuning-5630d4b642c3ba05.rmeta: examples/disk_tuning.rs Cargo.toml

examples/disk_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
