/root/repo/target/debug/examples/disk_tuning-146d6c8f3096d00e.d: examples/disk_tuning.rs

/root/repo/target/debug/examples/disk_tuning-146d6c8f3096d00e: examples/disk_tuning.rs

examples/disk_tuning.rs:
