/root/repo/target/debug/examples/quickstart-af12e7cdd47ac8da.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-af12e7cdd47ac8da: examples/quickstart.rs

examples/quickstart.rs:
