/root/repo/target/debug/examples/image_search-97ae3381504b3294.d: examples/image_search.rs

/root/repo/target/debug/examples/image_search-97ae3381504b3294: examples/image_search.rs

examples/image_search.rs:
