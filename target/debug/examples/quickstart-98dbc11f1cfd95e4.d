/root/repo/target/debug/examples/quickstart-98dbc11f1cfd95e4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-98dbc11f1cfd95e4: examples/quickstart.rs

examples/quickstart.rs:
