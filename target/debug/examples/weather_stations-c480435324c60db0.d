/root/repo/target/debug/examples/weather_stations-c480435324c60db0.d: examples/weather_stations.rs

/root/repo/target/debug/examples/weather_stations-c480435324c60db0: examples/weather_stations.rs

examples/weather_stations.rs:
