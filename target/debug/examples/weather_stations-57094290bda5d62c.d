/root/repo/target/debug/examples/weather_stations-57094290bda5d62c.d: examples/weather_stations.rs

/root/repo/target/debug/examples/weather_stations-57094290bda5d62c: examples/weather_stations.rs

examples/weather_stations.rs:
