/root/repo/target/debug/examples/disk_tuning-7ca69f51cc701e4c.d: examples/disk_tuning.rs

/root/repo/target/debug/examples/disk_tuning-7ca69f51cc701e4c: examples/disk_tuning.rs

examples/disk_tuning.rs:
