/root/repo/target/debug/deps/proptest-db07529705100463.d: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-db07529705100463.rmeta: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs Cargo.toml

compat/proptest/src/lib.rs:
compat/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
