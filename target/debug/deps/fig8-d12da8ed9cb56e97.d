/root/repo/target/debug/deps/fig8-d12da8ed9cb56e97.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-d12da8ed9cb56e97: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
