/root/repo/target/debug/deps/fig12-2e73b9de5c118186.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-2e73b9de5c118186: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
