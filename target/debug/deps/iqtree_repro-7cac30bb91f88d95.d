/root/repo/target/debug/deps/iqtree_repro-7cac30bb91f88d95.d: src/lib.rs

/root/repo/target/debug/deps/libiqtree_repro-7cac30bb91f88d95.rlib: src/lib.rs

/root/repo/target/debug/deps/libiqtree_repro-7cac30bb91f88d95.rmeta: src/lib.rs

src/lib.rs:
