/root/repo/target/debug/deps/rand_distr-bf1df37b1da084dc.d: compat/rand_distr/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_distr-bf1df37b1da084dc.rmeta: compat/rand_distr/src/lib.rs Cargo.toml

compat/rand_distr/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
