/root/repo/target/debug/deps/cross_method_agreement-5c31eaca47e00119.d: tests/cross_method_agreement.rs

/root/repo/target/debug/deps/cross_method_agreement-5c31eaca47e00119: tests/cross_method_agreement.rs

tests/cross_method_agreement.rs:
