/root/repo/target/debug/deps/rand_distr-bfea251272216b64.d: compat/rand_distr/src/lib.rs

/root/repo/target/debug/deps/rand_distr-bfea251272216b64: compat/rand_distr/src/lib.rs

compat/rand_distr/src/lib.rs:
