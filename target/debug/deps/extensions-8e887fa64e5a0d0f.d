/root/repo/target/debug/deps/extensions-8e887fa64e5a0d0f.d: crates/bench/src/bin/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-8e887fa64e5a0d0f.rmeta: crates/bench/src/bin/extensions.rs Cargo.toml

crates/bench/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
