/root/repo/target/debug/deps/cli-585d68be6443d6c2.d: tests/cli.rs

/root/repo/target/debug/deps/cli-585d68be6443d6c2: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_iq=/root/repo/target/debug/iq
