/root/repo/target/debug/deps/iq_cache-cacaa94505305b38.d: crates/cache/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libiq_cache-cacaa94505305b38.rmeta: crates/cache/src/lib.rs Cargo.toml

crates/cache/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
