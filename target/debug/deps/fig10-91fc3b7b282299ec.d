/root/repo/target/debug/deps/fig10-91fc3b7b282299ec.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-91fc3b7b282299ec: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
