/root/repo/target/debug/deps/va_sweep-2c790c430d08c710.d: crates/bench/src/bin/va_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libva_sweep-2c790c430d08c710.rmeta: crates/bench/src/bin/va_sweep.rs Cargo.toml

crates/bench/src/bin/va_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
