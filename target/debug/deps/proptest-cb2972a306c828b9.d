/root/repo/target/debug/deps/proptest-cb2972a306c828b9.d: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-cb2972a306c828b9.rmeta: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs Cargo.toml

compat/proptest/src/lib.rs:
compat/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
