/root/repo/target/debug/deps/iq-c0847b84ecfe8c1a.d: src/bin/iq.rs

/root/repo/target/debug/deps/iq-c0847b84ecfe8c1a: src/bin/iq.rs

src/bin/iq.rs:
