/root/repo/target/debug/deps/iq_cache-574f2bc277790601.d: crates/cache/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libiq_cache-574f2bc277790601.rmeta: crates/cache/src/lib.rs Cargo.toml

crates/cache/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
