/root/repo/target/debug/deps/io_profile-83d14250f61c2977.d: crates/bench/src/bin/io_profile.rs

/root/repo/target/debug/deps/io_profile-83d14250f61c2977: crates/bench/src/bin/io_profile.rs

crates/bench/src/bin/io_profile.rs:
