/root/repo/target/debug/deps/iqtree_repro-725360b3925a15d2.d: src/lib.rs

/root/repo/target/debug/deps/iqtree_repro-725360b3925a15d2: src/lib.rs

src/lib.rs:
