/root/repo/target/debug/deps/fig11-199b565c6b266075.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-199b565c6b266075: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
