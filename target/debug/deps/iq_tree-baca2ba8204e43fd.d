/root/repo/target/debug/deps/iq_tree-baca2ba8204e43fd.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

/root/repo/target/debug/deps/iq_tree-baca2ba8204e43fd: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/maintain.rs:
crates/core/src/persist.rs:
crates/core/src/search.rs:
crates/core/src/update.rs:
