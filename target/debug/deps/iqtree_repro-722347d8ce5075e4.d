/root/repo/target/debug/deps/iqtree_repro-722347d8ce5075e4.d: src/lib.rs

/root/repo/target/debug/deps/iqtree_repro-722347d8ce5075e4: src/lib.rs

src/lib.rs:
