/root/repo/target/debug/deps/fig9-fb5f56c5f9ec634a.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-fb5f56c5f9ec634a: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
