/root/repo/target/debug/deps/extensions-a5783c726c75998b.d: crates/bench/src/bin/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-a5783c726c75998b.rmeta: crates/bench/src/bin/extensions.rs Cargo.toml

crates/bench/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
