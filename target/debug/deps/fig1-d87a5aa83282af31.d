/root/repo/target/debug/deps/fig1-d87a5aa83282af31.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-d87a5aa83282af31: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
