/root/repo/target/debug/deps/iq_storage-d69c52d887c78ac0.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libiq_storage-d69c52d887c78ac0.rmeta: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/fetch.rs:
crates/storage/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
