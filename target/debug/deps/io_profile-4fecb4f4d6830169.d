/root/repo/target/debug/deps/io_profile-4fecb4f4d6830169.d: crates/bench/src/bin/io_profile.rs Cargo.toml

/root/repo/target/debug/deps/libio_profile-4fecb4f4d6830169.rmeta: crates/bench/src/bin/io_profile.rs Cargo.toml

crates/bench/src/bin/io_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
