/root/repo/target/debug/deps/proptest-eccf892b411dfe8d.d: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-eccf892b411dfe8d.rlib: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-eccf892b411dfe8d.rmeta: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

compat/proptest/src/lib.rs:
compat/proptest/src/strategy.rs:
