/root/repo/target/debug/deps/file_backed-73284576d4f98511.d: tests/file_backed.rs

/root/repo/target/debug/deps/file_backed-73284576d4f98511: tests/file_backed.rs

tests/file_backed.rs:
