/root/repo/target/debug/deps/iq_tree-9d9830a9eabfe22a.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

/root/repo/target/debug/deps/libiq_tree-9d9830a9eabfe22a.rlib: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

/root/repo/target/debug/deps/libiq_tree-9d9830a9eabfe22a.rmeta: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/maintain.rs:
crates/core/src/persist.rs:
crates/core/src/search.rs:
crates/core/src/update.rs:
