/root/repo/target/debug/deps/iqtree_repro-de7bf6c2eb2ff1f1.d: src/lib.rs

/root/repo/target/debug/deps/iqtree_repro-de7bf6c2eb2ff1f1: src/lib.rs

src/lib.rs:
