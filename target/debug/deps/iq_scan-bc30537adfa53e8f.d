/root/repo/target/debug/deps/iq_scan-bc30537adfa53e8f.d: crates/scan/src/lib.rs

/root/repo/target/debug/deps/libiq_scan-bc30537adfa53e8f.rlib: crates/scan/src/lib.rs

/root/repo/target/debug/deps/libiq_scan-bc30537adfa53e8f.rmeta: crates/scan/src/lib.rs

crates/scan/src/lib.rs:
