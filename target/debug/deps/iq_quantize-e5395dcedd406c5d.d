/root/repo/target/debug/deps/iq_quantize-e5395dcedd406c5d.d: crates/quantize/src/lib.rs crates/quantize/src/bits.rs crates/quantize/src/grid.rs crates/quantize/src/page.rs

/root/repo/target/debug/deps/libiq_quantize-e5395dcedd406c5d.rlib: crates/quantize/src/lib.rs crates/quantize/src/bits.rs crates/quantize/src/grid.rs crates/quantize/src/page.rs

/root/repo/target/debug/deps/libiq_quantize-e5395dcedd406c5d.rmeta: crates/quantize/src/lib.rs crates/quantize/src/bits.rs crates/quantize/src/grid.rs crates/quantize/src/page.rs

crates/quantize/src/lib.rs:
crates/quantize/src/bits.rs:
crates/quantize/src/grid.rs:
crates/quantize/src/page.rs:
