/root/repo/target/debug/deps/properties-66d8725759cf57d9.d: crates/xtree/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-66d8725759cf57d9.rmeta: crates/xtree/tests/properties.rs Cargo.toml

crates/xtree/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
