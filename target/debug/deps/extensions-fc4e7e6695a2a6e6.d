/root/repo/target/debug/deps/extensions-fc4e7e6695a2a6e6.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-fc4e7e6695a2a6e6: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
