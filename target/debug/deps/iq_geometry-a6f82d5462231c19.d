/root/repo/target/debug/deps/iq_geometry-a6f82d5462231c19.d: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs

/root/repo/target/debug/deps/iq_geometry-a6f82d5462231c19: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs

crates/geometry/src/lib.rs:
crates/geometry/src/mbr.rs:
crates/geometry/src/metric.rs:
crates/geometry/src/partition.rs:
crates/geometry/src/point.rs:
crates/geometry/src/volume.rs:
