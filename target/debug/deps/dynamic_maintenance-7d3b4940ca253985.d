/root/repo/target/debug/deps/dynamic_maintenance-7d3b4940ca253985.d: tests/dynamic_maintenance.rs

/root/repo/target/debug/deps/dynamic_maintenance-7d3b4940ca253985: tests/dynamic_maintenance.rs

tests/dynamic_maintenance.rs:
