/root/repo/target/debug/deps/iq-c7f3bd11c5977c27.d: src/bin/iq.rs

/root/repo/target/debug/deps/iq-c7f3bd11c5977c27: src/bin/iq.rs

src/bin/iq.rs:
