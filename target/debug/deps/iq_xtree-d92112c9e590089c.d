/root/repo/target/debug/deps/iq_xtree-d92112c9e590089c.d: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs

/root/repo/target/debug/deps/libiq_xtree-d92112c9e590089c.rlib: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs

/root/repo/target/debug/deps/libiq_xtree-d92112c9e590089c.rmeta: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs

crates/xtree/src/lib.rs:
crates/xtree/src/node.rs:
crates/xtree/src/split.rs:
