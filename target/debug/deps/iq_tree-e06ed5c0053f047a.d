/root/repo/target/debug/deps/iq_tree-e06ed5c0053f047a.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

/root/repo/target/debug/deps/iq_tree-e06ed5c0053f047a: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/maintain.rs:
crates/core/src/persist.rs:
crates/core/src/search.rs:
crates/core/src/update.rs:
