/root/repo/target/debug/deps/properties-7fd8343c32ac76a2.d: crates/vafile/tests/properties.rs

/root/repo/target/debug/deps/properties-7fd8343c32ac76a2: crates/vafile/tests/properties.rs

crates/vafile/tests/properties.rs:
