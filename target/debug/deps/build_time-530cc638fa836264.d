/root/repo/target/debug/deps/build_time-530cc638fa836264.d: crates/bench/src/bin/build_time.rs

/root/repo/target/debug/deps/build_time-530cc638fa836264: crates/bench/src/bin/build_time.rs

crates/bench/src/bin/build_time.rs:
