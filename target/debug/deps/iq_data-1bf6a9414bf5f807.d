/root/repo/target/debug/deps/iq_data-1bf6a9414bf5f807.d: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libiq_data-1bf6a9414bf5f807.rmeta: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/fractal.rs:
crates/data/src/generate.rs:
crates/data/src/io.rs:
crates/data/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
