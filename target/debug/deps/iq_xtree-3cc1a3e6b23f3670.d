/root/repo/target/debug/deps/iq_xtree-3cc1a3e6b23f3670.d: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs Cargo.toml

/root/repo/target/debug/deps/libiq_xtree-3cc1a3e6b23f3670.rmeta: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs Cargo.toml

crates/xtree/src/lib.rs:
crates/xtree/src/node.rs:
crates/xtree/src/split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
