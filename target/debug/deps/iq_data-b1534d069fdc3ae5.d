/root/repo/target/debug/deps/iq_data-b1534d069fdc3ae5.d: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

/root/repo/target/debug/deps/libiq_data-b1534d069fdc3ae5.rlib: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

/root/repo/target/debug/deps/libiq_data-b1534d069fdc3ae5.rmeta: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

crates/data/src/lib.rs:
crates/data/src/fractal.rs:
crates/data/src/generate.rs:
crates/data/src/io.rs:
crates/data/src/workload.rs:
