/root/repo/target/debug/deps/edge_cases-b0ff9e474d6de887.d: crates/quantize/tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-b0ff9e474d6de887.rmeta: crates/quantize/tests/edge_cases.rs Cargo.toml

crates/quantize/tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
