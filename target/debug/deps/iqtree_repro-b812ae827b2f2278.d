/root/repo/target/debug/deps/iqtree_repro-b812ae827b2f2278.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libiqtree_repro-b812ae827b2f2278.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
