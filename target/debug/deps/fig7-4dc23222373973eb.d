/root/repo/target/debug/deps/fig7-4dc23222373973eb.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-4dc23222373973eb: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
