/root/repo/target/debug/deps/cli-2cd04591ec6e128c.d: tests/cli.rs

/root/repo/target/debug/deps/cli-2cd04591ec6e128c: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_iq=/root/repo/target/debug/iq
