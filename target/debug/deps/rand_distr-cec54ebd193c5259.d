/root/repo/target/debug/deps/rand_distr-cec54ebd193c5259.d: compat/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-cec54ebd193c5259.rlib: compat/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-cec54ebd193c5259.rmeta: compat/rand_distr/src/lib.rs

compat/rand_distr/src/lib.rs:
