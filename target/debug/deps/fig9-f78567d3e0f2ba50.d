/root/repo/target/debug/deps/fig9-f78567d3e0f2ba50.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-f78567d3e0f2ba50: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
