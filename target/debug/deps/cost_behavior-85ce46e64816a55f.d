/root/repo/target/debug/deps/cost_behavior-85ce46e64816a55f.d: tests/cost_behavior.rs

/root/repo/target/debug/deps/cost_behavior-85ce46e64816a55f: tests/cost_behavior.rs

tests/cost_behavior.rs:
