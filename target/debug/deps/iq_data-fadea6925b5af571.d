/root/repo/target/debug/deps/iq_data-fadea6925b5af571.d: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

/root/repo/target/debug/deps/iq_data-fadea6925b5af571: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

crates/data/src/lib.rs:
crates/data/src/fractal.rs:
crates/data/src/generate.rs:
crates/data/src/io.rs:
crates/data/src/workload.rs:
