/root/repo/target/debug/deps/iq-d5336f184c72e8f5.d: src/bin/iq.rs Cargo.toml

/root/repo/target/debug/deps/libiq-d5336f184c72e8f5.rmeta: src/bin/iq.rs Cargo.toml

src/bin/iq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
