/root/repo/target/debug/deps/iq_scan-eef8ec13b5b234e1.d: crates/scan/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libiq_scan-eef8ec13b5b234e1.rmeta: crates/scan/src/lib.rs Cargo.toml

crates/scan/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
