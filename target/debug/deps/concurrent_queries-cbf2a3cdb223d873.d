/root/repo/target/debug/deps/concurrent_queries-cbf2a3cdb223d873.d: tests/concurrent_queries.rs

/root/repo/target/debug/deps/concurrent_queries-cbf2a3cdb223d873: tests/concurrent_queries.rs

tests/concurrent_queries.rs:
