/root/repo/target/debug/deps/iq_bench-6ceef35c68e2b1d4.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/iq_bench-6ceef35c68e2b1d4: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
