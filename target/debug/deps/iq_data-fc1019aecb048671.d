/root/repo/target/debug/deps/iq_data-fc1019aecb048671.d: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

/root/repo/target/debug/deps/libiq_data-fc1019aecb048671.rlib: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

/root/repo/target/debug/deps/libiq_data-fc1019aecb048671.rmeta: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs

crates/data/src/lib.rs:
crates/data/src/fractal.rs:
crates/data/src/generate.rs:
crates/data/src/io.rs:
crates/data/src/workload.rs:
