/root/repo/target/debug/deps/criterion-acb502df13e1ea09.d: compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-acb502df13e1ea09.rlib: compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-acb502df13e1ea09.rmeta: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
