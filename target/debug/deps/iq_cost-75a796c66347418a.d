/root/repo/target/debug/deps/iq_cost-75a796c66347418a.d: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs

/root/repo/target/debug/deps/iq_cost-75a796c66347418a: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs

crates/costmodel/src/lib.rs:
crates/costmodel/src/access_prob.rs:
crates/costmodel/src/directory.rs:
crates/costmodel/src/refine.rs:
