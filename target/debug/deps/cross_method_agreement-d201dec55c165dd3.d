/root/repo/target/debug/deps/cross_method_agreement-d201dec55c165dd3.d: tests/cross_method_agreement.rs Cargo.toml

/root/repo/target/debug/deps/libcross_method_agreement-d201dec55c165dd3.rmeta: tests/cross_method_agreement.rs Cargo.toml

tests/cross_method_agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
