/root/repo/target/debug/deps/file_backed-37fe8e1fd56ab662.d: tests/file_backed.rs

/root/repo/target/debug/deps/file_backed-37fe8e1fd56ab662: tests/file_backed.rs

tests/file_backed.rs:
