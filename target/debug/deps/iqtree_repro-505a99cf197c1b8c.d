/root/repo/target/debug/deps/iqtree_repro-505a99cf197c1b8c.d: src/lib.rs

/root/repo/target/debug/deps/libiqtree_repro-505a99cf197c1b8c.rlib: src/lib.rs

/root/repo/target/debug/deps/libiqtree_repro-505a99cf197c1b8c.rmeta: src/lib.rs

src/lib.rs:
