/root/repo/target/debug/deps/rand-d8fecc1a094e4384.d: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

/root/repo/target/debug/deps/librand-d8fecc1a094e4384.rlib: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

/root/repo/target/debug/deps/librand-d8fecc1a094e4384.rmeta: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

compat/rand/src/lib.rs:
compat/rand/src/distributions.rs:
compat/rand/src/rngs.rs:
compat/rand/src/seq.rs:
