/root/repo/target/debug/deps/fig10-f6414a78072cef5d.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-f6414a78072cef5d: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
