/root/repo/target/debug/deps/io_profile-7773cdcc65810cec.d: crates/bench/src/bin/io_profile.rs Cargo.toml

/root/repo/target/debug/deps/libio_profile-7773cdcc65810cec.rmeta: crates/bench/src/bin/io_profile.rs Cargo.toml

crates/bench/src/bin/io_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
