/root/repo/target/debug/deps/iq_cost-1609b995de04073b.d: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs

/root/repo/target/debug/deps/libiq_cost-1609b995de04073b.rlib: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs

/root/repo/target/debug/deps/libiq_cost-1609b995de04073b.rmeta: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs

crates/costmodel/src/lib.rs:
crates/costmodel/src/access_prob.rs:
crates/costmodel/src/directory.rs:
crates/costmodel/src/refine.rs:
