/root/repo/target/debug/deps/cross_method_agreement-04dc4124985ec20f.d: tests/cross_method_agreement.rs

/root/repo/target/debug/deps/cross_method_agreement-04dc4124985ec20f: tests/cross_method_agreement.rs

tests/cross_method_agreement.rs:
