/root/repo/target/debug/deps/properties-51e7f42ff1d77d1f.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-51e7f42ff1d77d1f: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
