/root/repo/target/debug/deps/proptest-01436a34ec38430e.d: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

/root/repo/target/debug/deps/proptest-01436a34ec38430e: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

compat/proptest/src/lib.rs:
compat/proptest/src/strategy.rs:
