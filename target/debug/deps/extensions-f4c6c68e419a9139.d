/root/repo/target/debug/deps/extensions-f4c6c68e419a9139.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-f4c6c68e419a9139: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
