/root/repo/target/debug/deps/iq-6af6152b5f393fb4.d: src/bin/iq.rs

/root/repo/target/debug/deps/iq-6af6152b5f393fb4: src/bin/iq.rs

src/bin/iq.rs:
