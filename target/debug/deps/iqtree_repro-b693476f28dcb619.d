/root/repo/target/debug/deps/iqtree_repro-b693476f28dcb619.d: src/lib.rs

/root/repo/target/debug/deps/libiqtree_repro-b693476f28dcb619.rlib: src/lib.rs

/root/repo/target/debug/deps/libiqtree_repro-b693476f28dcb619.rmeta: src/lib.rs

src/lib.rs:
