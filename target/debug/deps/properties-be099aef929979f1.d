/root/repo/target/debug/deps/properties-be099aef929979f1.d: crates/vafile/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-be099aef929979f1.rmeta: crates/vafile/tests/properties.rs Cargo.toml

crates/vafile/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
