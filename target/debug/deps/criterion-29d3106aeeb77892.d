/root/repo/target/debug/deps/criterion-29d3106aeeb77892.d: compat/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-29d3106aeeb77892: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
