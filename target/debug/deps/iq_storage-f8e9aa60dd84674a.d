/root/repo/target/debug/deps/iq_storage-f8e9aa60dd84674a.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libiq_storage-f8e9aa60dd84674a.rmeta: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/fetch.rs:
crates/storage/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
