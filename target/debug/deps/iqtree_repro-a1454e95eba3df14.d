/root/repo/target/debug/deps/iqtree_repro-a1454e95eba3df14.d: src/lib.rs

/root/repo/target/debug/deps/libiqtree_repro-a1454e95eba3df14.rlib: src/lib.rs

/root/repo/target/debug/deps/libiqtree_repro-a1454e95eba3df14.rmeta: src/lib.rs

src/lib.rs:
