/root/repo/target/debug/deps/properties-7563aa367b4153bd.d: crates/xtree/tests/properties.rs

/root/repo/target/debug/deps/properties-7563aa367b4153bd: crates/xtree/tests/properties.rs

crates/xtree/tests/properties.rs:
