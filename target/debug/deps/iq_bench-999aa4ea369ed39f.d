/root/repo/target/debug/deps/iq_bench-999aa4ea369ed39f.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs Cargo.toml

/root/repo/target/debug/deps/libiq_bench-999aa4ea369ed39f.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
