/root/repo/target/debug/deps/iqtree_repro-823da7adae1014e2.d: src/lib.rs

/root/repo/target/debug/deps/iqtree_repro-823da7adae1014e2: src/lib.rs

src/lib.rs:
