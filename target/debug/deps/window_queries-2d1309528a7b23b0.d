/root/repo/target/debug/deps/window_queries-2d1309528a7b23b0.d: tests/window_queries.rs

/root/repo/target/debug/deps/window_queries-2d1309528a7b23b0: tests/window_queries.rs

tests/window_queries.rs:
