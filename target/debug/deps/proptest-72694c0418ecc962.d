/root/repo/target/debug/deps/proptest-72694c0418ecc962.d: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-72694c0418ecc962.rlib: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-72694c0418ecc962.rmeta: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

compat/proptest/src/lib.rs:
compat/proptest/src/strategy.rs:
