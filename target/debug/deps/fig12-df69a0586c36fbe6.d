/root/repo/target/debug/deps/fig12-df69a0586c36fbe6.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-df69a0586c36fbe6: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
