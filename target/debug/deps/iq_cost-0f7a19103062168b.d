/root/repo/target/debug/deps/iq_cost-0f7a19103062168b.d: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs Cargo.toml

/root/repo/target/debug/deps/libiq_cost-0f7a19103062168b.rmeta: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs Cargo.toml

crates/costmodel/src/lib.rs:
crates/costmodel/src/access_prob.rs:
crates/costmodel/src/directory.rs:
crates/costmodel/src/refine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
