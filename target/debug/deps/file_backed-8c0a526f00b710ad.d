/root/repo/target/debug/deps/file_backed-8c0a526f00b710ad.d: tests/file_backed.rs

/root/repo/target/debug/deps/file_backed-8c0a526f00b710ad: tests/file_backed.rs

tests/file_backed.rs:
