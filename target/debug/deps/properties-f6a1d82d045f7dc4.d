/root/repo/target/debug/deps/properties-f6a1d82d045f7dc4.d: crates/cache/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f6a1d82d045f7dc4.rmeta: crates/cache/tests/properties.rs Cargo.toml

crates/cache/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
