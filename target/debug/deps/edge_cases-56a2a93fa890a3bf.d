/root/repo/target/debug/deps/edge_cases-56a2a93fa890a3bf.d: crates/quantize/tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-56a2a93fa890a3bf: crates/quantize/tests/edge_cases.rs

crates/quantize/tests/edge_cases.rs:
