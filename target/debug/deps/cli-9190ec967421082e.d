/root/repo/target/debug/deps/cli-9190ec967421082e.d: tests/cli.rs

/root/repo/target/debug/deps/cli-9190ec967421082e: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_iq=/root/repo/target/debug/iq
