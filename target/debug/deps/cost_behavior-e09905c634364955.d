/root/repo/target/debug/deps/cost_behavior-e09905c634364955.d: tests/cost_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libcost_behavior-e09905c634364955.rmeta: tests/cost_behavior.rs Cargo.toml

tests/cost_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
