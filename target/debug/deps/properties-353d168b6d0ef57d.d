/root/repo/target/debug/deps/properties-353d168b6d0ef57d.d: crates/geometry/tests/properties.rs

/root/repo/target/debug/deps/properties-353d168b6d0ef57d: crates/geometry/tests/properties.rs

crates/geometry/tests/properties.rs:
