/root/repo/target/debug/deps/rand-5dab78b7d0e6bd04.d: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

/root/repo/target/debug/deps/librand-5dab78b7d0e6bd04.rlib: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

/root/repo/target/debug/deps/librand-5dab78b7d0e6bd04.rmeta: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

compat/rand/src/lib.rs:
compat/rand/src/distributions.rs:
compat/rand/src/rngs.rs:
compat/rand/src/seq.rs:
