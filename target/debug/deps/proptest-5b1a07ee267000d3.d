/root/repo/target/debug/deps/proptest-5b1a07ee267000d3.d: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-5b1a07ee267000d3.rlib: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-5b1a07ee267000d3.rmeta: compat/proptest/src/lib.rs compat/proptest/src/strategy.rs

compat/proptest/src/lib.rs:
compat/proptest/src/strategy.rs:
