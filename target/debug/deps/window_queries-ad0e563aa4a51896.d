/root/repo/target/debug/deps/window_queries-ad0e563aa4a51896.d: tests/window_queries.rs Cargo.toml

/root/repo/target/debug/deps/libwindow_queries-ad0e563aa4a51896.rmeta: tests/window_queries.rs Cargo.toml

tests/window_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
