/root/repo/target/debug/deps/cost_behavior-dc2fba4e33581224.d: tests/cost_behavior.rs

/root/repo/target/debug/deps/cost_behavior-dc2fba4e33581224: tests/cost_behavior.rs

tests/cost_behavior.rs:
