/root/repo/target/debug/deps/iq_geometry-511f9513e2b7c6d8.d: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs

/root/repo/target/debug/deps/libiq_geometry-511f9513e2b7c6d8.rlib: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs

/root/repo/target/debug/deps/libiq_geometry-511f9513e2b7c6d8.rmeta: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs

crates/geometry/src/lib.rs:
crates/geometry/src/mbr.rs:
crates/geometry/src/metric.rs:
crates/geometry/src/partition.rs:
crates/geometry/src/point.rs:
crates/geometry/src/volume.rs:
