/root/repo/target/debug/deps/iq_xtree-bba518c72cef79db.d: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs Cargo.toml

/root/repo/target/debug/deps/libiq_xtree-bba518c72cef79db.rmeta: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs Cargo.toml

crates/xtree/src/lib.rs:
crates/xtree/src/node.rs:
crates/xtree/src/split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
