/root/repo/target/debug/deps/build_time-291fca7c93fa5440.d: crates/bench/src/bin/build_time.rs Cargo.toml

/root/repo/target/debug/deps/libbuild_time-291fca7c93fa5440.rmeta: crates/bench/src/bin/build_time.rs Cargo.toml

crates/bench/src/bin/build_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
