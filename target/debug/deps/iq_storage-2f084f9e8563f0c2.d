/root/repo/target/debug/deps/iq_storage-2f084f9e8563f0c2.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs

/root/repo/target/debug/deps/iq_storage-2f084f9e8563f0c2: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/fetch.rs:
crates/storage/src/model.rs:
