/root/repo/target/debug/deps/iq_bench-ba9ab6967366b345.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libiq_bench-ba9ab6967366b345.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libiq_bench-ba9ab6967366b345.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
