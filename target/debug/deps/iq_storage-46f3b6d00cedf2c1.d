/root/repo/target/debug/deps/iq_storage-46f3b6d00cedf2c1.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs

/root/repo/target/debug/deps/libiq_storage-46f3b6d00cedf2c1.rlib: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs

/root/repo/target/debug/deps/libiq_storage-46f3b6d00cedf2c1.rmeta: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/fetch.rs crates/storage/src/model.rs

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/fetch.rs:
crates/storage/src/model.rs:
