/root/repo/target/debug/deps/iq_bench-5c847f7c45497cd3.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs Cargo.toml

/root/repo/target/debug/deps/libiq_bench-5c847f7c45497cd3.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
