/root/repo/target/debug/deps/cross_method_agreement-574bc80389943ab4.d: tests/cross_method_agreement.rs

/root/repo/target/debug/deps/cross_method_agreement-574bc80389943ab4: tests/cross_method_agreement.rs

tests/cross_method_agreement.rs:
