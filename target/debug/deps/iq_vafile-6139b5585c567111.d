/root/repo/target/debug/deps/iq_vafile-6139b5585c567111.d: crates/vafile/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libiq_vafile-6139b5585c567111.rmeta: crates/vafile/src/lib.rs Cargo.toml

crates/vafile/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
