/root/repo/target/debug/deps/all_figures-664c6b38e868992f.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-664c6b38e868992f: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
