/root/repo/target/debug/deps/dynamic_maintenance-be1a470f8d77737a.d: tests/dynamic_maintenance.rs Cargo.toml

/root/repo/target/debug/deps/libdynamic_maintenance-be1a470f8d77737a.rmeta: tests/dynamic_maintenance.rs Cargo.toml

tests/dynamic_maintenance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
