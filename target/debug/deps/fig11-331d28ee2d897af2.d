/root/repo/target/debug/deps/fig11-331d28ee2d897af2.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-331d28ee2d897af2: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
