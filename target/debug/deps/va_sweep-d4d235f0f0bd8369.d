/root/repo/target/debug/deps/va_sweep-d4d235f0f0bd8369.d: crates/bench/src/bin/va_sweep.rs

/root/repo/target/debug/deps/va_sweep-d4d235f0f0bd8369: crates/bench/src/bin/va_sweep.rs

crates/bench/src/bin/va_sweep.rs:
