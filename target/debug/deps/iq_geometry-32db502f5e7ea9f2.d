/root/repo/target/debug/deps/iq_geometry-32db502f5e7ea9f2.d: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs Cargo.toml

/root/repo/target/debug/deps/libiq_geometry-32db502f5e7ea9f2.rmeta: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs Cargo.toml

crates/geometry/src/lib.rs:
crates/geometry/src/mbr.rs:
crates/geometry/src/metric.rs:
crates/geometry/src/partition.rs:
crates/geometry/src/point.rs:
crates/geometry/src/volume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
