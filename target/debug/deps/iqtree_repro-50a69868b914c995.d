/root/repo/target/debug/deps/iqtree_repro-50a69868b914c995.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libiqtree_repro-50a69868b914c995.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
