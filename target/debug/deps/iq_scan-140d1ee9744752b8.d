/root/repo/target/debug/deps/iq_scan-140d1ee9744752b8.d: crates/scan/src/lib.rs

/root/repo/target/debug/deps/iq_scan-140d1ee9744752b8: crates/scan/src/lib.rs

crates/scan/src/lib.rs:
