/root/repo/target/debug/deps/properties-999add2352e09a7a.d: crates/geometry/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-999add2352e09a7a.rmeta: crates/geometry/tests/properties.rs Cargo.toml

crates/geometry/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
