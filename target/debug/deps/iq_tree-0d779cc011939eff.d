/root/repo/target/debug/deps/iq_tree-0d779cc011939eff.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

/root/repo/target/debug/deps/libiq_tree-0d779cc011939eff.rlib: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

/root/repo/target/debug/deps/libiq_tree-0d779cc011939eff.rmeta: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/maintain.rs:
crates/core/src/persist.rs:
crates/core/src/search.rs:
crates/core/src/update.rs:
