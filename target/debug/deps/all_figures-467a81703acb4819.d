/root/repo/target/debug/deps/all_figures-467a81703acb4819.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-467a81703acb4819: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
