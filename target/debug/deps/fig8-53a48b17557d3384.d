/root/repo/target/debug/deps/fig8-53a48b17557d3384.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-53a48b17557d3384: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
