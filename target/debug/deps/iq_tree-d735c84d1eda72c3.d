/root/repo/target/debug/deps/iq_tree-d735c84d1eda72c3.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs Cargo.toml

/root/repo/target/debug/deps/libiq_tree-d735c84d1eda72c3.rmeta: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/maintain.rs crates/core/src/persist.rs crates/core/src/search.rs crates/core/src/update.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/maintain.rs:
crates/core/src/persist.rs:
crates/core/src/search.rs:
crates/core/src/update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
