/root/repo/target/debug/deps/iq_bench-e3dfe8b3afaaa7e6.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/iq_bench-e3dfe8b3afaaa7e6: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
