/root/repo/target/debug/deps/iq-0bba758e5b6661f2.d: src/bin/iq.rs

/root/repo/target/debug/deps/iq-0bba758e5b6661f2: src/bin/iq.rs

src/bin/iq.rs:
