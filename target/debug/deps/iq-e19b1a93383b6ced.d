/root/repo/target/debug/deps/iq-e19b1a93383b6ced.d: src/bin/iq.rs

/root/repo/target/debug/deps/iq-e19b1a93383b6ced: src/bin/iq.rs

src/bin/iq.rs:
