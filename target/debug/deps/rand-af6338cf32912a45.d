/root/repo/target/debug/deps/rand-af6338cf32912a45.d: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

/root/repo/target/debug/deps/rand-af6338cf32912a45: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

compat/rand/src/lib.rs:
compat/rand/src/distributions.rs:
compat/rand/src/rngs.rs:
compat/rand/src/seq.rs:
