/root/repo/target/debug/deps/dynamic_maintenance-1248db9f68d34a65.d: tests/dynamic_maintenance.rs

/root/repo/target/debug/deps/dynamic_maintenance-1248db9f68d34a65: tests/dynamic_maintenance.rs

tests/dynamic_maintenance.rs:
