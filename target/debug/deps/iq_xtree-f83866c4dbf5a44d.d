/root/repo/target/debug/deps/iq_xtree-f83866c4dbf5a44d.d: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs

/root/repo/target/debug/deps/iq_xtree-f83866c4dbf5a44d: crates/xtree/src/lib.rs crates/xtree/src/node.rs crates/xtree/src/split.rs

crates/xtree/src/lib.rs:
crates/xtree/src/node.rs:
crates/xtree/src/split.rs:
