/root/repo/target/debug/deps/cross_method_agreement-4e687837ef082f4d.d: tests/cross_method_agreement.rs

/root/repo/target/debug/deps/cross_method_agreement-4e687837ef082f4d: tests/cross_method_agreement.rs

tests/cross_method_agreement.rs:
