/root/repo/target/debug/deps/build_time-a0e1041c4d7b428c.d: crates/bench/src/bin/build_time.rs

/root/repo/target/debug/deps/build_time-a0e1041c4d7b428c: crates/bench/src/bin/build_time.rs

crates/bench/src/bin/build_time.rs:
