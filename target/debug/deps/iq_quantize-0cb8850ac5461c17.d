/root/repo/target/debug/deps/iq_quantize-0cb8850ac5461c17.d: crates/quantize/src/lib.rs crates/quantize/src/bits.rs crates/quantize/src/grid.rs crates/quantize/src/page.rs Cargo.toml

/root/repo/target/debug/deps/libiq_quantize-0cb8850ac5461c17.rmeta: crates/quantize/src/lib.rs crates/quantize/src/bits.rs crates/quantize/src/grid.rs crates/quantize/src/page.rs Cargo.toml

crates/quantize/src/lib.rs:
crates/quantize/src/bits.rs:
crates/quantize/src/grid.rs:
crates/quantize/src/page.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
