/root/repo/target/debug/deps/rand-14c49f8b38bb4d72.d: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs Cargo.toml

/root/repo/target/debug/deps/librand-14c49f8b38bb4d72.rmeta: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs Cargo.toml

compat/rand/src/lib.rs:
compat/rand/src/distributions.rs:
compat/rand/src/rngs.rs:
compat/rand/src/seq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
