/root/repo/target/debug/deps/iq-35c6a9c1932c96f0.d: src/bin/iq.rs

/root/repo/target/debug/deps/iq-35c6a9c1932c96f0: src/bin/iq.rs

src/bin/iq.rs:
