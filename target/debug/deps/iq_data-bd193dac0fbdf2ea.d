/root/repo/target/debug/deps/iq_data-bd193dac0fbdf2ea.d: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libiq_data-bd193dac0fbdf2ea.rmeta: crates/data/src/lib.rs crates/data/src/fractal.rs crates/data/src/generate.rs crates/data/src/io.rs crates/data/src/workload.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/fractal.rs:
crates/data/src/generate.rs:
crates/data/src/io.rs:
crates/data/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
