/root/repo/target/debug/deps/iq-ac2edc9ee65a25e0.d: src/bin/iq.rs

/root/repo/target/debug/deps/iq-ac2edc9ee65a25e0: src/bin/iq.rs

src/bin/iq.rs:
