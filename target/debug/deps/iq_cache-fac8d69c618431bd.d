/root/repo/target/debug/deps/iq_cache-fac8d69c618431bd.d: crates/cache/src/lib.rs

/root/repo/target/debug/deps/iq_cache-fac8d69c618431bd: crates/cache/src/lib.rs

crates/cache/src/lib.rs:
