/root/repo/target/debug/deps/iq_quantize-f3043ab22ea724cb.d: crates/quantize/src/lib.rs crates/quantize/src/bits.rs crates/quantize/src/grid.rs crates/quantize/src/page.rs

/root/repo/target/debug/deps/iq_quantize-f3043ab22ea724cb: crates/quantize/src/lib.rs crates/quantize/src/bits.rs crates/quantize/src/grid.rs crates/quantize/src/page.rs

crates/quantize/src/lib.rs:
crates/quantize/src/bits.rs:
crates/quantize/src/grid.rs:
crates/quantize/src/page.rs:
