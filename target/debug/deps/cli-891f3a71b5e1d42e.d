/root/repo/target/debug/deps/cli-891f3a71b5e1d42e.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-891f3a71b5e1d42e.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_iq=placeholder:iq
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
