/root/repo/target/debug/deps/properties-360ba5a3b0d128af.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-360ba5a3b0d128af: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
