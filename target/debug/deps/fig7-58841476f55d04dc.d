/root/repo/target/debug/deps/fig7-58841476f55d04dc.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-58841476f55d04dc: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
