/root/repo/target/debug/deps/dynamic_maintenance-90959baa6d95bc3c.d: tests/dynamic_maintenance.rs

/root/repo/target/debug/deps/dynamic_maintenance-90959baa6d95bc3c: tests/dynamic_maintenance.rs

tests/dynamic_maintenance.rs:
