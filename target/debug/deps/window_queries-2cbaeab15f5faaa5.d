/root/repo/target/debug/deps/window_queries-2cbaeab15f5faaa5.d: tests/window_queries.rs

/root/repo/target/debug/deps/window_queries-2cbaeab15f5faaa5: tests/window_queries.rs

tests/window_queries.rs:
