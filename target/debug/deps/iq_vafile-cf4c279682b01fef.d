/root/repo/target/debug/deps/iq_vafile-cf4c279682b01fef.d: crates/vafile/src/lib.rs

/root/repo/target/debug/deps/iq_vafile-cf4c279682b01fef: crates/vafile/src/lib.rs

crates/vafile/src/lib.rs:
