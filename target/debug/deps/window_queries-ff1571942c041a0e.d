/root/repo/target/debug/deps/window_queries-ff1571942c041a0e.d: tests/window_queries.rs

/root/repo/target/debug/deps/window_queries-ff1571942c041a0e: tests/window_queries.rs

tests/window_queries.rs:
