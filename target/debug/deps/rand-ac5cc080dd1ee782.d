/root/repo/target/debug/deps/rand-ac5cc080dd1ee782.d: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

/root/repo/target/debug/deps/librand-ac5cc080dd1ee782.rlib: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

/root/repo/target/debug/deps/librand-ac5cc080dd1ee782.rmeta: compat/rand/src/lib.rs compat/rand/src/distributions.rs compat/rand/src/rngs.rs compat/rand/src/seq.rs

compat/rand/src/lib.rs:
compat/rand/src/distributions.rs:
compat/rand/src/rngs.rs:
compat/rand/src/seq.rs:
