/root/repo/target/debug/deps/file_backed-e2f20a4aaa2603dc.d: tests/file_backed.rs

/root/repo/target/debug/deps/file_backed-e2f20a4aaa2603dc: tests/file_backed.rs

tests/file_backed.rs:
