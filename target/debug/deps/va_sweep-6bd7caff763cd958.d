/root/repo/target/debug/deps/va_sweep-6bd7caff763cd958.d: crates/bench/src/bin/va_sweep.rs

/root/repo/target/debug/deps/va_sweep-6bd7caff763cd958: crates/bench/src/bin/va_sweep.rs

crates/bench/src/bin/va_sweep.rs:
