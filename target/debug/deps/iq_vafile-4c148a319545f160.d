/root/repo/target/debug/deps/iq_vafile-4c148a319545f160.d: crates/vafile/src/lib.rs

/root/repo/target/debug/deps/libiq_vafile-4c148a319545f160.rlib: crates/vafile/src/lib.rs

/root/repo/target/debug/deps/libiq_vafile-4c148a319545f160.rmeta: crates/vafile/src/lib.rs

crates/vafile/src/lib.rs:
