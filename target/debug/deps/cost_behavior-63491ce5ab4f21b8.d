/root/repo/target/debug/deps/cost_behavior-63491ce5ab4f21b8.d: tests/cost_behavior.rs

/root/repo/target/debug/deps/cost_behavior-63491ce5ab4f21b8: tests/cost_behavior.rs

tests/cost_behavior.rs:
