/root/repo/target/debug/deps/iq_cost-7150af9f5ed437e3.d: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs Cargo.toml

/root/repo/target/debug/deps/libiq_cost-7150af9f5ed437e3.rmeta: crates/costmodel/src/lib.rs crates/costmodel/src/access_prob.rs crates/costmodel/src/directory.rs crates/costmodel/src/refine.rs Cargo.toml

crates/costmodel/src/lib.rs:
crates/costmodel/src/access_prob.rs:
crates/costmodel/src/directory.rs:
crates/costmodel/src/refine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
