/root/repo/target/debug/deps/iq-63ef16b8f30e207c.d: src/bin/iq.rs Cargo.toml

/root/repo/target/debug/deps/libiq-63ef16b8f30e207c.rmeta: src/bin/iq.rs Cargo.toml

src/bin/iq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
