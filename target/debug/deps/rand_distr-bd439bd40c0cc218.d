/root/repo/target/debug/deps/rand_distr-bd439bd40c0cc218.d: compat/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-bd439bd40c0cc218.rlib: compat/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-bd439bd40c0cc218.rmeta: compat/rand_distr/src/lib.rs

compat/rand_distr/src/lib.rs:
