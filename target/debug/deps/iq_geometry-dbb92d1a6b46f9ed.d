/root/repo/target/debug/deps/iq_geometry-dbb92d1a6b46f9ed.d: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs Cargo.toml

/root/repo/target/debug/deps/libiq_geometry-dbb92d1a6b46f9ed.rmeta: crates/geometry/src/lib.rs crates/geometry/src/mbr.rs crates/geometry/src/metric.rs crates/geometry/src/partition.rs crates/geometry/src/point.rs crates/geometry/src/volume.rs Cargo.toml

crates/geometry/src/lib.rs:
crates/geometry/src/mbr.rs:
crates/geometry/src/metric.rs:
crates/geometry/src/partition.rs:
crates/geometry/src/point.rs:
crates/geometry/src/volume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
