/root/repo/target/debug/deps/window_queries-704534bb24746868.d: tests/window_queries.rs

/root/repo/target/debug/deps/window_queries-704534bb24746868: tests/window_queries.rs

tests/window_queries.rs:
