/root/repo/target/debug/deps/iq-b2df92f553865b40.d: src/bin/iq.rs

/root/repo/target/debug/deps/iq-b2df92f553865b40: src/bin/iq.rs

src/bin/iq.rs:
