/root/repo/target/debug/deps/iq_vafile-ef346221f8a69005.d: crates/vafile/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libiq_vafile-ef346221f8a69005.rmeta: crates/vafile/src/lib.rs Cargo.toml

crates/vafile/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
