/root/repo/target/debug/deps/fig1-b2c28e4afea709a9.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-b2c28e4afea709a9: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
