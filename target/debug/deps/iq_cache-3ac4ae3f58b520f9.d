/root/repo/target/debug/deps/iq_cache-3ac4ae3f58b520f9.d: crates/cache/src/lib.rs

/root/repo/target/debug/deps/libiq_cache-3ac4ae3f58b520f9.rlib: crates/cache/src/lib.rs

/root/repo/target/debug/deps/libiq_cache-3ac4ae3f58b520f9.rmeta: crates/cache/src/lib.rs

crates/cache/src/lib.rs:
