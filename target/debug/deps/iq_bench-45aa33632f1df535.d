/root/repo/target/debug/deps/iq_bench-45aa33632f1df535.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libiq_bench-45aa33632f1df535.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libiq_bench-45aa33632f1df535.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
