/root/repo/target/debug/deps/io_profile-5bd4c48f250d544b.d: crates/bench/src/bin/io_profile.rs

/root/repo/target/debug/deps/io_profile-5bd4c48f250d544b: crates/bench/src/bin/io_profile.rs

crates/bench/src/bin/io_profile.rs:
