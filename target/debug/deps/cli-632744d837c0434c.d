/root/repo/target/debug/deps/cli-632744d837c0434c.d: tests/cli.rs

/root/repo/target/debug/deps/cli-632744d837c0434c: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_iq=/root/repo/target/debug/iq
