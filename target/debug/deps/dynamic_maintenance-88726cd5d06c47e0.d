/root/repo/target/debug/deps/dynamic_maintenance-88726cd5d06c47e0.d: tests/dynamic_maintenance.rs

/root/repo/target/debug/deps/dynamic_maintenance-88726cd5d06c47e0: tests/dynamic_maintenance.rs

tests/dynamic_maintenance.rs:
