/root/repo/target/debug/deps/file_backed-e89d9c728c211eca.d: tests/file_backed.rs Cargo.toml

/root/repo/target/debug/deps/libfile_backed-e89d9c728c211eca.rmeta: tests/file_backed.rs Cargo.toml

tests/file_backed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
