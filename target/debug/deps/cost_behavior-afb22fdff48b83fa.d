/root/repo/target/debug/deps/cost_behavior-afb22fdff48b83fa.d: tests/cost_behavior.rs

/root/repo/target/debug/deps/cost_behavior-afb22fdff48b83fa: tests/cost_behavior.rs

tests/cost_behavior.rs:
