//! The cost model is parameterized by the hardware, not just by the data:
//! index the same points for three devices with very different
//! seek/transfer ratios and watch the *access strategy* adapt — on a
//! seek-bound disk the scheduler coalesces almost everything into sweeps,
//! on a transfer-bound device it happily seeks. (The chosen page structure
//! itself is robust across realistic disks, because the block-capacity
//! ladder quantizes the options coarsely — also visible here.)
//!
//! Run with: `cargo run --release --example disk_tuning`

use iqtree_repro::data::{self, Workload};
use iqtree_repro::geometry::Metric;
use iqtree_repro::storage::{CpuModel, DiskModel, MemDevice, SimClock};
use iqtree_repro::tree::{IqTree, IqTreeOptions};

fn main() {
    let w = Workload::generate(60_000, 20, |n| data::uniform(12, n, 17));

    // Three devices with very different seek/transfer ratios (the
    // over-read horizon v = t_seek/t_xfer is what the model feeds on).
    let disks = [
        (
            "seek-bound disk (40ms seek, 0.4ms/blk, v=100)",
            DiskModel {
                t_seek: 0.040,
                t_xfer: 0.0004,
                block_size: 8192,
            },
        ),
        (
            "late-90s disk (10ms seek, 1ms/blk, v=10)",
            DiskModel::default(),
        ),
        (
            "transfer-bound device (0.2ms seek, 1ms/blk, v=0.2)",
            DiskModel {
                t_seek: 0.0002,
                t_xfer: 0.001,
                block_size: 8192,
            },
        ),
    ];

    println!("same 60k 12-d uniform points, three disks:\n");
    for (name, disk) in disks {
        let mut clock = SimClock::new(disk, CpuModel::default());
        let tree = IqTree::build(
            &w.db,
            Metric::Euclidean,
            IqTreeOptions::default(),
            || Box::new(MemDevice::new(disk.block_size)),
            &mut clock,
        );
        let mut total = 0.0;
        let mut seeks = 0u64;
        for q in w.queries.iter() {
            clock.reset();
            tree.nearest(&mut clock, q);
            total += clock.total_time();
            seeks += clock.stats().seeks;
        }
        let nq = w.queries.len() as f64;
        println!("{name}");
        println!(
            "  over-read horizon {:>5.0} blocks | chose {:>4} pages at {:?}",
            disk.overread_horizon(),
            tree.num_pages(),
            tree.bits_histogram(),
        );
        println!(
            "  avg NN query: {:>8.2} ms simulated, {:.1} seeks\n",
            total / nq * 1e3,
            seeks as f64 / nq,
        );
    }
    println!(
        "the page structure is stable across these devices (the capacity\n\
         ladder offers only a few discrete options), but the time-optimized\n\
         access strategy is not: with expensive seeks it reads a handful of\n\
         long sweeps (~3 seeks/query), with near-free seeks it jumps\n\
         directly to the pages it wants (~13 seeks/query) - Section 2's\n\
         trade-off re-balanced per device."
    );
}
