//! Content-based image retrieval over color histograms — the COLOR
//! workload that motivates the paper's evaluation (Section 4).
//!
//! Builds an IQ-tree and a VA-file over 16-bin color histograms and
//! retrieves the 10 most similar "images" for a query histogram,
//! comparing simulated query cost and verifying both return identical
//! results.
//!
//! Run with: `cargo run --release --example image_search`

use iqtree_repro::data::{self, Workload};
use iqtree_repro::geometry::Metric;
use iqtree_repro::storage::{MemDevice, SimClock};
use iqtree_repro::tree::{IqTree, IqTreeOptions};
use iqtree_repro::vafile::VaFile;

const DIM: usize = 16;
const N: usize = 80_000;
const K: usize = 10;

fn main() {
    let w = Workload::generate(N, 5, |n| data::color_like(DIM, n, 7));
    let df = data::correlation_dimension_auto(&w.db);
    println!("indexed {N} color histograms ({DIM} bins), fractal dimension ~ {df:.2}");

    let mut clock = SimClock::default();
    let opts = IqTreeOptions {
        fractal_dim: Some(df),
        ..Default::default()
    };
    let tree = IqTree::build(
        &w.db,
        Metric::Euclidean,
        opts,
        || Box::new(MemDevice::new(8192)),
        &mut clock,
    );
    let va = VaFile::build(
        &w.db,
        Metric::Euclidean,
        5,
        Box::new(MemDevice::new(8192)),
        Box::new(MemDevice::new(8192)),
        &mut clock,
    );

    for (qi, q) in w.queries.iter().enumerate() {
        clock.reset();
        let iq_hits = tree.knn(&mut clock, q, K);
        let iq_time = clock.total_time();

        clock.reset();
        let va_hits = va.knn(&mut clock, q, K);
        let va_time = clock.total_time();

        assert_eq!(
            iq_hits.iter().map(|h| h.0).collect::<Vec<_>>(),
            va_hits.iter().map(|h| h.0).collect::<Vec<_>>(),
            "both engines must agree on the result set"
        );
        println!(
            "query {qi}: top-{K} similar images {:?}",
            &iq_hits.iter().map(|h| h.0).collect::<Vec<_>>()[..3.min(K)],
        );
        println!(
            "  IQ-tree {:.1} ms vs VA-file {:.1} ms (simulated) -> speedup {:.1}x",
            iq_time * 1e3,
            va_time * 1e3,
            va_time / iq_time,
        );
    }
}
