//! Weather-station analytics — the paper's WEATHER workload: 9 correlated
//! attributes, highly clustered, low fractal dimension. Demonstrates range
//! queries (find all observations similar to a reference measurement) and
//! dynamic maintenance (a day of new observations streaming in).
//!
//! Run with: `cargo run --release --example weather_stations`

use iqtree_repro::data::{self, Workload};
use iqtree_repro::geometry::Metric;
use iqtree_repro::storage::{MemDevice, SimClock};
use iqtree_repro::tree::{IqTree, IqTreeOptions};

const DIM: usize = 9;
const N: usize = 120_000;

fn main() {
    let w = Workload::generate(N, 3, |n| data::weather_like(DIM, n, 5));
    let df = data::correlation_dimension_auto(&w.db);
    println!(
        "indexed {N} weather observations ({DIM} attributes); \
         fractal dimension ~ {df:.2} (deeply below {DIM}: strong correlations)\n"
    );

    let mut clock = SimClock::default();
    let opts = IqTreeOptions {
        fractal_dim: Some(df),
        ..Default::default()
    };
    let mut tree = IqTree::build(
        &w.db,
        Metric::Euclidean,
        opts,
        || Box::new(MemDevice::new(8192)),
        &mut clock,
    );
    println!(
        "IQ-tree: {} pages; the cost model picked resolutions {:?}",
        tree.num_pages(),
        tree.bits_histogram()
    );

    // "Find all observations similar to this reference measurement."
    let reference = w.queries.point(0);
    for radius in [0.02, 0.05, 0.1] {
        clock.reset();
        let hits = tree.range(&mut clock, reference, radius);
        println!(
            "range r={radius:<5}: {:>6} similar observations ({:.1} ms simulated, {} seeks)",
            hits.len(),
            clock.total_time() * 1e3,
            clock.stats().seeks,
        );
    }

    // A day of new observations streams in.
    let fresh = data::weather_like(DIM, 2_000, 99);
    clock.reset();
    for (i, p) in fresh.iter().enumerate() {
        tree.insert(&mut clock, (N + i) as u32, p).unwrap();
    }
    println!(
        "\ninserted {} new observations ({:.0} ms simulated write cost, {} pages now)",
        fresh.len(),
        clock.total_time() * 1e3,
        tree.num_pages(),
    );

    // Queries remain correct.
    clock.reset();
    let (id, d) = tree.nearest(&mut clock, fresh.point(0)).expect("non-empty");
    println!("1-NN of the first new observation: {id} at {d:.5}");
    assert_eq!(
        id as usize, N,
        "the freshly inserted point must be its own NN"
    );
}
