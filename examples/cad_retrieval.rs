//! CAD part retrieval — the paper's CAD workload: 16 Fourier coefficients
//! of object curvature, moderately clustered. On this distribution the
//! X-tree stays strong (Figure 10); the example races all three index
//! structures on the same queries.
//!
//! Run with: `cargo run --release --example cad_retrieval`

use iqtree_repro::data::{self, Workload};
use iqtree_repro::geometry::Metric;
use iqtree_repro::storage::{MemDevice, SimClock};
use iqtree_repro::tree::{IqTree, IqTreeOptions};
use iqtree_repro::vafile::VaFile;
use iqtree_repro::xtree::{XTree, XTreeOptions};

const DIM: usize = 16;
const N: usize = 100_000;

fn dev() -> Box<MemDevice> {
    Box::new(MemDevice::new(8192))
}

fn main() {
    let w = Workload::generate(N, 10, |n| data::cad_like(DIM, n, 11));
    let df = data::correlation_dimension_auto(&w.db);
    println!("indexed {N} CAD parts (Fourier, {DIM} coefficients), fractal dim ~ {df:.2}\n");

    let mut clock = SimClock::default();
    let opts = IqTreeOptions {
        fractal_dim: Some(df),
        ..Default::default()
    };
    let iq = IqTree::build(&w.db, Metric::Euclidean, opts, || dev(), &mut clock);
    let xt = XTree::build(
        &w.db,
        Metric::Euclidean,
        XTreeOptions::default(),
        dev(),
        dev(),
        &mut clock,
    );
    let va = VaFile::build(&w.db, Metric::Euclidean, 5, dev(), dev(), &mut clock);

    println!(
        "IQ-tree: {} pages, bit resolutions {:?}",
        iq.num_pages(),
        iq.bits_histogram()
    );
    println!(
        "X-tree:  {} data pages, height {}\n",
        xt.num_data_pages(),
        xt.height()
    );

    let (mut t_iq, mut t_xt, mut t_va) = (0.0, 0.0, 0.0);
    for q in w.queries.iter() {
        clock.reset();
        let a = iq.nearest(&mut clock, q).expect("non-empty");
        t_iq += clock.total_time();

        clock.reset();
        let b = xt.nearest(&mut clock, q).expect("non-empty");
        t_xt += clock.total_time();

        clock.reset();
        let c = va.nearest(&mut clock, q).expect("non-empty");
        t_va += clock.total_time();

        assert!(
            (a.1 - b.1).abs() < 1e-6 && (b.1 - c.1).abs() < 1e-6,
            "engines disagree"
        );
    }
    let nq = w.queries.len() as f64;
    println!("average simulated NN query time over {nq} queries:");
    println!("  IQ-tree  {:.1} ms", t_iq / nq * 1e3);
    println!("  X-tree   {:.1} ms", t_xt / nq * 1e3);
    println!("  VA-file  {:.1} ms", t_va / nq * 1e3);
    println!(
        "\nIQ-tree speedup: {:.1}x vs X-tree, {:.1}x vs VA-file",
        t_xt / t_iq,
        t_va / t_iq
    );
}
