//! Quickstart: build an IQ-tree, run nearest-neighbor / k-NN / range
//! queries, and inspect what Independent Quantization chose.
//!
//! Run with: `cargo run --release --example quickstart`

use iqtree_repro::data::{self, Workload};
use iqtree_repro::geometry::Metric;
use iqtree_repro::storage::{MemDevice, SimClock};
use iqtree_repro::tree::{IqTree, IqTreeOptions};

fn main() {
    // 50k uniform points in 12 dimensions, 10 held out as queries.
    let w = Workload::generate(50_000, 10, |n| data::uniform(12, n, 42));

    // Build. The clock accumulates simulated disk + CPU time; build cost is
    // tracked separately from query cost by resetting it.
    let mut clock = SimClock::default();
    let mut tree = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || Box::new(MemDevice::new(8192)),
        &mut clock,
    );
    println!(
        "built IQ-tree over {} points: {} quantized pages, resolutions {:?}",
        tree.len(),
        tree.num_pages(),
        tree.bits_histogram(),
    );

    // Nearest neighbor.
    clock.reset();
    let q = w.queries.point(0);
    let (id, dist) = tree.nearest(&mut clock, q).expect("non-empty tree");
    println!(
        "1-NN of query 0: point {id} at distance {dist:.4} \
         (simulated {:.1} ms, {} seeks, {} blocks)",
        clock.total_time() * 1e3,
        clock.stats().seeks,
        clock.stats().blocks_read,
    );

    // k-NN.
    clock.reset();
    let knn = tree.knn(&mut clock, q, 5);
    println!(
        "5-NN ids: {:?}",
        knn.iter().map(|&(id, _)| id).collect::<Vec<_>>()
    );

    // Range query.
    clock.reset();
    let hits = tree.range(&mut clock, q, dist * 2.0);
    println!(
        "range({:.4}) -> {} points (simulated {:.1} ms)",
        dist * 2.0,
        hits.len(),
        clock.total_time() * 1e3,
    );

    // Dynamic insert.
    clock.reset();
    let new_point = vec![0.5f32; 12];
    tree.insert(&mut clock, 999_999, &new_point).unwrap();
    let (nid, nd) = tree.nearest(&mut clock, &new_point).expect("non-empty");
    println!("after insert: 1-NN of the new point is {nid} at {nd:.4}");
}
