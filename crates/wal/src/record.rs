//! Typed WAL records and their byte encodings.
//!
//! Every mutation the IQ-tree performs is described by one or more
//! [`WalRecord`]s. Records fall into three groups:
//!
//! * **Transaction headers** — [`WalRecord::Insert`], [`WalRecord::Delete`]
//!   and [`WalRecord::Checkpoint`] open a transaction and describe the
//!   logical operation, so a recovery report (and `iq recover --dry-run`)
//!   can say *what* is being replayed, not just which bytes move.
//! * **Physical redo images** — [`WalRecord::PageWrite`],
//!   [`WalRecord::PageAppend`] and [`WalRecord::TruncateLevel`] carry the
//!   exact bytes (or length) a level file must end up with. Replay applies
//!   them positionally, which makes it idempotent: applying a committed
//!   transaction twice produces the same files as applying it once.
//! * **Semantic markers** — [`WalRecord::Requantize`] and
//!   [`WalRecord::Split`] record *why* pages changed (a page was re-encoded
//!   at a new grid resolution, or split in two). They carry no redo bytes;
//!   they exist for diagnostics and for asserting in tests that recovery
//!   preserved the tree's structural history.
//!
//! A transaction is a contiguous run of frames terminated by
//! [`WalRecord::Commit`]; the commit frame is always written last and the
//! log is synced before any base file is touched (see `iq_wal::Wal`).
//!
//! Encodings are little-endian and self-delimiting given the payload
//! length from the frame header. Decoding never panics: malformed payloads
//! return [`IqError::Decode`].

use iq_storage::{IqError, IqResult};

/// Which of the three level files a physical redo record targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Level {
    /// The flat directory file (superblock + entry blocks).
    Dir = 0,
    /// The quantized page file (one block per page).
    Quant = 1,
    /// The exact-representation file (variable-size regions).
    Exact = 2,
}

impl Level {
    /// All levels, in file order.
    pub const ALL: [Level; 3] = [Level::Dir, Level::Quant, Level::Exact];

    fn from_u8(v: u8) -> IqResult<Level> {
        match v {
            0 => Ok(Level::Dir),
            1 => Ok(Level::Quant),
            2 => Ok(Level::Exact),
            other => Err(IqError::Decode {
                detail: format!("wal record names unknown level {other}"),
            }),
        }
    }

    /// Short human-readable name (`"dir"`, `"quant"`, `"exact"`).
    pub fn name(self) -> &'static str {
        match self {
            Level::Dir => "dir",
            Level::Quant => "quant",
            Level::Exact => "exact",
        }
    }
}

/// One WAL record. See the module docs for the three record groups.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// Transaction header: `id` is being inserted at `point`.
    Insert {
        /// Caller-assigned point id.
        id: u64,
        /// The point's coordinates.
        point: Vec<f64>,
    },
    /// Transaction header: `id` (at `point`) is being deleted.
    Delete {
        /// Caller-assigned point id.
        id: u64,
        /// The point's coordinates (so a dry-run report is self-contained).
        point: Vec<f64>,
    },
    /// Redo image: `bytes` replace the blocks starting at `block` of
    /// `level` (byte length is a whole number of logical blocks).
    PageWrite {
        /// Target level file.
        level: Level,
        /// First logical block of the write.
        block: u64,
        /// The after-image.
        bytes: Vec<u8>,
    },
    /// Redo image: `bytes` are appended such that they start at logical
    /// block `block` (which equals the level's length at log time; replay
    /// overwrites instead if the file already grew past it).
    PageAppend {
        /// Target level file.
        level: Level,
        /// Logical block where the appended bytes begin.
        block: u64,
        /// The appended image.
        bytes: Vec<u8>,
    },
    /// Redo: `level` is truncated to `nblocks` logical blocks (checkpoint
    /// compaction shrinks the exact file).
    TruncateLevel {
        /// Target level file.
        level: Level,
        /// New length in logical blocks.
        nblocks: u64,
    },
    /// Semantic marker: page `page` was re-encoded at `g` bits per
    /// dimension.
    Requantize {
        /// Page index.
        page: u64,
        /// New grid resolution (bits per dimension).
        g: u32,
    },
    /// Semantic marker: page `page` overflowed and split; the upper half
    /// now lives in `new_page`.
    Split {
        /// The page that split.
        page: u64,
        /// The newly created page.
        new_page: u64,
    },
    /// Transaction trailer: everything since the previous commit (or log
    /// start) belongs to transaction `txn` and is now atomic.
    Commit {
        /// Monotonically increasing transaction number.
        txn: u64,
    },
    /// Transaction header: a checkpoint folding the log into the base
    /// files, bumping the superblock generation to `generation`.
    Checkpoint {
        /// Generation the superblock carries after this checkpoint.
        generation: u64,
    },
}

/// Frame kind tags. Kind 0 is reserved so an all-zero torn frame never
/// decodes as a valid record.
const KIND_INSERT: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_PAGE_WRITE: u8 = 3;
const KIND_PAGE_APPEND: u8 = 4;
const KIND_TRUNCATE: u8 = 5;
const KIND_REQUANTIZE: u8 = 6;
const KIND_SPLIT: u8 = 7;
const KIND_COMMIT: u8 = 8;
const KIND_CHECKPOINT: u8 = 9;

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> IqResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(IqError::Decode {
                detail: format!(
                    "wal record payload truncated: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len() - self.pos
                ),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> IqResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> IqResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> IqResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn point(&mut self) -> IqResult<Vec<f64>> {
        let dim = self.u32()? as usize;
        // A frame's length field caps payloads well below this, but guard
        // the allocation against a corrupt dim anyway.
        if dim > self.buf.len() / 8 + 1 {
            return Err(IqError::Decode {
                detail: format!("wal record claims {dim}-dimensional point in shorter payload"),
            });
        }
        let mut p = Vec::with_capacity(dim);
        for _ in 0..dim {
            p.push(f64::from_le_bytes(self.take(8)?.try_into().unwrap()));
        }
        Ok(p)
    }

    fn finish(self) -> IqResult<()> {
        if self.pos != self.buf.len() {
            return Err(IqError::Decode {
                detail: format!(
                    "wal record payload has {} trailing byte(s)",
                    self.buf.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

fn put_point(out: &mut Vec<u8>, point: &[f64]) {
    out.extend_from_slice(&(point.len() as u32).to_le_bytes());
    for c in point {
        out.extend_from_slice(&c.to_le_bytes());
    }
}

impl WalRecord {
    /// The frame kind tag for this record.
    pub fn kind(&self) -> u8 {
        match self {
            WalRecord::Insert { .. } => KIND_INSERT,
            WalRecord::Delete { .. } => KIND_DELETE,
            WalRecord::PageWrite { .. } => KIND_PAGE_WRITE,
            WalRecord::PageAppend { .. } => KIND_PAGE_APPEND,
            WalRecord::TruncateLevel { .. } => KIND_TRUNCATE,
            WalRecord::Requantize { .. } => KIND_REQUANTIZE,
            WalRecord::Split { .. } => KIND_SPLIT,
            WalRecord::Commit { .. } => KIND_COMMIT,
            WalRecord::Checkpoint { .. } => KIND_CHECKPOINT,
        }
    }

    /// Whether this record closes a transaction.
    pub fn is_commit(&self) -> bool {
        matches!(self, WalRecord::Commit { .. })
    }

    /// Short human-readable tag (used by `iq recover --dry-run`).
    pub fn describe(&self) -> String {
        match self {
            WalRecord::Insert { id, point } => format!("insert id={id} dim={}", point.len()),
            WalRecord::Delete { id, .. } => format!("delete id={id}"),
            WalRecord::PageWrite {
                level,
                block,
                bytes,
            } => {
                format!("page-write {}[{block}] {}B", level.name(), bytes.len())
            }
            WalRecord::PageAppend {
                level,
                block,
                bytes,
            } => {
                format!("page-append {}[{block}] {}B", level.name(), bytes.len())
            }
            WalRecord::TruncateLevel { level, nblocks } => {
                format!("truncate {} to {nblocks} blocks", level.name())
            }
            WalRecord::Requantize { page, g } => format!("requantize page={page} g={g}"),
            WalRecord::Split { page, new_page } => format!("split page={page} new={new_page}"),
            WalRecord::Commit { txn } => format!("commit txn={txn}"),
            WalRecord::Checkpoint { generation } => format!("checkpoint gen={generation}"),
        }
    }

    /// Serialises the payload (everything after the frame's kind byte).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Insert { id, point } | WalRecord::Delete { id, point } => {
                out.extend_from_slice(&id.to_le_bytes());
                put_point(&mut out, point);
            }
            WalRecord::PageWrite {
                level,
                block,
                bytes,
            }
            | WalRecord::PageAppend {
                level,
                block,
                bytes,
            } => {
                out.push(*level as u8);
                out.extend_from_slice(&block.to_le_bytes());
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
            WalRecord::TruncateLevel { level, nblocks } => {
                out.push(*level as u8);
                out.extend_from_slice(&nblocks.to_le_bytes());
            }
            WalRecord::Requantize { page, g } => {
                out.extend_from_slice(&page.to_le_bytes());
                out.extend_from_slice(&g.to_le_bytes());
            }
            WalRecord::Split { page, new_page } => {
                out.extend_from_slice(&page.to_le_bytes());
                out.extend_from_slice(&new_page.to_le_bytes());
            }
            WalRecord::Commit { txn } => out.extend_from_slice(&txn.to_le_bytes()),
            WalRecord::Checkpoint { generation } => {
                out.extend_from_slice(&generation.to_le_bytes())
            }
        }
        out
    }

    /// Deserialises a payload previously produced by
    /// [`WalRecord::encode_payload`] for frame kind `kind`.
    pub fn decode_payload(kind: u8, payload: &[u8]) -> IqResult<WalRecord> {
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let rec = match kind {
            KIND_INSERT | KIND_DELETE => {
                let id = r.u64()?;
                let point = r.point()?;
                if kind == KIND_INSERT {
                    WalRecord::Insert { id, point }
                } else {
                    WalRecord::Delete { id, point }
                }
            }
            KIND_PAGE_WRITE | KIND_PAGE_APPEND => {
                let level = Level::from_u8(r.u8()?)?;
                let block = r.u64()?;
                let n = r.u32()? as usize;
                let bytes = r.take(n)?.to_vec();
                if kind == KIND_PAGE_WRITE {
                    WalRecord::PageWrite {
                        level,
                        block,
                        bytes,
                    }
                } else {
                    WalRecord::PageAppend {
                        level,
                        block,
                        bytes,
                    }
                }
            }
            KIND_TRUNCATE => WalRecord::TruncateLevel {
                level: Level::from_u8(r.u8()?)?,
                nblocks: r.u64()?,
            },
            KIND_REQUANTIZE => WalRecord::Requantize {
                page: r.u64()?,
                g: r.u32()?,
            },
            KIND_SPLIT => WalRecord::Split {
                page: r.u64()?,
                new_page: r.u64()?,
            },
            KIND_COMMIT => WalRecord::Commit { txn: r.u64()? },
            KIND_CHECKPOINT => WalRecord::Checkpoint {
                generation: r.u64()?,
            },
            other => {
                return Err(IqError::Decode {
                    detail: format!("unknown wal frame kind {other}"),
                })
            }
        };
        r.finish()?;
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                id: 42,
                point: vec![0.25, -1.5, 3.0],
            },
            WalRecord::Delete {
                id: 7,
                point: vec![],
            },
            WalRecord::PageWrite {
                level: Level::Quant,
                block: 9,
                bytes: vec![1, 2, 3, 4],
            },
            WalRecord::PageAppend {
                level: Level::Exact,
                block: 120,
                bytes: vec![0xAB; 33],
            },
            WalRecord::TruncateLevel {
                level: Level::Exact,
                nblocks: 0,
            },
            WalRecord::Requantize { page: 3, g: 12 },
            WalRecord::Split {
                page: 1,
                new_page: 8,
            },
            WalRecord::Commit { txn: 55 },
            WalRecord::Checkpoint { generation: 2 },
        ]
    }

    #[test]
    fn payloads_roundtrip() {
        for rec in samples() {
            let payload = rec.encode_payload();
            let back = WalRecord::decode_payload(rec.kind(), &payload).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        for rec in samples() {
            let mut payload = rec.encode_payload();
            payload.push(0);
            assert!(
                WalRecord::decode_payload(rec.kind(), &payload).is_err(),
                "{rec:?}"
            );
        }
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        for rec in samples() {
            let payload = rec.encode_payload();
            if payload.is_empty() {
                continue;
            }
            let cut = &payload[..payload.len() - 1];
            assert!(
                WalRecord::decode_payload(rec.kind(), cut).is_err(),
                "{rec:?}"
            );
        }
    }

    #[test]
    fn unknown_kind_and_level_are_rejected() {
        assert!(WalRecord::decode_payload(0, &[]).is_err());
        assert!(WalRecord::decode_payload(200, &[1, 2, 3]).is_err());
        // Level byte 9 inside a truncate record.
        let mut payload = vec![9u8];
        payload.extend_from_slice(&0u64.to_le_bytes());
        assert!(WalRecord::decode_payload(KIND_TRUNCATE, &payload).is_err());
    }
}
