//! WAL frame layout and torn-tail-aware scanning.
//!
//! Each record travels in one self-checking frame:
//!
//! ```text
//! | len: u32 | lsn: u64 | kind: u8 | payload: len bytes | crc: u32 |
//! ```
//!
//! `len` is the payload length, `lsn` the frame's log sequence number
//! (strictly consecutive from 0), and `crc` a CRC32 over everything before
//! it (`len..payload`). A frame is accepted only if it is wholly present,
//! its CRC matches, and its LSN is the expected next one — anything else
//! marks the beginning of the *torn tail*: bytes a crash left behind that
//! recovery discards. Because frames are scanned strictly left-to-right and
//! the commit record is always the last frame of its transaction, a valid
//! prefix of the log is exactly a sequence of whole committed transactions
//! plus possibly one unfinished (uncommitted) transaction, which recovery
//! also discards.

use crate::record::WalRecord;
use iq_storage::crc32;

/// Fixed overhead of a frame around its payload: `len` + `lsn` + `kind`
/// before, CRC32 after.
pub const FRAME_OVERHEAD: usize = 4 + 8 + 1 + 4;

/// Encodes `record` with sequence number `lsn` into a frame, appending to
/// `out`.
pub fn encode_frame(out: &mut Vec<u8>, lsn: u64, record: &WalRecord) {
    let payload = record.encode_payload();
    let start = out.len();
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&lsn.to_le_bytes());
    out.push(record.kind());
    out.extend_from_slice(&payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// A frame successfully decoded during a scan.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// The frame's log sequence number.
    pub lsn: u64,
    /// Byte offset of the frame's first byte in the log.
    pub offset: u64,
    /// The decoded record.
    pub record: WalRecord,
}

/// One committed transaction recovered from the log.
#[derive(Clone, Debug, PartialEq)]
pub struct CommittedTxn {
    /// The transaction number from its commit frame.
    pub txn: u64,
    /// The transaction's records, in log order, excluding the commit frame.
    pub records: Vec<WalRecord>,
}

/// The result of scanning a log image.
#[derive(Clone, Debug, Default)]
pub struct WalScan {
    /// Whole committed transactions, in commit order.
    pub txns: Vec<CommittedTxn>,
    /// Frames that follow the last commit (an unfinished transaction).
    /// Recovery discards these, but reports them.
    pub uncommitted: Vec<Frame>,
    /// Byte length of the valid frame prefix (committed + uncommitted
    /// whole frames). The log should be truncated here on recovery.
    pub valid_len: u64,
    /// Byte length of the *committed* prefix — truncating here drops the
    /// unfinished transaction along with the torn tail.
    pub committed_len: u64,
    /// Bytes past `valid_len`: a torn frame or trailing garbage.
    pub torn_bytes: u64,
    /// Why the scan stopped before the end of the log, if it did.
    pub stop_reason: Option<String>,
    /// Total whole frames accepted (committed and uncommitted).
    pub frames: u64,
    /// LSN the next appended frame must carry.
    pub next_lsn: u64,
    /// Transaction number the next commit must carry.
    pub next_txn: u64,
    /// Highest checkpoint generation seen in a committed transaction.
    pub last_checkpoint_generation: Option<u64>,
}

/// Scans a log image, separating whole committed transactions from an
/// unfinished transaction and a torn tail. Never fails: corruption simply
/// shortens the valid prefix.
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut out = WalScan::default();
    let mut pos: usize = 0;
    let mut pending: Vec<Frame> = Vec::new();
    let mut expected_lsn: u64 = 0;

    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break;
        }
        if remaining < FRAME_OVERHEAD {
            out.stop_reason = Some(format!(
                "short frame header at offset {pos}: {remaining} byte(s) left"
            ));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if remaining < FRAME_OVERHEAD + len {
            out.stop_reason = Some(format!(
                "torn frame at offset {pos}: header claims {len}-byte payload, {} byte(s) left",
                remaining - FRAME_OVERHEAD
            ));
            break;
        }
        let body_end = pos + FRAME_OVERHEAD - 4 + len;
        let stored_crc = u32::from_le_bytes(bytes[body_end..body_end + 4].try_into().unwrap());
        let computed = crc32(&bytes[pos..body_end]);
        if stored_crc != computed {
            out.stop_reason = Some(format!(
                "checksum mismatch at offset {pos}: stored {stored_crc:#010x}, computed {computed:#010x}"
            ));
            break;
        }
        let lsn = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        if lsn != expected_lsn {
            out.stop_reason = Some(format!(
                "lsn discontinuity at offset {pos}: found {lsn}, expected {expected_lsn}"
            ));
            break;
        }
        let kind = bytes[pos + 12];
        let record = match WalRecord::decode_payload(kind, &bytes[pos + 13..body_end]) {
            Ok(r) => r,
            Err(e) => {
                out.stop_reason = Some(format!("undecodable frame at offset {pos}: {e}"));
                break;
            }
        };

        out.frames += 1;
        expected_lsn = lsn + 1;
        let frame_end = (body_end + 4) as u64;

        if let WalRecord::Commit { txn } = record {
            out.txns.push(CommittedTxn {
                txn,
                records: pending.drain(..).map(|f| f.record).collect(),
            });
            out.next_txn = txn + 1;
            out.committed_len = frame_end;
            if let Some(g) = out
                .txns
                .last()
                .unwrap()
                .records
                .iter()
                .find_map(|r| match r {
                    WalRecord::Checkpoint { generation } => Some(*generation),
                    _ => None,
                })
            {
                out.last_checkpoint_generation = Some(g);
            }
        } else {
            pending.push(Frame {
                lsn,
                offset: pos as u64,
                record,
            });
        }
        pos = body_end + 4;
    }

    out.valid_len = pos as u64;
    out.torn_bytes = (bytes.len() - pos) as u64;
    out.next_lsn = expected_lsn;
    out.uncommitted = pending;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Level;

    fn txn_bytes(lsn0: u64, txn: u64, recs: &[WalRecord]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut lsn = lsn0;
        for r in recs {
            encode_frame(&mut out, lsn, r);
            lsn += 1;
        }
        encode_frame(&mut out, lsn, &WalRecord::Commit { txn });
        out
    }

    fn sample_txn(lsn0: u64, txn: u64) -> Vec<u8> {
        txn_bytes(
            lsn0,
            txn,
            &[
                WalRecord::Insert {
                    id: txn,
                    point: vec![1.0, 2.0],
                },
                WalRecord::PageWrite {
                    level: Level::Quant,
                    block: txn,
                    bytes: vec![txn as u8; 16],
                },
            ],
        )
    }

    #[test]
    fn scan_recovers_committed_txns() {
        let mut log = sample_txn(0, 0);
        log.extend(sample_txn(3, 1));
        let s = scan(&log);
        assert_eq!(s.txns.len(), 2);
        assert_eq!(s.frames, 6);
        assert_eq!(s.valid_len, log.len() as u64);
        assert_eq!(s.committed_len, log.len() as u64);
        assert_eq!(s.torn_bytes, 0);
        assert_eq!(s.next_lsn, 6);
        assert_eq!(s.next_txn, 2);
        assert!(s.stop_reason.is_none());
        assert_eq!(s.txns[1].txn, 1);
        assert_eq!(s.txns[1].records.len(), 2);
    }

    #[test]
    fn torn_tail_at_every_byte_is_discarded_cleanly() {
        let mut log = sample_txn(0, 0);
        let committed = log.len();
        log.extend(sample_txn(3, 1));
        for cut in committed..log.len() {
            let s = scan(&log[..cut]);
            assert_eq!(s.txns.len(), 1, "cut at {cut}");
            assert_eq!(s.committed_len, committed as u64, "cut at {cut}");
            // Whatever survives past the committed prefix is either whole
            // uncommitted frames or reported torn bytes — never a txn.
            assert_eq!(
                s.valid_len + s.torn_bytes,
                cut as u64,
                "cut at {cut}: accounting must cover every byte"
            );
        }
    }

    #[test]
    fn bit_flip_anywhere_stops_the_scan_at_or_before_the_flip() {
        let mut log = sample_txn(0, 0);
        log.extend(sample_txn(3, 1));
        let clean = scan(&log);
        assert_eq!(clean.txns.len(), 2);
        for i in 0..log.len() {
            let mut bad = log.clone();
            bad[i] ^= 0x40;
            let s = scan(&bad);
            // The flip may land in txn 0 or txn 1; either way nothing at or
            // after the flipped frame is trusted.
            assert!(s.txns.len() < 2 || s.valid_len == log.len() as u64);
            assert!(
                s.valid_len <= log.len() as u64,
                "flip at {i} must not extend the log"
            );
            if s.txns.len() == 2 {
                panic!("flip at byte {i} went undetected");
            }
        }
    }

    #[test]
    fn uncommitted_trailing_txn_is_reported_not_replayed() {
        let mut log = sample_txn(0, 0);
        encode_frame(
            &mut log,
            3,
            &WalRecord::Delete {
                id: 9,
                point: vec![0.0],
            },
        );
        let s = scan(&log);
        assert_eq!(s.txns.len(), 1);
        assert_eq!(s.uncommitted.len(), 1);
        assert_eq!(s.valid_len, log.len() as u64);
        assert!(s.committed_len < s.valid_len);
    }

    #[test]
    fn lsn_gap_is_a_torn_tail() {
        let mut log = sample_txn(0, 0);
        // Next frame skips an lsn.
        encode_frame(&mut log, 5, &WalRecord::Commit { txn: 1 });
        let s = scan(&log);
        assert_eq!(s.txns.len(), 1);
        assert!(s.stop_reason.unwrap().contains("lsn discontinuity"));
    }

    #[test]
    fn checkpoint_generation_is_tracked() {
        let mut log = txn_bytes(0, 0, &[WalRecord::Checkpoint { generation: 4 }]);
        log.extend(sample_txn(2, 1));
        let s = scan(&log);
        assert_eq!(s.last_checkpoint_generation, Some(4));
    }

    #[test]
    fn empty_log_scans_clean() {
        let s = scan(&[]);
        assert_eq!(s.txns.len(), 0);
        assert_eq!(s.valid_len, 0);
        assert_eq!(s.next_lsn, 0);
        assert!(s.stop_reason.is_none());
    }
}
