//! Checksummed write-ahead logging for crash-consistent IQ-tree updates.
//!
//! The paper's IQ-tree is described as a static structure built by a bulk
//! pass; this workspace also supports dynamic inserts and deletes, which
//! mutate three base files (directory, quantized pages, exact regions) in
//! place. A crash between two of those writes would leave the index
//! inconsistent. This crate supplies the durability layer that prevents
//! that:
//!
//! * [`WalRecord`] — typed records: logical transaction headers
//!   (insert/delete/checkpoint), physical redo images
//!   (page-write/page-append/truncate-level) and semantic markers
//!   (requantize/split).
//! * [`encode_frame`] / [`scan`] — the self-checking frame format
//!   (`len | lsn | kind | payload | crc32`) and a scanner that separates
//!   committed transactions from an unfinished transaction and a torn
//!   tail, byte-accurately.
//! * [`Wal`] — the writer enforcing *commit-frame-last, sync-before-apply*;
//!   its [`Wal::open`] recovers a surviving log.
//!
//! The tree itself wires this in (`iq-tree`): every mutation stages its
//! base-file writes in memory, logs them plus a commit frame, syncs, and
//! only then applies the staged writes — so at any crash point the base
//! files hold exactly the state of some committed prefix, and replaying
//! the log reproduces the rest.

pub mod frame;
pub mod log;
pub mod record;

pub use frame::{encode_frame, scan, CommittedTxn, Frame, WalScan, FRAME_OVERHEAD};
pub use log::Wal;
pub use record::{Level, WalRecord};

#[cfg(test)]
mod proptests {
    use crate::frame::{encode_frame, scan};
    use crate::record::{Level, WalRecord};
    use proptest::prelude::*;

    /// One record drawn from a heterogeneous tuple: `sel` picks the
    /// variant, the other fields feed whichever variant was picked (the
    /// compat proptest subset has no `prop_oneof`).
    fn arb_record() -> impl Strategy<Value = WalRecord> {
        (
            0u8..8,
            0u64..u64::MAX,
            proptest::collection::vec(-1e6f64..1e6, 0..6),
            proptest::collection::vec(0u8..=255, 0..64),
            0u8..3,
            0u32..64,
        )
            .prop_map(|(sel, n, point, bytes, lvl, g)| {
                let level = Level::ALL[lvl as usize];
                match sel {
                    0 => WalRecord::Insert { id: n, point },
                    1 => WalRecord::Delete { id: n, point },
                    2 => WalRecord::PageWrite {
                        level,
                        block: n,
                        bytes,
                    },
                    3 => WalRecord::PageAppend {
                        level,
                        block: n,
                        bytes,
                    },
                    4 => WalRecord::TruncateLevel { level, nblocks: n },
                    5 => WalRecord::Requantize { page: n, g },
                    6 => WalRecord::Split {
                        page: n,
                        new_page: n ^ 1,
                    },
                    _ => WalRecord::Checkpoint { generation: n },
                }
            })
    }

    fn log_of(txns: &[Vec<WalRecord>]) -> (Vec<u8>, Vec<u64>) {
        let mut bytes = Vec::new();
        let mut commit_offsets = Vec::new();
        let mut lsn = 0u64;
        for (t, recs) in txns.iter().enumerate() {
            for r in recs {
                encode_frame(&mut bytes, lsn, r);
                lsn += 1;
            }
            encode_frame(&mut bytes, lsn, &WalRecord::Commit { txn: t as u64 });
            lsn += 1;
            commit_offsets.push(bytes.len() as u64);
        }
        (bytes, commit_offsets)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any prefix of a valid log recovers exactly the transactions
        /// whose commit frame lies inside the prefix.
        #[test]
        fn prefix_recovers_exactly_committed_txns(
            txns in proptest::collection::vec(
                proptest::collection::vec(arb_record(), 0..4), 1..4),
            frac in 0.0f64..1.0,
        ) {
            let (bytes, commit_offsets) = log_of(&txns);
            let cut = (bytes.len() as f64 * frac) as usize;
            let s = scan(&bytes[..cut]);
            let expect = commit_offsets.iter().filter(|&&o| o <= cut as u64).count();
            prop_assert_eq!(s.txns.len(), expect);
            for (i, t) in s.txns.iter().enumerate() {
                prop_assert_eq!(&t.records, &txns[i]);
            }
            prop_assert_eq!(s.valid_len + s.torn_bytes, cut as u64);
        }

        /// A single corrupted byte never yields extra or altered
        /// transactions — at worst it truncates the recoverable suffix.
        #[test]
        fn corruption_only_truncates(
            txns in proptest::collection::vec(
                proptest::collection::vec(arb_record(), 0..3), 1..3),
            pos_frac in 0.0f64..1.0,
            mask in 1u8..=255,
        ) {
            let (bytes, _) = log_of(&txns);
            let clean = scan(&bytes);
            let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
            let mut bad = bytes.clone();
            bad[pos] ^= mask;
            let s = scan(&bad);
            prop_assert!(s.txns.len() <= clean.txns.len());
            for (got, want) in s.txns.iter().zip(clean.txns.iter()) {
                prop_assert_eq!(got, want);
            }
        }
    }
}
