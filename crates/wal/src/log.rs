//! The WAL writer and its recovery-time scanner.
//!
//! [`Wal`] owns a [`WalStore`] and enforces the commit protocol:
//!
//! 1. the caller appends a transaction's records ([`Wal::append`] or, in
//!    one batch, [`Wal::commit_txn`]),
//! 2. the commit frame is written **last** ([`Wal::commit`]),
//! 3. the store is synced — only now is the transaction durable,
//! 4. only after the sync may the caller touch the base files.
//!
//! [`Wal::open`] is the recovery entry point: it scans the surviving log,
//! truncates away the torn tail *and* any unfinished transaction, and
//! returns the committed transactions for replay along with the positions
//! the writer must continue from.

use crate::frame::{encode_frame, scan, WalScan};
use crate::record::WalRecord;
use iq_obs::Counter;
use iq_storage::model::SimClock;
use iq_storage::wal::WalStore;
use iq_storage::{IqError, IqResult};

/// A write-ahead log: framed records over an append-only store.
pub struct Wal {
    store: Box<dyn WalStore>,
    next_lsn: u64,
    next_txn: u64,
    open_frames: u64,
    appends: Counter,
    bytes: Counter,
    syncs: Counter,
    commits: Counter,
}

impl Wal {
    fn with_positions(store: Box<dyn WalStore>, next_lsn: u64, next_txn: u64) -> Self {
        let reg = iq_obs::global();
        Wal {
            store,
            next_lsn,
            next_txn,
            open_frames: 0,
            appends: reg.counter("wal_appends_total"),
            bytes: reg.counter("wal_bytes_total"),
            syncs: reg.counter("wal_syncs_total"),
            commits: reg.counter("wal_commits_total"),
        }
    }

    /// Wraps an empty store as a fresh log.
    pub fn create(store: Box<dyn WalStore>) -> Self {
        debug_assert!(
            store.is_empty(),
            "Wal::create expects an empty store; use open"
        );
        Self::with_positions(store, 0, 0)
    }

    /// Recovery entry point: scans `store`, truncates the torn tail and any
    /// unfinished transaction, and returns the writer positioned after the
    /// last committed frame plus the scan (whose `txns` the caller replays).
    pub fn open(mut store: Box<dyn WalStore>, clock: &mut SimClock) -> IqResult<(Self, WalScan)> {
        let image = store.read_all(clock)?;
        let s = scan(&image);
        if s.committed_len < store.len() {
            store.truncate(clock, s.committed_len)?;
        }
        let discarded = image.len() as u64 - s.committed_len;
        iq_obs::global()
            .counter("recovery_discarded_bytes_total")
            .add(discarded);
        // The writer resumes at the lsn after the last *committed* frame:
        // discarded uncommitted frames give their lsns back.
        let committed_frames: u64 = s.txns.iter().map(|t| t.records.len() as u64 + 1).sum();
        Ok((Self::with_positions(store, committed_frames, s.next_txn), s))
    }

    /// Appends one non-commit record. The record is *not durable* until
    /// [`Wal::commit`] returns.
    pub fn append(&mut self, clock: &mut SimClock, record: &WalRecord) -> IqResult<u64> {
        if record.is_commit() {
            return Err(IqError::Decode {
                detail: "commit frames must be written via Wal::commit".into(),
            });
        }
        let mut buf = Vec::new();
        let lsn = self.next_lsn;
        encode_frame(&mut buf, lsn, record);
        self.store.append(clock, &buf)?;
        self.next_lsn += 1;
        self.open_frames += 1;
        self.appends.inc();
        self.bytes.add(buf.len() as u64);
        Ok(lsn)
    }

    /// Closes the open transaction: writes the commit frame last, syncs,
    /// and returns the transaction number. After this returns the
    /// transaction survives any crash.
    pub fn commit(&mut self, clock: &mut SimClock) -> IqResult<u64> {
        let txn = self.next_txn;
        let mut buf = Vec::new();
        encode_frame(&mut buf, self.next_lsn, &WalRecord::Commit { txn });
        self.store.append(clock, &buf)?;
        self.store.sync(clock)?;
        self.next_lsn += 1;
        self.next_txn += 1;
        self.open_frames = 0;
        self.appends.inc();
        self.bytes.add(buf.len() as u64);
        self.syncs.inc();
        self.commits.inc();
        Ok(txn)
    }

    /// Appends a whole transaction — records then commit frame — as a
    /// single store append, then syncs. Fewer store calls than the
    /// append/commit pair, same durability contract.
    pub fn commit_txn(&mut self, clock: &mut SimClock, records: &[WalRecord]) -> IqResult<u64> {
        let txn = self.next_txn;
        let mut buf = Vec::new();
        let mut lsn = self.next_lsn;
        for r in records {
            if r.is_commit() {
                return Err(IqError::Decode {
                    detail: "commit frames must not appear inside a transaction body".into(),
                });
            }
            encode_frame(&mut buf, lsn, r);
            lsn += 1;
        }
        encode_frame(&mut buf, lsn, &WalRecord::Commit { txn });
        self.store.append(clock, &buf)?;
        self.store.sync(clock)?;
        self.next_lsn = lsn + 1;
        self.next_txn += 1;
        self.open_frames = 0;
        self.appends.add(records.len() as u64 + 1);
        self.bytes.add(buf.len() as u64);
        self.syncs.inc();
        self.commits.inc();
        Ok(txn)
    }

    /// Whether records have been appended since the last commit.
    pub fn has_open_txn(&self) -> bool {
        self.open_frames > 0
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        self.store.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// LSN the next frame will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Transaction number the next commit will carry.
    pub fn next_txn(&self) -> u64 {
        self.next_txn
    }

    /// Empties the log after a checkpoint folded it into the base files.
    /// Sequence numbers restart from zero: the superblock generation
    /// disambiguates eras.
    pub fn reset(&mut self, clock: &mut SimClock) -> IqResult<()> {
        self.store.truncate(clock, 0)?;
        self.store.sync(clock)?;
        self.next_lsn = 0;
        self.next_txn = 0;
        self.open_frames = 0;
        self.syncs.inc();
        Ok(())
    }

    /// Read access to the underlying store (tests, verification).
    pub fn store(&self) -> &dyn WalStore {
        self.store.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Level;
    use iq_storage::wal::MemWal;

    fn clock() -> SimClock {
        SimClock::default()
    }

    #[test]
    fn commit_then_reopen_replays_the_txn() {
        let mut c = clock();
        let mut wal = Wal::create(Box::new(MemWal::new()));
        wal.append(
            &mut c,
            &WalRecord::Insert {
                id: 1,
                point: vec![0.5],
            },
        )
        .unwrap();
        wal.append(
            &mut c,
            &WalRecord::PageWrite {
                level: Level::Quant,
                block: 0,
                bytes: vec![7; 8],
            },
        )
        .unwrap();
        assert!(wal.has_open_txn());
        let txn = wal.commit(&mut c).unwrap();
        assert_eq!(txn, 0);
        assert!(!wal.has_open_txn());

        let image = wal.store().read_all(&mut c).unwrap();
        let (wal2, s) = Wal::open(Box::new(MemWal::from_contents(image)), &mut c).unwrap();
        assert_eq!(s.txns.len(), 1);
        assert_eq!(s.txns[0].records.len(), 2);
        assert_eq!(wal2.next_lsn(), 3);
        assert_eq!(wal2.next_txn(), 1);
    }

    #[test]
    fn open_discards_uncommitted_txn_and_reuses_its_lsns() {
        let mut c = clock();
        let mut wal = Wal::create(Box::new(MemWal::new()));
        wal.commit_txn(
            &mut c,
            &[WalRecord::Insert {
                id: 1,
                point: vec![1.0],
            }],
        )
        .unwrap();
        // Unfinished second txn: header only, no commit.
        wal.append(
            &mut c,
            &WalRecord::Delete {
                id: 1,
                point: vec![1.0],
            },
        )
        .unwrap();
        let image = wal.store().read_all(&mut c).unwrap();

        let (mut wal2, s) = Wal::open(Box::new(MemWal::from_contents(image)), &mut c).unwrap();
        assert_eq!(s.txns.len(), 1);
        assert_eq!(s.uncommitted.len(), 1);
        assert_eq!(wal2.next_lsn(), 2, "discarded frame's lsn is reused");
        // The log can continue and still scans clean end-to-end.
        wal2.commit_txn(&mut c, &[WalRecord::Requantize { page: 0, g: 8 }])
            .unwrap();
        let image2 = wal2.store().read_all(&mut c).unwrap();
        let s2 = crate::frame::scan(&image2);
        assert_eq!(s2.txns.len(), 2);
        assert!(s2.stop_reason.is_none());
        assert_eq!(s2.torn_bytes, 0);
    }

    #[test]
    fn open_truncates_a_torn_tail() {
        let mut c = clock();
        let mut wal = Wal::create(Box::new(MemWal::new()));
        wal.commit_txn(
            &mut c,
            &[WalRecord::Split {
                page: 0,
                new_page: 1,
            }],
        )
        .unwrap();
        let committed = wal.len();
        let mut image = wal.store().read_all(&mut c).unwrap();
        // A torn half-frame of garbage.
        image.extend_from_slice(&[0xEE; 7]);
        let (wal2, s) = Wal::open(Box::new(MemWal::from_contents(image)), &mut c).unwrap();
        assert_eq!(s.torn_bytes, 7);
        assert_eq!(wal2.len(), committed);
    }

    #[test]
    fn commit_frames_cannot_be_appended_directly() {
        let mut c = clock();
        let mut wal = Wal::create(Box::new(MemWal::new()));
        assert!(wal.append(&mut c, &WalRecord::Commit { txn: 0 }).is_err());
        assert!(wal
            .commit_txn(&mut c, &[WalRecord::Commit { txn: 0 }])
            .is_err());
    }

    #[test]
    fn reset_empties_and_restarts_numbering() {
        let mut c = clock();
        let mut wal = Wal::create(Box::new(MemWal::new()));
        wal.commit_txn(&mut c, &[WalRecord::Checkpoint { generation: 1 }])
            .unwrap();
        wal.reset(&mut c).unwrap();
        assert!(wal.is_empty());
        assert_eq!(wal.next_lsn(), 0);
        assert_eq!(wal.next_txn(), 0);
        let txn = wal
            .commit_txn(&mut c, &[WalRecord::Requantize { page: 2, g: 4 }])
            .unwrap();
        assert_eq!(txn, 0);
    }

    #[test]
    fn crash_during_commit_append_leaves_prior_txns_intact() {
        let mut c = clock();
        // First, record a committed txn.
        let mut wal = Wal::create(Box::new(MemWal::new()));
        wal.commit_txn(
            &mut c,
            &[WalRecord::Insert {
                id: 5,
                point: vec![2.0, 3.0],
            }],
        )
        .unwrap();
        let committed = wal.len();
        let image = wal.store().read_all(&mut c).unwrap();

        // Re-stage on a store that dies mid-way through the next append.
        let mut store = MemWal::from_contents(image);
        store.kill_at(committed + 10);
        let (mut wal2, _) = Wal::open(Box::new(store), &mut c).unwrap();
        let err = wal2
            .commit_txn(
                &mut c,
                &[WalRecord::Delete {
                    id: 5,
                    point: vec![2.0, 3.0],
                }],
            )
            .unwrap_err();
        assert!(!err.is_transient());

        // What survived on "disk" recovers to exactly the first txn.
        let surviving = wal2.store().read_all(&mut c).unwrap();
        let s = crate::frame::scan(&surviving);
        assert_eq!(s.txns.len(), 1);
        assert_eq!(s.committed_len, committed);
    }
}
