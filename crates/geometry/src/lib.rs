//! Geometric primitives for high-dimensional index structures.
//!
//! This crate provides the building blocks shared by the IQ-tree and its
//! baselines: flat point storage ([`Dataset`]), minimum bounding rectangles
//! ([`Mbr`]), the metrics used by the paper ([`Metric`]: Euclidean, maximum
//! and Manhattan), and the volume computations the cost model is built on —
//! hypersphere volumes, Minkowski sums of boxes and spheres, and
//! box/sphere intersection volumes (equations 5 and 8–12 of the ICDE 2000
//! IQ-tree paper).

pub mod mbr;
pub mod metric;
pub mod partition;
pub mod point;
pub mod volume;

pub use mbr::Mbr;
pub use metric::Metric;
pub use partition::{bulk_partition, split_at_median, Partition};
pub use point::Dataset;
