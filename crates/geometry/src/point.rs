//! Flat, cache-friendly storage for sets of `d`-dimensional points.

/// A set of `d`-dimensional points stored row-major in one contiguous
/// allocation.
///
/// Index structures in this workspace never own boxed per-point vectors;
/// they either reference rows of a `Dataset` or copy rows into page buffers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Dataset {
    dim: usize,
    data: Vec<f32>,
}

impl Dataset {
    /// Creates an empty dataset of the given dimensionality.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty dataset with capacity for `n` points.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim`, or if `dim == 0`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert_eq!(
            data.len() % dim,
            0,
            "buffer length must be a multiple of dim"
        );
        Self { dim, data }
    }

    /// The dimensionality of every point in the set.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows point `i` as a coordinate slice.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutably borrows point `i`.
    #[inline]
    pub fn point_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Appends a point.
    ///
    /// # Panics
    /// Panics if `p.len() != self.dim()`.
    #[inline]
    pub fn push(&mut self, p: &[f32]) {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        self.data.extend_from_slice(p);
    }

    /// Iterates over all points in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Splits off the last `n` points into a separate dataset (useful for
    /// carving a query workload out of a generated set, as the paper does).
    ///
    /// # Panics
    /// Panics if `n > self.len()`.
    pub fn split_off_tail(&mut self, n: usize) -> Dataset {
        assert!(n <= self.len(), "cannot split off more points than stored");
        let at = (self.len() - n) * self.dim;
        let tail = self.data.split_off(at);
        Dataset {
            dim: self.dim,
            data: tail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut ds = Dataset::new(3);
        ds.push(&[1.0, 2.0, 3.0]);
        ds.push(&[4.0, 5.0, 6.0]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.point(1), &[4.0, 5.0, 6.0]);
        assert!(!ds.is_empty());
    }

    #[test]
    fn from_flat_roundtrip() {
        let ds = Dataset::from_flat(2, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(1), &[2.0, 3.0]);
        let rows: Vec<&[f32]> = ds.iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn from_flat_rejects_ragged() {
        let _ = Dataset::from_flat(3, vec![0.0; 4]);
    }

    #[test]
    fn split_off_tail_takes_last_points() {
        let mut ds = Dataset::from_flat(2, vec![0., 0., 1., 1., 2., 2., 3., 3.]);
        let tail = ds.split_off_tail(1);
        assert_eq!(ds.len(), 3);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail.point(0), &[3.0, 3.0]);
    }

    #[test]
    fn point_mut_updates_in_place() {
        let mut ds = Dataset::from_flat(2, vec![0.0; 4]);
        ds.point_mut(1)[0] = 7.0;
        assert_eq!(ds.point(1), &[7.0, 0.0]);
    }
}
