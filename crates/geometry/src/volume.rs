//! High-dimensional volume computations used by the IQ-tree cost model.
//!
//! Implements the paper's equations 5 and 8–12: hypersphere / hypercube
//! volumes, nearest-neighbor radii from point densities, Minkowski sums of a
//! box and a sphere (exact for the maximum metric, the geometric-mean
//! approximation of eq 12 *and* an exact elementary-symmetric-polynomial
//! formula for the Euclidean metric), and box/sphere intersection volumes.

use crate::{Mbr, Metric};

/// `ln Γ(x)` for `x > 0` via the Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 relative error over the range the cost model uses
/// (arguments up to a few hundred).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_1,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// `Γ(x)` for `x > 0`.
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Volume of the `d`-dimensional Euclidean unit ball:
/// `π^{d/2} / Γ(d/2 + 1)` (eq 8 with r = 1).
pub fn unit_ball_volume(d: usize) -> f64 {
    let d = d as f64;
    (0.5 * d * std::f64::consts::PI.ln() - ln_gamma(0.5 * d + 1.0)).exp()
}

/// Volume of the metric ball of radius `r` in `d` dimensions — the paper's
/// `V_query(r)`: eq (8) for the Euclidean metric, eq (9) `(2r)^d` for the
/// maximum metric; for L1 the cross-polytope `(2r)^d / d!`.
pub fn ball_volume(metric: Metric, d: usize, r: f64) -> f64 {
    assert!(r >= 0.0, "radius must be non-negative");
    match metric {
        Metric::Euclidean => unit_ball_volume(d) * r.powi(d as i32),
        Metric::Maximum => (2.0 * r).powi(d as i32),
        Metric::Manhattan => ((d as f64 * (2.0 * r).ln()) - ln_gamma(d as f64 + 1.0)).exp(),
    }
}

/// Inverts [`ball_volume`]: the radius whose ball has volume `v` (eq 7,
/// `r = V_query^{-1}(1/ρ)` with `v = 1/ρ`).
pub fn ball_radius(metric: Metric, d: usize, v: f64) -> f64 {
    assert!(v >= 0.0, "volume must be non-negative");
    if v == 0.0 {
        return 0.0;
    }
    let d_f = d as f64;
    match metric {
        Metric::Euclidean => (v / unit_ball_volume(d)).powf(1.0 / d_f),
        Metric::Maximum => 0.5 * v.powf(1.0 / d_f),
        Metric::Manhattan => 0.5 * ((v.ln() + ln_gamma(d_f + 1.0)) / d_f).exp(),
    }
}

/// Nearest-neighbor radius for a local point density `ρ` (eq 7 / eq 14):
/// the radius whose ball contains an expectation of one point.
pub fn nn_radius(metric: Metric, d: usize, density: f64) -> f64 {
    assert!(density > 0.0, "density must be positive");
    ball_radius(metric, d, 1.0 / density)
}

/// Binomial coefficient `C(n, k)` as an `f64` (exact for the small `n`
/// used here).
pub fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Minkowski sum of a box with side lengths `sides` and an L∞ ball of
/// radius `r`: `Π (s_i + 2r)` — the exact generalization of eq (11),
/// which states it for cell sides `(ub_i - lb_i)/2^g`.
pub fn minkowski_box_ball_max(sides: &[f32], r: f64) -> f64 {
    sides.iter().map(|&s| f64::from(s) + 2.0 * r).product()
}

/// The paper's eq (12): Minkowski sum of a box and a Euclidean ball,
/// approximating the box by a cube with side `a` (the geometric mean of the
/// side lengths):
/// `Σ_{0≤k≤d} C(d,k) · a^{d-k} · (√π r)^k / Γ(k/2 + 1)`.
pub fn minkowski_box_ball_eucl_approx(d: usize, a: f64, r: f64) -> f64 {
    (0..=d)
        .map(|k| {
            binomial(d, k)
                * a.powi((d - k) as i32)
                * (std::f64::consts::PI.sqrt() * r).powi(k as i32)
                / gamma(0.5 * k as f64 + 1.0)
        })
        .sum()
}

/// Exact Minkowski sum of an axis-aligned box and a Euclidean ball via the
/// Steiner formula: `Σ_k e_{d-k}(s) · V_k(r)` where `e_j` is the j-th
/// elementary symmetric polynomial of the side lengths and `V_k(r)` the
/// k-dimensional ball volume. O(d²); reduces to eq (12) when all sides are
/// equal.
pub fn minkowski_box_ball_eucl_exact(sides: &[f32], r: f64) -> f64 {
    let d = sides.len();
    // e[j] = elementary symmetric polynomial of degree j.
    let mut e = vec![0.0f64; d + 1];
    e[0] = 1.0;
    for (idx, &s) in sides.iter().enumerate() {
        let s = f64::from(s);
        for j in (1..=idx + 1).rev() {
            e[j] += e[j - 1] * s;
        }
    }
    (0..=d)
        .map(|k| e[d - k] * unit_ball_volume(k) * r.powi(k as i32))
        .sum()
}

/// Minkowski sum of a box and a metric ball, dispatching per metric.
/// For L1 the ball is treated via its Euclidean-equivalent radius (the cost
/// model is only stated for L2 and L∞; this keeps L1 usable).
pub fn minkowski_box_ball(metric: Metric, sides: &[f32], r: f64) -> f64 {
    match metric {
        Metric::Maximum => minkowski_box_ball_max(sides, r),
        Metric::Euclidean | Metric::Manhattan => minkowski_box_ball_eucl_exact(sides, r),
    }
}

/// Exact intersection volume of a box and an L∞ ball `{x : |x-q|_∞ ≤ r}` —
/// the paper's eq (5):
/// `Π max(0, min(ub_i, q_i + r) − max(lb_i, q_i − r))`.
pub fn box_ball_intersection_max(mbr: &Mbr, q: &[f32], r: f64) -> f64 {
    debug_assert_eq!(q.len(), mbr.dim());
    (0..mbr.dim())
        .map(|i| {
            let lo = f64::from(mbr.lb(i)).max(f64::from(q[i]) - r);
            let hi = f64::from(mbr.ub(i)).min(f64::from(q[i]) + r);
            (hi - lo).max(0.0)
        })
        .product()
}

/// Approximate intersection volume of a box and a Euclidean ball: the exact
/// intersection with the ball's bounding box, scaled by the ball's fill
/// factor of that bounding box (`V_ball / (2r)^d`), clamped to the exact
/// upper bounds (ball volume and box volume). The paper notes "for Euclidean
/// and other metrics, the volume can be estimated using approximations".
pub fn box_ball_intersection_eucl_approx(mbr: &Mbr, q: &[f32], r: f64) -> f64 {
    let d = mbr.dim();
    let bbox_int = box_ball_intersection_max(mbr, q, r);
    if bbox_int == 0.0 || r == 0.0 {
        return 0.0;
    }
    let fill = unit_ball_volume(d) / 2f64.powi(d as i32); // V_ball(r)/(2r)^d
    (bbox_int * fill)
        .min(ball_volume(Metric::Euclidean, d, r))
        .min(mbr.volume())
}

/// Intersection volume of a box and a metric ball, dispatching per metric.
pub fn box_ball_intersection(metric: Metric, mbr: &Mbr, q: &[f32], r: f64) -> f64 {
    match metric {
        Metric::Maximum => box_ball_intersection_max(mbr, q, r),
        Metric::Euclidean | Metric::Manhattan => box_ball_intersection_eucl_approx(mbr, q, r),
    }
}

/// The error function, via the Abramowitz & Stegun 7.1.26 rational
/// approximation (absolute error < 1.5e-7 — far below the noise of the
/// probabilistic models built on it).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A: [f64; 5] = [
        0.254_829_592,
        -0.284_496_736,
        1.421_413_741,
        -1.453_152_027,
        1.061_405_429,
    ];
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let poly = t * (A[0] + t * (A[1] + t * (A[2] + t * (A[3] + t * A[4]))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF `Φ(z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Deterministic quasi-Monte-Carlo estimate of the box/ball intersection
/// volume (used in tests to validate the closed forms; additive-recurrence
/// low-discrepancy sequence, no RNG dependency).
pub fn box_ball_intersection_qmc(
    metric: Metric,
    mbr: &Mbr,
    q: &[f32],
    r: f64,
    samples: usize,
) -> f64 {
    let d = mbr.dim();
    let vol = mbr.volume();
    if vol == 0.0 || samples == 0 {
        return 0.0;
    }
    // Kronecker sequence with α_i = fractional powers of the plastic-number
    // generalization (Roberts' R_d sequence).
    let phi = {
        // Solve x^{d+1} = x + 1 by fixed-point iteration.
        let mut x = 2.0f64;
        for _ in 0..64 {
            x = (1.0 + x).powf(1.0 / (d as f64 + 1.0));
        }
        x
    };
    let alphas: Vec<f64> = (1..=d).map(|i| (1.0 / phi.powi(i as i32)) % 1.0).collect();
    let mut inside = 0usize;
    let mut x = vec![0.0f64; d];
    let mut p = vec![0.0f32; d];
    for s in 0..samples {
        for i in 0..d {
            x[i] = ((s as f64 + 1.0) * alphas[i]).fract();
            p[i] = (f64::from(mbr.lb(i)) + x[i] * mbr.extent(i)) as f32;
        }
        if metric.distance(&p, q) <= r {
            inside += 1;
        }
    }
    vol * inside as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * a.abs().max(b.abs()).max(1e-300)
    }

    #[test]
    fn gamma_known_values() {
        assert!(close(gamma(1.0), 1.0, 1e-12));
        assert!(close(gamma(0.5), std::f64::consts::PI.sqrt(), 1e-12));
        assert!(close(gamma(5.0), 24.0, 1e-12));
        assert!(close(gamma(7.5), 1_871.254_305_797_788, 1e-10));
    }

    #[test]
    fn unit_ball_known_values() {
        assert!(close(unit_ball_volume(1), 2.0, 1e-12));
        assert!(close(unit_ball_volume(2), std::f64::consts::PI, 1e-12));
        assert!(close(
            unit_ball_volume(3),
            4.0 / 3.0 * std::f64::consts::PI,
            1e-12
        ));
    }

    #[test]
    fn ball_volume_max_metric_is_cube() {
        assert!(close(ball_volume(Metric::Maximum, 4, 0.5), 1.0, 1e-12));
        assert!(close(ball_volume(Metric::Maximum, 3, 1.0), 8.0, 1e-12));
    }

    #[test]
    fn manhattan_ball_is_cross_polytope() {
        // d=2: diamond with diagonal 2r: area = 2 r^2.
        assert!(close(ball_volume(Metric::Manhattan, 2, 1.0), 2.0, 1e-12));
        // d=3: octahedron volume (2r)^3/6 = 4/3 r^3.
        assert!(close(
            ball_volume(Metric::Manhattan, 3, 1.0),
            4.0 / 3.0,
            1e-12
        ));
    }

    #[test]
    fn radius_inverts_volume() {
        for metric in [Metric::Euclidean, Metric::Maximum, Metric::Manhattan] {
            for d in [1usize, 2, 5, 16] {
                for v in [1e-6, 0.37, 42.0] {
                    let r = ball_radius(metric, d, v);
                    assert!(
                        close(ball_volume(metric, d, r), v, 1e-9),
                        "metric={metric:?} d={d} v={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn nn_radius_unit_density() {
        // ρ = 1 → ball volume 1. For L∞: (2r)^d = 1 → r = 0.5^... .
        let r = nn_radius(Metric::Maximum, 4, 1.0);
        assert!(close((2.0 * r).powi(4), 1.0, 1e-12));
    }

    #[test]
    fn binomial_row() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 6), 0.0);
    }

    #[test]
    fn minkowski_max_metric() {
        // 2x3 box, r=0.5: (2+1)(3+1)=12.
        assert!(close(minkowski_box_ball_max(&[2.0, 3.0], 0.5), 12.0, 1e-12));
    }

    #[test]
    fn minkowski_eucl_exact_2d() {
        // Box s1 x s2 + disk r: s1 s2 + 2r(s1+s2)/... actually:
        // area = s1*s2 + 2r*s1 + 2r*s2 + π r².
        let (s1, s2, r) = (2.0f64, 3.0f64, 0.5f64);
        let expect = s1 * s2 + 2.0 * r * (s1 + s2) + std::f64::consts::PI * r * r;
        assert!(close(
            minkowski_box_ball_eucl_exact(&[s1 as f32, s2 as f32], r),
            expect,
            1e-12
        ));
    }

    #[test]
    fn minkowski_eucl_approx_matches_exact_for_cube() {
        for d in [2usize, 4, 8, 16] {
            let sides = vec![1.5f32; d];
            let exact = minkowski_box_ball_eucl_exact(&sides, 0.3);
            let approx = minkowski_box_ball_eucl_approx(d, 1.5, 0.3);
            assert!(close(exact, approx, 1e-9), "d={d}: {exact} vs {approx}");
        }
    }

    #[test]
    fn minkowski_zero_radius_is_box_volume() {
        let sides = [1.0f32, 2.0, 3.0];
        assert!(close(
            minkowski_box_ball_eucl_exact(&sides, 0.0),
            6.0,
            1e-12
        ));
        assert!(close(minkowski_box_ball_max(&sides, 0.0), 6.0, 1e-12));
    }

    #[test]
    fn intersection_max_full_containment() {
        let mbr = Mbr::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        // Ball that swallows the box entirely.
        let v = box_ball_intersection_max(&mbr, &[0.5, 0.5], 10.0);
        assert!(close(v, 1.0, 1e-12));
        // Ball fully inside the box.
        let v = box_ball_intersection_max(&mbr, &[0.5, 0.5], 0.1);
        assert!(close(v, 0.04, 1e-12));
        // Disjoint.
        assert_eq!(box_ball_intersection_max(&mbr, &[5.0, 5.0], 1.0), 0.0);
    }

    #[test]
    fn intersection_eucl_approx_vs_qmc() {
        let mbr = Mbr::from_bounds(vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]);
        let q = [0.2f32, 0.9, 0.4];
        let r = 0.45;
        let approx = box_ball_intersection_eucl_approx(&mbr, &q, r);
        let mc = box_ball_intersection_qmc(Metric::Euclidean, &mbr, &q, r, 200_000);
        // Crude approximation: demand same order of magnitude.
        assert!(approx > 0.0 && mc > 0.0);
        assert!(approx / mc < 3.0 && mc / approx < 3.0, "{approx} vs {mc}");
    }

    #[test]
    fn qmc_matches_exact_for_max_metric() {
        let mbr = Mbr::from_bounds(vec![0.0, 0.0], vec![1.0, 2.0]);
        let q = [0.3f32, 1.5];
        let r = 0.4;
        let exact = box_ball_intersection_max(&mbr, &q, r);
        let mc = box_ball_intersection_qmc(Metric::Maximum, &mbr, &q, r, 200_000);
        assert!(close(exact, mc, 0.02), "{exact} vs {mc}");
    }
}
