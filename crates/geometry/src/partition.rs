//! Top-down bulk partitioning of point sets.
//!
//! The IQ-tree's construction (Section 3.3) and the bulk-loaded X-tree both
//! use the partitioning scheme of Berchtold/Böhm/Kriegel (EDBT '98): split
//! the point set recursively at the median of the dimension in which the
//! current MBR has its largest extension, until a partition fits the page
//! capacity. Emission order is the in-order traversal of the split tree,
//! which gives neighboring partitions neighboring disk positions — the
//! locality the optimized page-access strategy of Section 2 feeds on.

use crate::{Dataset, Mbr};

/// A bulk-load partition: the ids (dataset rows) it contains and their
/// tight MBR.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Dataset row indices of the points in this partition.
    pub ids: Vec<u32>,
    /// Tight bounding box of those points.
    pub mbr: Mbr,
}

impl Partition {
    /// Builds the partition covering the given rows of `ds`.
    pub fn of(ds: &Dataset, ids: Vec<u32>) -> Self {
        let mbr = Mbr::of_points(ds.dim(), ids.iter().map(|&i| ds.point(i as usize)));
        Self { ids, mbr }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Splits `ids` at the median of the dimension with the largest MBR
/// extension, returning the two halves and the split dimension.
///
/// Points equal to the median value may land on either side; both halves
/// are non-empty for `ids.len() >= 2`.
///
/// # Panics
/// Panics if fewer than two ids are supplied.
pub fn split_at_median(ds: &Dataset, ids: &mut [u32], mbr: &Mbr) -> (Vec<u32>, Vec<u32>, usize) {
    assert!(ids.len() >= 2, "cannot split fewer than two points");
    let dim = mbr.longest_dim();
    let mid = ids.len() / 2;
    ids.select_nth_unstable_by(mid, |&a, &b| {
        ds.point(a as usize)[dim]
            .partial_cmp(&ds.point(b as usize)[dim])
            .expect("coordinates are never NaN")
    });
    (ids[..mid].to_vec(), ids[mid..].to_vec(), dim)
}

/// Recursively partitions all points of `ds` into partitions of at most
/// `capacity` points.
///
/// # Panics
/// Panics if `capacity == 0` or `ds` is empty.
pub fn bulk_partition(ds: &Dataset, capacity: usize) -> Vec<Partition> {
    assert!(capacity > 0, "capacity must be positive");
    assert!(!ds.is_empty(), "cannot partition an empty set");
    let ids: Vec<u32> = (0..ds.len() as u32).collect();
    let mut out = Vec::with_capacity(ds.len() / capacity + 1);
    recurse(ds, ids, capacity, &mut out);
    out
}

fn recurse(ds: &Dataset, mut ids: Vec<u32>, capacity: usize, out: &mut Vec<Partition>) {
    if ids.len() <= capacity {
        out.push(Partition::of(ds, ids));
        return;
    }
    let mbr = Mbr::of_points(ds.dim(), ids.iter().map(|&i| ds.point(i as usize)));
    let (left, right, _) = split_at_median(ds, &mut ids, &mbr);
    recurse(ds, left, capacity, out);
    recurse(ds, right, capacity, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2d(n_side: usize) -> Dataset {
        let mut ds = Dataset::new(2);
        for i in 0..n_side {
            for j in 0..n_side {
                ds.push(&[i as f32 / n_side as f32, j as f32 / n_side as f32]);
            }
        }
        ds
    }

    #[test]
    fn partitions_cover_all_points_exactly_once() {
        let ds = grid_2d(20); // 400 points
        let parts = bulk_partition(&ds, 30);
        let mut seen = vec![false; ds.len()];
        for p in &parts {
            assert!(p.len() <= 30);
            assert!(!p.is_empty());
            for &id in &p.ids {
                assert!(!seen[id as usize], "duplicate id {id}");
                seen[id as usize] = true;
                assert!(p.mbr.contains_point(ds.point(id as usize)));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn partitions_are_balanced() {
        let ds = grid_2d(16); // 256 points, capacity 32 -> exactly 8 parts
        let parts = bulk_partition(&ds, 32);
        assert_eq!(parts.len(), 8);
        for p in &parts {
            assert_eq!(p.len(), 32);
        }
    }

    #[test]
    fn split_uses_longest_dimension() {
        // Points spread widely in dim 1 only.
        let mut ds = Dataset::new(2);
        for i in 0..10 {
            ds.push(&[0.5, i as f32]);
        }
        let mut ids: Vec<u32> = (0..10).collect();
        let mbr = Mbr::of_points(2, ds.iter());
        let (l, r, dim) = split_at_median(&ds, &mut ids, &mbr);
        assert_eq!(dim, 1);
        assert_eq!(l.len(), 5);
        assert_eq!(r.len(), 5);
        let max_l = l.iter().map(|&i| ds.point(i as usize)[1] as i32).max();
        let min_r = r.iter().map(|&i| ds.point(i as usize)[1] as i32).min();
        assert!(max_l < min_r);
    }

    #[test]
    fn single_point_partition() {
        let mut ds = Dataset::new(3);
        ds.push(&[1.0, 2.0, 3.0]);
        let parts = bulk_partition(&ds, 4);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 1);
        assert_eq!(parts[0].mbr.volume(), 0.0);
    }

    #[test]
    fn duplicate_points_still_split() {
        let mut ds = Dataset::new(2);
        for _ in 0..100 {
            ds.push(&[0.5, 0.5]);
        }
        let parts = bulk_partition(&ds, 10);
        assert!(parts.iter().all(|p| p.len() <= 10));
        assert_eq!(parts.iter().map(Partition::len).sum::<usize>(), 100);
    }

    #[test]
    fn emission_order_has_locality() {
        // Consecutive partitions should be spatially adjacent: their MBRs
        // along the first split axis should be monotone-ish. Weak check:
        // average center distance of neighbors is far below that of random
        // pairs.
        let ds = grid_2d(32);
        let parts = bulk_partition(&ds, 16);
        let centers: Vec<[f64; 2]> = parts
            .iter()
            .map(|p| {
                [
                    (f64::from(p.mbr.lb(0)) + f64::from(p.mbr.ub(0))) / 2.0,
                    (f64::from(p.mbr.lb(1)) + f64::from(p.mbr.ub(1))) / 2.0,
                ]
            })
            .collect();
        let dist =
            |a: [f64; 2], b: [f64; 2]| ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt();
        let neigh: f64 =
            centers.windows(2).map(|w| dist(w[0], w[1])).sum::<f64>() / (centers.len() - 1) as f64;
        let mut far = 0.0;
        let mut cnt = 0.0;
        for i in 0..centers.len() {
            for j in 0..centers.len() {
                if i != j {
                    far += dist(centers[i], centers[j]);
                    cnt += 1.0;
                }
            }
        }
        assert!(
            neigh < 0.6 * (far / cnt),
            "neighbors {neigh} vs avg {}",
            far / cnt
        );
    }
}
