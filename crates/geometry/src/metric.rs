//! Distance metrics used by the paper: Euclidean (L2), maximum (L∞) and
//! Manhattan (L1).
//!
//! All index structures in this workspace are parameterized by a [`Metric`];
//! the paper states its cost model for the Euclidean and maximum metrics.

use crate::mbr::Mbr;

/// A Minkowski metric on `R^d`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// The Euclidean metric (L2). The paper's default for all experiments.
    #[default]
    Euclidean,
    /// The maximum metric (L∞ / Chebyshev), for which the paper's volume
    /// formulas are exact.
    Maximum,
    /// The Manhattan metric (L1).
    Manhattan,
}

impl Metric {
    /// The one-dimensional gap between coordinate `x` and the interval
    /// `[lo, hi]`: zero inside, distance to the nearer edge outside. This is
    /// the per-dimension building block of MINDIST.
    #[inline]
    pub fn box_gap(x: f64, lo: f64, hi: f64) -> f64 {
        if x < lo {
            lo - x
        } else if x > hi {
            x - hi
        } else {
            0.0
        }
    }

    /// The per-dimension contribution of a gap to this metric's comparable
    /// key: squared for Euclidean (whose key space is the squared
    /// distance), the gap itself otherwise.
    #[inline]
    pub fn contrib(self, gap: f64) -> f64 {
        match self {
            Metric::Euclidean => gap * gap,
            Metric::Maximum | Metric::Manhattan => gap,
        }
    }

    /// Folds one per-dimension contribution into an accumulator (seed 0.0):
    /// a sum for the additive metrics, a max for L∞. Accumulating
    /// [`Metric::contrib`] values over dimensions **in index order** is
    /// bit-for-bit identical to [`Metric::mindist_key`] — the contract the
    /// quantized-domain lookup tables rely on.
    #[inline]
    pub fn combine(self, acc: f64, contrib: f64) -> f64 {
        match self {
            Metric::Euclidean | Metric::Manhattan => acc + contrib,
            Metric::Maximum => acc.max(contrib),
        }
    }

    /// Distance between two points.
    ///
    /// # Panics
    /// Debug-panics if the slices have different lengths.
    #[inline]
    pub fn distance(self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Euclidean => self.sq_euclidean(a, b).sqrt(),
            Metric::Maximum => a.iter().zip(b).fold(0.0f64, |m, (x, y)| {
                m.max((f64::from(*x) - f64::from(*y)).abs())
            }),
            Metric::Manhattan => a
                .iter()
                .zip(b)
                .map(|(x, y)| (f64::from(*x) - f64::from(*y)).abs())
                .sum(),
        }
    }

    /// Squared Euclidean distance (cheap comparison key; only meaningful for
    /// [`Metric::Euclidean`] but always computed as the sum of squared
    /// coordinate differences).
    #[inline]
    pub fn sq_euclidean(self, a: &[f32], b: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                let d = f64::from(*x) - f64::from(*y);
                d * d
            })
            .sum()
    }

    /// A comparable key for `distance`: for the Euclidean metric the
    /// *squared* distance (saves the `sqrt` in hot loops), the distance
    /// itself otherwise. Use [`Metric::key_to_distance`] to convert back.
    #[inline]
    pub fn distance_key(self, a: &[f32], b: &[f32]) -> f64 {
        match self {
            Metric::Euclidean => self.sq_euclidean(a, b),
            _ => self.distance(a, b),
        }
    }

    /// Converts a key produced by [`Metric::distance_key`] (or
    /// [`Metric::mindist_key`]) into a real distance.
    #[inline]
    pub fn key_to_distance(self, key: f64) -> f64 {
        match self {
            Metric::Euclidean => key.sqrt(),
            _ => key,
        }
    }

    /// Converts a real distance into the comparable key space.
    #[inline]
    pub fn distance_to_key(self, dist: f64) -> f64 {
        match self {
            Metric::Euclidean => dist * dist,
            _ => dist,
        }
    }

    /// MINDIST: the minimum distance from `q` to any point of the box.
    /// Zero if `q` lies inside the box.
    #[inline]
    pub fn mindist(self, q: &[f32], mbr: &Mbr) -> f64 {
        self.key_to_distance(self.mindist_key(q, mbr))
    }

    /// MINDIST in key space (squared for Euclidean). Equivalent to folding
    /// `contrib(box_gap(..))` over dimensions in index order with `combine`.
    pub fn mindist_key(self, q: &[f32], mbr: &Mbr) -> f64 {
        debug_assert_eq!(q.len(), mbr.dim());
        let mut acc = 0.0f64;
        for (i, &x) in q.iter().enumerate() {
            let gap = Self::box_gap(f64::from(x), f64::from(mbr.lb(i)), f64::from(mbr.ub(i)));
            acc = self.combine(acc, self.contrib(gap));
        }
        acc
    }

    /// The one-dimensional distance from `x` to the *farther* edge of
    /// `[lo, hi]` — the per-dimension building block of MAXDIST.
    #[inline]
    pub fn far_gap(x: f64, lo: f64, hi: f64) -> f64 {
        (x - lo).abs().max((x - hi).abs())
    }

    /// MAXDIST: the maximum distance from `q` to any point of the box
    /// (distance to the farthest corner). Note this is a *distance*, not a
    /// key: the Euclidean fold takes a square root at the end.
    pub fn maxdist(self, q: &[f32], mbr: &Mbr) -> f64 {
        debug_assert_eq!(q.len(), mbr.dim());
        let mut acc = 0.0f64;
        for (i, &x) in q.iter().enumerate() {
            let gap = Self::far_gap(f64::from(x), f64::from(mbr.lb(i)), f64::from(mbr.ub(i)));
            acc = self.combine(acc, self.contrib(gap));
        }
        match self {
            Metric::Euclidean => acc.sqrt(),
            Metric::Maximum | Metric::Manhattan => acc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f32; 3] = [0.0, 0.0, 0.0];
    const B: [f32; 3] = [3.0, 4.0, 0.0];

    #[test]
    fn euclidean_distance() {
        assert!((Metric::Euclidean.distance(&A, &B) - 5.0).abs() < 1e-12);
        assert!((Metric::Euclidean.sq_euclidean(&A, &B) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn maximum_distance() {
        assert!((Metric::Maximum.distance(&A, &B) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_distance() {
        assert!((Metric::Manhattan.distance(&A, &B) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn key_roundtrip() {
        for m in [Metric::Euclidean, Metric::Maximum, Metric::Manhattan] {
            let key = m.distance_key(&A, &B);
            let d = m.distance(&A, &B);
            assert!((m.key_to_distance(key) - d).abs() < 1e-12);
            assert!((m.distance_to_key(d) - key).abs() < 1e-9);
        }
    }

    #[test]
    fn mindist_inside_is_zero() {
        let mbr = Mbr::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        for m in [Metric::Euclidean, Metric::Maximum, Metric::Manhattan] {
            assert_eq!(m.mindist(&[0.5, 0.5], &mbr), 0.0);
        }
    }

    #[test]
    fn mindist_outside() {
        let mbr = Mbr::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        let q = [2.0, 2.0];
        assert!((Metric::Euclidean.mindist(&q, &mbr) - 2.0f64.sqrt()).abs() < 1e-9);
        assert!((Metric::Maximum.mindist(&q, &mbr) - 1.0).abs() < 1e-12);
        assert!((Metric::Manhattan.mindist(&q, &mbr) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn maxdist_reaches_far_corner() {
        let mbr = Mbr::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        let q = [0.0, 0.0];
        assert!((Metric::Euclidean.maxdist(&q, &mbr) - 2.0f64.sqrt()).abs() < 1e-9);
        assert!((Metric::Maximum.maxdist(&q, &mbr) - 1.0).abs() < 1e-12);
    }
}
