//! Minimum bounding rectangles (hyper-rectangles).

/// An axis-aligned minimum bounding rectangle in `R^d`.
///
/// Stored as two coordinate vectors (lower and upper bounds). An `Mbr` may be
/// degenerate (zero extension in some or all dimensions), which happens for
/// pages holding a single point or points sharing a coordinate.
#[derive(Clone, Debug, PartialEq)]
pub struct Mbr {
    lb: Vec<f32>,
    ub: Vec<f32>,
}

impl Mbr {
    /// Creates an MBR from explicit bounds.
    ///
    /// # Panics
    /// Panics if the bounds differ in length, are empty, or `lb[i] > ub[i]`
    /// for some `i`.
    pub fn from_bounds(lb: Vec<f32>, ub: Vec<f32>) -> Self {
        assert_eq!(lb.len(), ub.len(), "bound dimensionality mismatch");
        assert!(!lb.is_empty(), "MBR must have at least one dimension");
        assert!(
            lb.iter().zip(&ub).all(|(l, u)| l <= u),
            "lower bound exceeds upper bound"
        );
        Self { lb, ub }
    }

    /// The "empty" MBR: +inf lower bounds, -inf upper bounds. Extending it
    /// with any point produces that point's degenerate box.
    pub fn empty(dim: usize) -> Self {
        assert!(dim > 0);
        Self {
            lb: vec![f32::INFINITY; dim],
            ub: vec![f32::NEG_INFINITY; dim],
        }
    }

    /// Whether this is the empty MBR (never contains anything).
    pub fn is_empty(&self) -> bool {
        self.lb.iter().zip(&self.ub).any(|(l, u)| l > u)
    }

    /// The tight MBR of a non-empty set of points.
    pub fn of_points<'a>(dim: usize, points: impl Iterator<Item = &'a [f32]>) -> Self {
        let mut mbr = Self::empty(dim);
        for p in points {
            mbr.extend_point(p);
        }
        mbr
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lb.len()
    }

    /// Lower bound in dimension `i`.
    #[inline]
    pub fn lb(&self, i: usize) -> f32 {
        self.lb[i]
    }

    /// Upper bound in dimension `i`.
    #[inline]
    pub fn ub(&self, i: usize) -> f32 {
        self.ub[i]
    }

    /// All lower bounds.
    #[inline]
    pub fn lbs(&self) -> &[f32] {
        &self.lb
    }

    /// All upper bounds.
    #[inline]
    pub fn ubs(&self) -> &[f32] {
        &self.ub
    }

    /// Side length in dimension `i` (zero for the empty MBR).
    #[inline]
    pub fn extent(&self, i: usize) -> f64 {
        (f64::from(self.ub[i]) - f64::from(self.lb[i])).max(0.0)
    }

    /// The dimension with the largest extension — the paper's split
    /// dimension choice ("we split the page along the dimension where the
    /// MBR has its largest extension").
    pub fn longest_dim(&self) -> usize {
        (0..self.dim())
            .max_by(|&a, &b| {
                self.extent(a)
                    .partial_cmp(&self.extent(b))
                    .expect("extents are never NaN")
            })
            .expect("MBR has at least one dimension")
    }

    /// Volume `Π (ub_i - lb_i)` (eq 6 denominator). Zero if degenerate.
    pub fn volume(&self) -> f64 {
        (0..self.dim()).map(|i| self.extent(i)).product()
    }

    /// Sum of side lengths (the R*-tree "margin" surrogate).
    pub fn margin(&self) -> f64 {
        (0..self.dim()).map(|i| self.extent(i)).sum()
    }

    /// Geometric mean of the side lengths — the `a` of the paper's eq (12).
    /// Zero-extent sides are clamped to a tiny positive value so one
    /// degenerate dimension does not zero out the whole Minkowski sum.
    pub fn geometric_mean_side(&self) -> f64 {
        let d = self.dim() as f64;
        let log_sum: f64 = (0..self.dim())
            .map(|i| self.extent(i).max(f64::MIN_POSITIVE).ln())
            .sum();
        (log_sum / d).exp()
    }

    /// Grows the box to contain `p`.
    pub fn extend_point(&mut self, p: &[f32]) {
        debug_assert_eq!(p.len(), self.dim());
        for (i, &x) in p.iter().enumerate() {
            if x < self.lb[i] {
                self.lb[i] = x;
            }
            if x > self.ub[i] {
                self.ub[i] = x;
            }
        }
    }

    /// Grows the box to contain another box.
    pub fn extend_mbr(&mut self, other: &Mbr) {
        debug_assert_eq!(other.dim(), self.dim());
        for i in 0..self.dim() {
            self.lb[i] = self.lb[i].min(other.lb[i]);
            self.ub[i] = self.ub[i].max(other.ub[i]);
        }
    }

    /// Whether the point lies inside (closed) the box.
    pub fn contains_point(&self, p: &[f32]) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        p.iter()
            .enumerate()
            .all(|(i, &x)| self.lb[i] <= x && x <= self.ub[i])
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains_mbr(&self, other: &Mbr) -> bool {
        (0..self.dim()).all(|i| self.lb[i] <= other.lb[i] && other.ub[i] <= self.ub[i])
    }

    /// Whether the two boxes intersect (closed).
    pub fn intersects(&self, other: &Mbr) -> bool {
        (0..self.dim()).all(|i| self.lb[i] <= other.ub[i] && other.lb[i] <= self.ub[i])
    }

    /// Volume of the intersection of the two boxes (the R*-tree overlap
    /// measure).
    pub fn overlap_volume(&self, other: &Mbr) -> f64 {
        (0..self.dim())
            .map(|i| {
                (f64::from(self.ub[i].min(other.ub[i])) - f64::from(self.lb[i].max(other.lb[i])))
                    .max(0.0)
            })
            .product()
    }

    /// By how much `self.volume()` would grow if extended to contain `p`.
    pub fn enlargement_for_point(&self, p: &[f32]) -> f64 {
        let mut grown = self.clone();
        grown.extend_point(p);
        grown.volume() - self.volume()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_points_is_tight() {
        let pts: Vec<Vec<f32>> = vec![vec![0.0, 5.0], vec![2.0, 1.0], vec![1.0, 3.0]];
        let mbr = Mbr::of_points(2, pts.iter().map(|p| p.as_slice()));
        assert_eq!(mbr.lbs(), &[0.0, 1.0]);
        assert_eq!(mbr.ubs(), &[2.0, 5.0]);
        assert!((mbr.volume() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_behaves() {
        let mut e = Mbr::empty(2);
        assert!(e.is_empty());
        assert!(!e.contains_point(&[0.0, 0.0]));
        e.extend_point(&[1.0, 2.0]);
        assert!(!e.is_empty());
        assert_eq!(e.lbs(), e.ubs());
        assert_eq!(e.volume(), 0.0);
    }

    #[test]
    fn longest_dim_picks_widest() {
        let mbr = Mbr::from_bounds(vec![0.0, 0.0, 0.0], vec![1.0, 3.0, 2.0]);
        assert_eq!(mbr.longest_dim(), 1);
    }

    #[test]
    fn intersect_and_overlap() {
        let a = Mbr::from_bounds(vec![0.0, 0.0], vec![2.0, 2.0]);
        let b = Mbr::from_bounds(vec![1.0, 1.0], vec![3.0, 3.0]);
        let c = Mbr::from_bounds(vec![5.0, 5.0], vec![6.0, 6.0]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!((a.overlap_volume(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.overlap_volume(&c), 0.0);
    }

    #[test]
    fn containment() {
        let a = Mbr::from_bounds(vec![0.0, 0.0], vec![4.0, 4.0]);
        let b = Mbr::from_bounds(vec![1.0, 1.0], vec![2.0, 2.0]);
        assert!(a.contains_mbr(&b));
        assert!(!b.contains_mbr(&a));
        assert!(a.contains_point(&[4.0, 0.0]));
        assert!(!a.contains_point(&[4.1, 0.0]));
    }

    #[test]
    fn enlargement() {
        let a = Mbr::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert_eq!(a.enlargement_for_point(&[0.5, 0.5]), 0.0);
        assert!((a.enlargement_for_point(&[2.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_square_is_side() {
        let a = Mbr::from_bounds(vec![0.0, 0.0], vec![2.0, 2.0]);
        assert!((a.geometric_mean_side() - 2.0).abs() < 1e-9);
    }
}
