//! Property-based tests of the geometric primitives: metric axioms,
//! MBR algebra, and monotonicity/consistency of the volume formulas the
//! cost model depends on.

use iq_geometry::{volume, Mbr, Metric};
use proptest::prelude::*;

const METRICS: [Metric; 3] = [Metric::Euclidean, Metric::Maximum, Metric::Manhattan];

fn point(d: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Metric axioms: identity, symmetry, triangle inequality.
    #[test]
    fn prop_metric_axioms(a in point(6), b in point(6), c in point(6)) {
        for m in METRICS {
            let dab = m.distance(&a, &b);
            let dba = m.distance(&b, &a);
            prop_assert!((dab - dba).abs() < 1e-9, "{m:?} symmetry");
            prop_assert!(m.distance(&a, &a) < 1e-9, "{m:?} identity");
            let dac = m.distance(&a, &c);
            let dcb = m.distance(&c, &b);
            prop_assert!(dab <= dac + dcb + 1e-6, "{m:?} triangle: {dab} > {dac} + {dcb}");
        }
    }

    /// The metrics are ordered: L∞ ≤ L2 ≤ L1.
    #[test]
    fn prop_metric_ordering(a in point(5), b in point(5)) {
        let linf = Metric::Maximum.distance(&a, &b);
        let l2 = Metric::Euclidean.distance(&a, &b);
        let l1 = Metric::Manhattan.distance(&a, &b);
        prop_assert!(linf <= l2 + 1e-9);
        prop_assert!(l2 <= l1 + 1e-9);
    }

    /// MINDIST lower-bounds and MAXDIST upper-bounds the distance to every
    /// point inside the box.
    #[test]
    fn prop_mindist_maxdist_bound(
        q in point(4),
        corner in point(4),
        extent in proptest::collection::vec(0.0f32..5.0, 4),
        t in proptest::collection::vec(0.0f32..1.0, 4),
    ) {
        let lb: Vec<f32> = corner.clone();
        let ub: Vec<f32> = corner.iter().zip(&extent).map(|(c, e)| c + e).collect();
        let mbr = Mbr::from_bounds(lb.clone(), ub.clone());
        // A point inside the box.
        let inside: Vec<f32> =
            lb.iter().zip(&ub).zip(&t).map(|((l, u), t)| l + (u - l) * t).collect();
        for m in METRICS {
            let d = m.distance(&q, &inside);
            prop_assert!(m.mindist(&q, &mbr) <= d + 1e-5, "{m:?} mindist");
            prop_assert!(m.maxdist(&q, &mbr) >= d - 1e-5, "{m:?} maxdist");
        }
    }

    /// MBR union is commutative, idempotent-extending and containing.
    #[test]
    fn prop_mbr_union(a in point(3), b in point(3), c in point(3)) {
        let mut m1 = Mbr::empty(3);
        m1.extend_point(&a);
        m1.extend_point(&b);
        let mut m2 = Mbr::empty(3);
        m2.extend_point(&b);
        m2.extend_point(&a);
        prop_assert_eq!(&m1, &m2);
        prop_assert!(m1.contains_point(&a) && m1.contains_point(&b));
        let vol_before = m1.volume();
        let mut m3 = m1.clone();
        m3.extend_point(&c);
        prop_assert!(m3.volume() >= vol_before - 1e-9);
        prop_assert!(m3.contains_mbr(&m1));
    }

    /// Overlap volume is symmetric and bounded by each box's volume.
    #[test]
    fn prop_overlap_bounds(
        a_lo in point(3), a_ext in proptest::collection::vec(0.0f32..4.0, 3),
        b_lo in point(3), b_ext in proptest::collection::vec(0.0f32..4.0, 3),
    ) {
        let a = Mbr::from_bounds(
            a_lo.clone(),
            a_lo.iter().zip(&a_ext).map(|(l, e)| l + e).collect(),
        );
        let b = Mbr::from_bounds(
            b_lo.clone(),
            b_lo.iter().zip(&b_ext).map(|(l, e)| l + e).collect(),
        );
        let oab = a.overlap_volume(&b);
        let oba = b.overlap_volume(&a);
        prop_assert!((oab - oba).abs() < 1e-6);
        prop_assert!(oab <= a.volume() + 1e-6);
        prop_assert!(oab <= b.volume() + 1e-6);
        prop_assert_eq!(oab > 0.0, a.intersects(&b) && oab > 0.0);
    }

    /// Ball volume is monotone in the radius and inverts correctly.
    #[test]
    fn prop_ball_volume_monotone(r1 in 0.01f64..3.0, dr in 0.0f64..3.0, d in 1usize..20) {
        for m in METRICS {
            let v1 = volume::ball_volume(m, d, r1);
            let v2 = volume::ball_volume(m, d, r1 + dr);
            prop_assert!(v2 >= v1);
            let r_back = volume::ball_radius(m, d, v1);
            prop_assert!((r_back - r1).abs() / r1 < 1e-6, "{m:?} d={d}");
        }
    }

    /// The Minkowski sum grows with the radius and dominates the box
    /// volume; the exact Euclidean Steiner form is bounded by the L∞ form.
    #[test]
    fn prop_minkowski_bounds(
        sides in proptest::collection::vec(0.01f32..2.0, 6),
        r in 0.0f64..1.0,
    ) {
        let box_vol: f64 = sides.iter().map(|&s| f64::from(s)).product();
        let eucl = volume::minkowski_box_ball_eucl_exact(&sides, r);
        let maxm = volume::minkowski_box_ball_max(&sides, r);
        prop_assert!(eucl >= box_vol - 1e-9);
        prop_assert!(maxm >= eucl - 1e-9, "L2 ball is inside the L-inf ball");
        let bigger = volume::minkowski_box_ball_eucl_exact(&sides, r + 0.1);
        prop_assert!(bigger >= eucl);
    }

    /// erf/normal_cdf sanity: odd symmetry, range, monotonicity.
    #[test]
    fn prop_normal_cdf(z in -6.0f64..6.0, dz in 0.0f64..3.0) {
        let p = volume::normal_cdf(z);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(volume::normal_cdf(z + dz) >= p - 1e-9);
        let sym = volume::normal_cdf(-z);
        prop_assert!((p + sym - 1.0).abs() < 1e-6);
    }
}

#[test]
fn normal_cdf_known_values() {
    assert!((volume::normal_cdf(0.0) - 0.5).abs() < 1e-9);
    assert!((volume::normal_cdf(1.96) - 0.975).abs() < 1e-3);
    assert!(volume::normal_cdf(-8.0) < 1e-9);
    assert!(volume::normal_cdf(8.0) > 1.0 - 1e-9);
}
