//! Property tests: `TopK` against a sort-based oracle.

use iq_engine::TopK;
use proptest::prelude::*;

/// The oracle: sort all finite keys ascending (stable on ties by insert
/// order, which `TopK` also guarantees via `partition_point` on `<`),
/// take the first k.
fn oracle(entries: &[(f64, u32)], k: usize) -> Vec<(f64, u32)> {
    let mut finite: Vec<(f64, u32)> = entries.iter().copied().filter(|e| !e.0.is_nan()).collect();
    finite.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("filtered NaN"));
    finite.truncate(k);
    finite
}

fn key_strategy() -> impl Strategy<Value = f64> {
    // Dense keys (many ties) with ~10% NaN and ~10% exact zero mixed in.
    (0u32..1200).prop_map(|v| match v {
        0..=999 => f64::from(v % 50) / 16.0,
        1000..=1099 => f64::NAN,
        _ => 0.0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_sort_oracle(
        keys in proptest::collection::vec(key_strategy(), 0..120),
        k in 0usize..12,
    ) {
        let entries: Vec<(f64, u32)> =
            keys.into_iter().enumerate().map(|(i, d)| (d, i as u32)).collect();
        let mut top = TopK::new(k);
        for &(key, id) in &entries {
            top.insert(key, id);
        }
        let got = top.into_sorted();
        let want = oracle(&entries, k);
        // Keys must agree exactly; ids may differ only within tie groups.
        let got_keys: Vec<f64> = got.iter().map(|e| e.0).collect();
        let want_keys: Vec<f64> = want.iter().map(|e| e.0).collect();
        prop_assert_eq!(&got_keys, &want_keys);
        for (g, w) in got.iter().zip(&want) {
            if g.1 != w.1 {
                // Same key, different representative of a tie group: both
                // ids must genuinely carry that key.
                prop_assert_eq!(entries[g.1 as usize].0, g.0);
            }
            let _ = w;
        }
    }

    #[test]
    fn bound_never_admits_worse(
        keys in proptest::collection::vec(key_strategy(), 1..80),
        k in 1usize..8,
    ) {
        let mut top = TopK::new(k);
        for (i, &key) in keys.iter().enumerate() {
            let bound = top.bound();
            let before = top.len();
            let admitted = top.insert(key, i as u32);
            let should = !key.is_nan() && (before < k || key < bound);
            prop_assert_eq!(admitted, should);
            // The bound is monotonically non-increasing.
            prop_assert!(top.bound() <= bound);
        }
        let sorted = top.into_sorted();
        prop_assert!(sorted.windows(2).all(|w| w[0].0 <= w[1].0));
        prop_assert!(sorted.len() <= k);
    }
}
