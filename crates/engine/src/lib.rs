//! Engine layer: one query interface over every access method.
//!
//! The paper's evaluation (Sections 4–5) is comparative — IQ-tree against
//! VA-file, X-tree and sequential scan — so the repo runs all four behind a
//! single [`AccessMethod`] trait: `&self` queries (any number of threads
//! may share one index), per-query [`SimClock`] accounting, and a unified
//! [`QueryTrace`] so figure runners, the CLI and the conformance tests
//! iterate `&dyn AccessMethod` instead of special-casing each backend.
//!
//! The crate also hosts the pieces every method used to duplicate:
//!
//! * [`TopK`] — the bounded best-list for k-NN searches (NaN-rejecting),
//! * [`executor`] — the shared bound-driven query loop ([`Executor`],
//!   [`drive`], [`refine_ascending`]) and the [`QueryOptions`]
//!   approximation knobs (ε, `nprobes`, `refine_factor`, time budget),
//!   implemented once for all engines,
//! * [`knn_batch`] — the deterministic multi-threaded batch executor
//!   (results and accumulated clock statistics are identical for every
//!   thread count, including 1).

pub mod executor;
mod filter;
mod topk;
mod trace;

pub use executor::{
    drive, query_span_begin, query_span_end, refine_ascending, CandidateHeap, Executor, OrdKey,
    QueryOptions,
};
pub use filter::{knn_paginated, knn_paginated_opts, Filter, PageSpec};
pub use topk::TopK;
pub use trace::QueryTrace;

use iq_geometry::{Mbr, Metric};
use iq_obs::CostPrediction;
use iq_storage::SimClock;

/// A disk-resident multidimensional index answering exact similarity
/// queries.
///
/// All queries take `&self` plus a caller-owned [`SimClock`]: the clock
/// models one disk arm and is inherently per-query state, while the index
/// itself is immutable during reads. Implementations must be `Send + Sync`
/// so a single index can serve concurrent queries (see [`knn_batch`]).
pub trait AccessMethod: Send + Sync {
    /// Short stable identifier (`"iqtree"`, `"vafile"`, `"xtree"`,
    /// `"scan"`) used by the CLI, bench tables and JSON output.
    fn name(&self) -> &'static str;

    /// Dimensionality of the indexed points.
    fn dim(&self) -> usize;

    /// Number of indexed points.
    fn len(&self) -> usize;

    /// Whether the index holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The distance metric queries are answered under.
    fn metric(&self) -> Metric;

    /// Exact nearest neighbor of `q`, as `(id, distance)`.
    fn nearest(&self, clock: &mut SimClock, q: &[f32]) -> Option<(u32, f64)> {
        self.knn(clock, q, 1).pop()
    }

    /// The `k` exact nearest neighbors of `q`, ordered by increasing
    /// distance (ties broken arbitrarily).
    fn knn(&self, clock: &mut SimClock, q: &[f32], k: usize) -> Vec<(u32, f64)> {
        self.knn_traced(clock, q, k).0
    }

    /// The full k-NN entry point every other query method funnels into:
    /// the `k` nearest neighbors of `q` *among the points matching
    /// `filter`* (`None` = unfiltered), searched under the approximation
    /// knobs in `opts` ([`QueryOptions::default`] = exact), with the
    /// [`QueryTrace`] of what the search did.
    ///
    /// `k` counts results after filtering: the method keeps drawing
    /// candidates until `k` post-filter results are exact, or every
    /// matching point has been considered, or an approximation knob cuts
    /// the search short (reported via `QueryTrace::terminated_early`).
    ///
    /// Every engine implements this as a candidate *producer* into the
    /// shared bound-driven [`Executor`], so pruning, ε-termination,
    /// `nprobes` truncation, partial refinement and the time budget
    /// behave identically across methods — and with default options each
    /// engine is bit-for-bit identical to a sequential scan.
    fn knn_opts_traced(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
        filter: Option<&Filter>,
        opts: &QueryOptions,
    ) -> (Vec<(u32, f64)>, QueryTrace);

    /// Like [`AccessMethod::knn_opts_traced`], without the trace.
    fn knn_opts(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
        filter: Option<&Filter>,
        opts: &QueryOptions,
    ) -> Vec<(u32, f64)> {
        self.knn_opts_traced(clock, q, k, filter, opts).0
    }

    /// Like [`AccessMethod::knn`], additionally returning a
    /// [`QueryTrace`] of what the search did. Methods without a
    /// filter-and-refine structure report the fields that apply to them
    /// (a sequential scan processes every "page" and refines nothing).
    fn knn_traced(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
    ) -> (Vec<(u32, f64)>, QueryTrace) {
        self.knn_opts_traced(clock, q, k, None, &QueryOptions::EXACT)
    }

    /// Exact filtered k-NN with a trace: [`AccessMethod::knn_opts_traced`]
    /// under default (exact) options.
    fn knn_filtered_traced(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
        filter: Option<&Filter>,
    ) -> (Vec<(u32, f64)>, QueryTrace) {
        self.knn_opts_traced(clock, q, k, filter, &QueryOptions::EXACT)
    }

    /// Like [`AccessMethod::knn_filtered_traced`], without the trace.
    fn knn_filtered(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
        filter: Option<&Filter>,
    ) -> Vec<(u32, f64)> {
        self.knn_filtered_traced(clock, q, k, filter).0
    }

    /// Answers a micro-batch of queries sharing this index in one call:
    /// for each `queries[i]`, the `k` nearest neighbors among points
    /// matching `filter` under `opts`, with that query's trace — exactly
    /// what [`AccessMethod::knn_opts_traced`] would return, in query
    /// order.
    ///
    /// The default runs the queries one by one, each against a fresh
    /// reset clone of `clock` absorbed back in query order, so batch
    /// accounting is identical to a serial cold run. Engines with a
    /// quantized-domain representation override this to amortize work
    /// across the batch — the IQ-tree evaluates all queries against each
    /// decoded level-2 page in a single pass via the `DistTableBlock`
    /// multi-query kernels in `iq-quantize` — while
    /// preserving exact, per-query-identical *results* (simulated costs
    /// legitimately drop: one page read serves the whole batch).
    ///
    /// Callers must keep micro-batches at or below
    /// [`MAX_MICRO_BATCH`]; [`knn_batch`] does this automatically.
    fn knn_multi_opts_traced(
        &self,
        clock: &mut SimClock,
        queries: &[&[f32]],
        k: usize,
        filter: Option<&Filter>,
        opts: &QueryOptions,
    ) -> Vec<TracedResult> {
        queries
            .iter()
            .map(|q| {
                let mut c = clock.clone();
                c.reset();
                let out = self.knn_opts_traced(&mut c, q, k, filter, opts);
                clock.absorb(&c);
                out
            })
            .collect()
    }

    /// All points within `radius` of `q` under the index metric
    /// (unordered ids).
    fn range(&self, clock: &mut SimClock, q: &[f32], radius: f64) -> Vec<u32>;

    /// All points inside the query window (unordered ids).
    fn window(&self, clock: &mut SimClock, window: &Mbr) -> Vec<u32>;

    /// Cost-model prediction for a `k`-NN query under `opts`, if this
    /// method has one.
    ///
    /// Methods with an analytic cost model (the IQ-tree, eqs 2–23)
    /// override this so observability tooling and planners can compare
    /// predictions against the observed [`QueryTrace`] / clock — and see
    /// how the approximation knobs (`nprobes` page truncation, the
    /// `refine_factor` cap, the time budget) shrink the predicted cost.
    /// The default says "no model".
    fn cost_prediction(&self, k: usize, opts: &QueryOptions) -> Option<CostPrediction> {
        let _ = (k, opts);
        None
    }
}

/// Upper bound on the number of queries [`knn_batch`] hands to one
/// [`AccessMethod::knn_multi_opts_traced`] call. Matches the lane budget of
/// the quantize crate's multi-query distance tables (`MAX_BLOCK_QUERIES`):
/// engines may assume micro-batches never exceed it.
pub const MAX_MICRO_BATCH: usize = 8;

/// Per-micro-batch outcome inside the batch executor: the traced results
/// of each query in the micro-batch, and the clock that paid for them.
type BatchSlot = Option<(Vec<TracedResult>, SimClock)>;

/// One query's `(results, trace)` pair as returned by
/// [`knn_batch_traced`].
pub type TracedResult = (Vec<(u32, f64)>, QueryTrace);

/// Answers every query in `queries` with a `k`-NN search against `method`,
/// fanning the batch out over `threads` OS threads that share the index.
///
/// Each query runs against a fresh clone of `clock` (reset to zero), so
/// per-query costs are charged exactly as in a serial cold run; the
/// per-query clocks are then folded back into `clock` in query order via
/// [`SimClock::absorb`]. Results and accumulated statistics are therefore
/// identical for every thread count, including `1`.
pub fn knn_batch<M: AccessMethod + ?Sized>(
    method: &M,
    clock: &mut SimClock,
    queries: &[Vec<f32>],
    k: usize,
    threads: usize,
) -> Vec<Vec<(u32, f64)>> {
    knn_batch_traced(method, clock, queries, k, threads)
        .0
        .into_iter()
        .map(|(res, _)| res)
        .collect()
}

/// Like [`knn_batch`], but keeps the work reports: returns each query's
/// `(results, trace)` in query order plus the aggregate of all traces
/// (per-field sums via [`QueryTrace::merge`]). Determinism is the same as
/// [`knn_batch`]: results, traces and clock statistics are identical for
/// every thread count.
pub fn knn_batch_traced<M: AccessMethod + ?Sized>(
    method: &M,
    clock: &mut SimClock,
    queries: &[Vec<f32>],
    k: usize,
    threads: usize,
) -> (Vec<TracedResult>, QueryTrace) {
    knn_batch_opts_traced(
        method,
        clock,
        queries,
        k,
        threads,
        None,
        &QueryOptions::EXACT,
    )
}

/// The full batch entry point: queries are grouped into micro-batches of
/// at most [`MAX_MICRO_BATCH`] (in query order) and each micro-batch runs
/// [`AccessMethod::knn_multi_opts_traced`] with the same `filter` and
/// approximation `opts`, micro-batches fanned out over `threads` OS
/// threads. Clock accounting and determinism are as in [`knn_batch`] —
/// micro-batch formation and the per-micro-batch simulated clocks (and
/// thus any `time_budget` deadline, which is per-query) are independent
/// of the thread count.
pub fn knn_batch_opts_traced<M: AccessMethod + ?Sized>(
    method: &M,
    clock: &mut SimClock,
    queries: &[Vec<f32>],
    k: usize,
    threads: usize,
    filter: Option<&Filter>,
    opts: &QueryOptions,
) -> (Vec<TracedResult>, QueryTrace) {
    if queries.is_empty() {
        return (Vec::new(), QueryTrace::default());
    }
    let mut template = clock.clone();
    template.reset();
    let template = &template;
    // Micro-batches are formed in query order with a fixed size, so the
    // partition — and therefore every engine's amortization opportunity
    // and clock accounting — is independent of `threads`. Threads then
    // pick up whole micro-batches.
    let batches: Vec<&[Vec<f32>]> = queries.chunks(MAX_MICRO_BATCH).collect();
    let mut slots: Vec<BatchSlot> = Vec::new();
    slots.resize_with(batches.len(), || None);
    let chunk = batches.len().div_ceil(threads.max(1));
    std::thread::scope(|s| {
        for (bs, outs) in batches.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            s.spawn(move || {
                for (qs, out) in bs.iter().zip(outs.iter_mut()) {
                    let refs: Vec<&[f32]> = qs.iter().map(Vec::as_slice).collect();
                    let mut c = template.clone();
                    let res = method.knn_multi_opts_traced(&mut c, &refs, k, filter, opts);
                    debug_assert_eq!(res.len(), qs.len(), "one result per query");
                    *out = Some((res, c));
                }
            });
        }
    });
    let mut results = Vec::with_capacity(queries.len());
    let mut aggregate = QueryTrace::default();
    for slot in slots {
        let (res, c) = slot.expect("every spawned chunk fills its slots");
        clock.absorb(&c);
        for (r, trace) in res {
            aggregate.merge(&trace);
            results.push((r, trace));
        }
    }
    (results, aggregate)
}

// `&dyn AccessMethod` and boxed methods must stay usable across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<dyn AccessMethod>();
};

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy in-memory method, enough to exercise the executor.
    struct Flat {
        dim: usize,
        pts: Vec<Vec<f32>>,
    }

    impl AccessMethod for Flat {
        fn name(&self) -> &'static str {
            "flat"
        }
        fn dim(&self) -> usize {
            self.dim
        }
        fn len(&self) -> usize {
            self.pts.len()
        }
        fn metric(&self) -> Metric {
            Metric::Euclidean
        }
        fn knn_opts_traced(
            &self,
            clock: &mut SimClock,
            q: &[f32],
            k: usize,
            filter: Option<&Filter>,
            _opts: &QueryOptions,
        ) -> (Vec<(u32, f64)>, QueryTrace) {
            clock.charge_dist_evals(self.dim, self.pts.len() as u64);
            let mut top = TopK::new(k);
            for (i, p) in self.pts.iter().enumerate() {
                if filter.is_none_or(|f| f.matches(i as u32)) {
                    top.insert(Metric::Euclidean.distance_key(p, q), i as u32);
                }
            }
            let trace = QueryTrace {
                pages_processed: 1,
                refinements: k as u64,
                ..QueryTrace::default()
            };
            (top.into_results(Metric::Euclidean), trace)
        }
        fn range(&self, _clock: &mut SimClock, q: &[f32], radius: f64) -> Vec<u32> {
            (0..self.pts.len() as u32)
                .filter(|&i| Metric::Euclidean.distance(&self.pts[i as usize], q) <= radius)
                .collect()
        }
        fn window(&self, _clock: &mut SimClock, window: &Mbr) -> Vec<u32> {
            (0..self.pts.len() as u32)
                .filter(|&i| window.contains_point(&self.pts[i as usize]))
                .collect()
        }
    }

    fn flat(n: usize) -> Flat {
        Flat {
            dim: 2,
            pts: (0..n).map(|i| vec![i as f32, (i * 7 % n) as f32]).collect(),
        }
    }

    #[test]
    fn batch_is_thread_count_invariant() {
        let m = flat(400);
        let queries: Vec<Vec<f32>> = (0..37).map(|i| vec![i as f32, (i * 3) as f32]).collect();
        let mut c1 = SimClock::default();
        let r1 = knn_batch(&m, &mut c1, &queries, 5, 1);
        for threads in [2, 3, 8] {
            let mut c = SimClock::default();
            let r = knn_batch(&m, &mut c, &queries, 5, threads);
            assert_eq!(r, r1, "{threads} threads");
            assert_eq!(c.stats(), c1.stats(), "{threads} threads");
            assert_eq!(c.io_time(), c1.io_time(), "{threads} threads");
        }
    }

    #[test]
    fn traced_batch_returns_per_query_and_aggregated_traces() {
        let m = flat(100);
        let queries: Vec<Vec<f32>> = (0..9).map(|i| vec![i as f32, i as f32]).collect();
        let mut c1 = SimClock::default();
        let (per_query, agg) = knn_batch_traced(&m, &mut c1, &queries, 4, 1);
        assert_eq!(per_query.len(), queries.len());
        let mut expect = QueryTrace::default();
        for (res, trace) in &per_query {
            assert_eq!(res.len(), 4);
            assert_eq!(trace.pages_processed, 1);
            assert_eq!(trace.refinements, 4);
            expect.merge(trace);
        }
        assert_eq!(agg, expect, "aggregate is the per-field sum");
        for threads in [2, 5] {
            let mut c = SimClock::default();
            let (pq, a) = knn_batch_traced(&m, &mut c, &queries, 4, threads);
            assert_eq!(pq, per_query, "{threads} threads");
            assert_eq!(a, agg, "{threads} threads");
            assert_eq!(c.stats(), c1.stats(), "{threads} threads");
        }
    }

    #[test]
    fn default_multi_query_matches_per_query_calls() {
        let m = flat(150);
        let queries: Vec<Vec<f32>> = (0..MAX_MICRO_BATCH + 3)
            .map(|i| vec![i as f32, (i * 5) as f32])
            .collect();
        let refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
        let mut mc = SimClock::default();
        let multi = m.knn_multi_opts_traced(&mut mc, &refs, 6, None, &QueryOptions::EXACT);
        let mut sc = SimClock::default();
        for (q, got) in queries.iter().zip(&multi) {
            let mut c = sc.clone();
            c.reset();
            let want = m.knn_opts_traced(&mut c, q, 6, None, &QueryOptions::EXACT);
            sc.absorb(&c);
            assert_eq!(*got, want);
        }
        assert_eq!(mc.stats(), sc.stats());
        assert_eq!(mc.total_time(), sc.total_time());
    }

    #[test]
    fn cost_prediction_defaults_to_none() {
        let m = flat(10);
        assert!(m.cost_prediction(3, &QueryOptions::default()).is_none());
    }

    #[test]
    fn batch_works_through_dyn_trait_object() {
        let m = flat(50);
        let dynm: &dyn AccessMethod = &m;
        let mut clock = SimClock::default();
        let r = knn_batch(dynm, &mut clock, &[vec![0.0, 0.0]], 3, 4);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].len(), 3);
        assert_eq!(r[0][0].0, 0);
    }

    #[test]
    fn empty_batch_returns_empty() {
        let m = flat(10);
        let mut clock = SimClock::default();
        assert!(knn_batch(&m, &mut clock, &[], 3, 4).is_empty());
    }

    #[test]
    fn default_nearest_delegates_to_knn() {
        let m = flat(10);
        let mut clock = SimClock::default();
        let nn = m.nearest(&mut clock, &[3.1, 1.0]).expect("non-empty");
        assert_eq!(nn.0, 3);
    }

    /// Filter-then-scan oracle over the Flat test method.
    fn oracle(m: &Flat, q: &[f32], k: usize, f: &Filter) -> Vec<(u32, f64)> {
        let mut all: Vec<(u32, f64)> = m
            .pts
            .iter()
            .enumerate()
            .filter(|&(i, _)| f.matches(i as u32))
            .map(|(i, p)| (i as u32, Metric::Euclidean.distance(p, q)))
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN").then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn filtered_knn_matches_filter_then_scan_oracle() {
        let m = flat(200);
        let mut clock = SimClock::default();
        for (label, f) in [
            ("sparse", Filter::from_fn(200, |id| id % 17 == 0)),
            ("half", Filter::from_fn(200, |id| id % 2 == 0)),
            ("dense", Filter::from_fn(200, |id| id % 10 != 0)),
        ] {
            for k in [1usize, 5, 30] {
                let q = vec![13.0f32, 40.0];
                let got = m.knn_filtered(&mut clock, &q, k, Some(&f));
                let want = oracle(&m, &q, k, &f);
                assert_eq!(got.len(), want.len(), "{label} k={k}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.1.to_bits(), w.1.to_bits(), "{label} k={k}");
                }
                assert!(got.iter().all(|&(id, _)| f.matches(id)), "{label} k={k}");
            }
        }
    }

    #[test]
    fn tiny_filter_returns_fewer_than_k() {
        let m = flat(50);
        let mut clock = SimClock::default();
        let f = Filter::from_ids(50, [49u32]);
        let got = m.knn_filtered(&mut clock, &[0.0, 0.0], 5, Some(&f));
        assert_eq!(got.len(), 1, "only one point matches");
        assert_eq!(got[0].0, 49);
    }

    #[test]
    fn empty_filter_returns_empty() {
        let m = flat(50);
        let mut clock = SimClock::default();
        let f = Filter::from_fn(50, |_| false);
        assert!(m
            .knn_filtered(&mut clock, &[0.0, 0.0], 5, Some(&f))
            .is_empty());
    }

    #[test]
    fn none_filter_is_plain_knn() {
        let m = flat(60);
        let mut clock = SimClock::default();
        let a = m.knn(&mut clock, &[7.0, 3.0], 6);
        let b = m.knn_filtered(&mut clock, &[7.0, 3.0], 6, None);
        assert_eq!(a, b);
    }

    #[test]
    fn pagination_slices_the_same_universe() {
        let m = flat(120);
        let mut clock = SimClock::default();
        let f = Filter::from_fn(120, |id| id % 3 != 0);
        let q = vec![31.0f32, 77.0];
        let full = knn_paginated(&m, &mut clock, &q, Some(&f), &PageSpec::top(20));
        assert_eq!(full.len(), 20);
        // Disjoint offset windows tile the full list exactly.
        let mut stitched = Vec::new();
        for offset in (0..20).step_by(7) {
            let page = knn_paginated(
                &m,
                &mut clock,
                &q,
                Some(&f),
                &PageSpec {
                    k: 20,
                    offset,
                    limit: Some(7),
                },
            );
            stitched.extend(page);
        }
        assert_eq!(stitched, full);
        // Offset past the end is empty, not an error.
        let past = knn_paginated(
            &m,
            &mut clock,
            &q,
            Some(&f),
            &PageSpec {
                k: 20,
                offset: 25,
                limit: None,
            },
        );
        assert!(past.is_empty());
    }
}
