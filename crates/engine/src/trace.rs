//! The unified per-query work report.

/// What a nearest-neighbor query actually did — returned by
/// [`AccessMethod::knn_traced`](crate::AccessMethod::knn_traced) for
/// inspection, tuning and tests.
///
/// The fields are written from the IQ-tree's three-level perspective but
/// apply to every method: a VA-file "page" is an approximation block, a
/// sequential scan processes all pages and refines nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// Quantized pages decoded and processed.
    pub pages_processed: u64,
    /// Pages loaded but skipped (over-read filler or already prunable).
    pub pages_skipped: u64,
    /// Contiguous read sweeps the scheduler issued.
    pub runs: u64,
    /// Exact-point look-ups (third-level refinements).
    pub refinements: u64,
    /// Point approximations that entered the priority list.
    pub approx_enqueued: u64,
    /// Quantized blocks that failed verification or decoding and were
    /// answered from the page's exact (level-3) region instead.
    pub quant_fallbacks: u64,
    /// Pages lost entirely (corrupt level-2 block with no readable exact
    /// backing): their points are missing from the result.
    pub pages_lost: u64,
    /// Individual refinements skipped because the exact entry stayed
    /// unreadable after retries.
    pub points_skipped: u64,
}

impl QueryTrace {
    /// Whether any corruption degraded this query's result or cost
    /// (fallbacks recover full precision; lost pages and skipped points
    /// mean the result may be partial).
    pub fn degraded(&self) -> bool {
        self.quant_fallbacks > 0 || self.pages_lost > 0 || self.points_skipped > 0
    }

    /// Whether the result is possibly missing points (as opposed to merely
    /// having cost more to compute).
    pub fn partial(&self) -> bool {
        self.pages_lost > 0 || self.points_skipped > 0
    }
}
