//! The unified per-query work report.

/// What a nearest-neighbor query actually did — returned by
/// [`AccessMethod::knn_traced`](crate::AccessMethod::knn_traced) for
/// inspection, tuning and tests.
///
/// The fields are written from the IQ-tree's three-level perspective but
/// apply to every method: a VA-file "page" is an approximation block, a
/// sequential scan processes all pages and refines nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// Quantized pages decoded and processed.
    pub pages_processed: u64,
    /// Pages loaded but skipped (over-read filler or already prunable).
    pub pages_skipped: u64,
    /// Contiguous read sweeps the scheduler issued.
    pub runs: u64,
    /// Exact-point look-ups (third-level refinements).
    pub refinements: u64,
    /// Point approximations that entered the priority list.
    pub approx_enqueued: u64,
    /// Quantized blocks that failed verification or decoding and were
    /// answered from the page's exact (level-3) region instead.
    pub quant_fallbacks: u64,
    /// Pages lost entirely (corrupt level-2 block with no readable exact
    /// backing): their points are missing from the result.
    pub pages_lost: u64,
    /// Individual refinements skipped because the exact entry stayed
    /// unreadable after retries.
    pub points_skipped: u64,
    /// Candidates dropped by an approximation knob (`nprobes` truncation
    /// or the `refine_factor` cap), not by the pruning bound.
    pub candidates_skipped: u64,
    /// `1` if the search stopped before its exact termination condition
    /// (ε-termination, time budget, or a knob cap fired); `0` for an
    /// exact-complete search. Sums to a count of early-terminated
    /// queries when traces are merged.
    pub terminated_early: u64,
}

impl QueryTrace {
    /// Whether any corruption degraded this query's result or cost
    /// (fallbacks recover full precision; lost pages and skipped points
    /// mean the result may be partial).
    pub fn degraded(&self) -> bool {
        self.quant_fallbacks > 0 || self.pages_lost > 0 || self.points_skipped > 0
    }

    /// Whether the result is possibly missing points (as opposed to merely
    /// having cost more to compute).
    pub fn partial(&self) -> bool {
        self.pages_lost > 0 || self.points_skipped > 0
    }

    /// The counters as `(name, value)` pairs in declaration order, so
    /// exposition code (trace-tree span counters, JSON output) keeps the
    /// field names in one place.
    pub fn fields(&self) -> [(&'static str, u64); 10] {
        [
            ("pages_processed", self.pages_processed),
            ("pages_skipped", self.pages_skipped),
            ("runs", self.runs),
            ("refinements", self.refinements),
            ("approx_enqueued", self.approx_enqueued),
            ("quant_fallbacks", self.quant_fallbacks),
            ("pages_lost", self.pages_lost),
            ("points_skipped", self.points_skipped),
            ("candidates_skipped", self.candidates_skipped),
            ("terminated_early", self.terminated_early),
        ]
    }

    /// Adds `other`'s counters into `self`, e.g. folding per-query traces
    /// into a batch aggregate.
    pub fn merge(&mut self, other: &QueryTrace) {
        self.pages_processed += other.pages_processed;
        self.pages_skipped += other.pages_skipped;
        self.runs += other.runs;
        self.refinements += other.refinements;
        self.approx_enqueued += other.approx_enqueued;
        self.quant_fallbacks += other.quant_fallbacks;
        self.pages_lost += other.pages_lost;
        self.points_skipped += other.points_skipped;
        self.candidates_skipped += other.candidates_skipped;
        self.terminated_early += other.terminated_early;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_field() {
        let a = QueryTrace {
            pages_processed: 1,
            pages_skipped: 2,
            runs: 3,
            refinements: 4,
            approx_enqueued: 5,
            quant_fallbacks: 6,
            pages_lost: 7,
            points_skipped: 8,
            candidates_skipped: 9,
            terminated_early: 1,
        };
        let mut total = a;
        total.merge(&a);
        assert_eq!(
            total,
            QueryTrace {
                pages_processed: 2,
                pages_skipped: 4,
                runs: 6,
                refinements: 8,
                approx_enqueued: 10,
                quant_fallbacks: 12,
                pages_lost: 14,
                points_skipped: 16,
                candidates_skipped: 18,
                terminated_early: 2,
            }
        );
        let mut id = a;
        id.merge(&QueryTrace::default());
        assert_eq!(id, a);
    }
}
