//! The bounded best-list every k-NN search shares.

use iq_geometry::Metric;

/// A bounded top-k list over `(key, id)` pairs, smallest keys kept.
///
/// Keys are distance *keys* (monotone transforms of distances, e.g.
/// squared L2) — whatever the caller compares in. The list is maintained
/// sorted ascending, capped at `k`; inserts beyond the current bound are
/// rejected in O(1), accepted inserts cost O(k) (k is small — this beats a
/// heap in practice and keeps the contents ordered for free).
///
/// NaN keys are rejected outright: a NaN distance means a broken input
/// coordinate, and silently admitting it would poison the bound
/// comparison for the rest of the query.
#[derive(Clone, Debug)]
pub struct TopK {
    k: usize,
    best: Vec<(f64, u32)>,
}

impl TopK {
    /// An empty list that will retain at most `k` entries.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            best: Vec::with_capacity(k.min(1024) + 1),
        }
    }

    /// The pruning bound: the k-th best key so far, or `+∞` while the
    /// list is not yet full. Anything with a key `>=` this cannot enter.
    pub fn bound(&self) -> f64 {
        if self.best.len() < self.k {
            f64::INFINITY
        } else {
            match self.best.last() {
                Some(&(key, _)) => key,
                None => f64::NEG_INFINITY, // k == 0: nothing ever enters
            }
        }
    }

    /// Offers `(key, id)`; keeps it only if it beats the bound. Returns
    /// whether the entry was admitted. NaN keys are always rejected.
    pub fn insert(&mut self, key: f64, id: u32) -> bool {
        if key.is_nan() || !(self.best.len() < self.k || key < self.bound()) {
            return false;
        }
        let pos = self.best.partition_point(|&(d, _)| d < key);
        self.best.insert(pos, (key, id));
        if self.best.len() > self.k {
            self.best.pop();
        }
        true
    }

    /// Current number of retained entries (`<= k`).
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }

    /// The retained `(key, id)` pairs, ascending by key.
    pub fn into_sorted(self) -> Vec<(f64, u32)> {
        self.best
    }

    /// The retained entries as `(id, distance)` results, ascending by
    /// distance, mapping keys back through `metric`.
    pub fn into_results(self, metric: Metric) -> Vec<(u32, f64)> {
        self.best
            .into_iter()
            .map(|(key, id)| (id, metric.key_to_distance(key)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest_sorted() {
        let mut top = TopK::new(3);
        for (key, id) in [(5.0, 5), (1.0, 1), (4.0, 4), (2.0, 2), (3.0, 3)] {
            top.insert(key, id);
        }
        assert_eq!(top.into_sorted(), vec![(1.0, 1), (2.0, 2), (3.0, 3)]);
    }

    #[test]
    fn bound_tracks_kth_best() {
        let mut top = TopK::new(2);
        assert_eq!(top.bound(), f64::INFINITY);
        top.insert(3.0, 0);
        assert_eq!(top.bound(), f64::INFINITY, "not full yet");
        top.insert(1.0, 1);
        assert_eq!(top.bound(), 3.0);
        assert!(!top.insert(3.0, 2), "equal to bound is rejected");
        assert!(top.insert(2.0, 2));
        assert_eq!(top.bound(), 2.0);
    }

    #[test]
    fn nan_is_rejected() {
        let mut top = TopK::new(2);
        assert!(!top.insert(f64::NAN, 9));
        top.insert(1.0, 1);
        assert!(!top.insert(f64::NAN, 9));
        assert_eq!(top.into_sorted(), vec![(1.0, 1)]);
    }

    #[test]
    fn zero_k_admits_nothing() {
        let mut top = TopK::new(0);
        assert!(!top.insert(1.0, 1));
        assert!(top.is_empty());
        assert!(top.into_sorted().is_empty());
    }

    #[test]
    fn into_results_maps_keys_to_distances() {
        let mut top = TopK::new(2);
        // Euclidean keys are squared distances.
        top.insert(4.0, 7);
        top.insert(9.0, 8);
        assert_eq!(
            top.into_results(Metric::Euclidean),
            vec![(7, 2.0), (8, 3.0)]
        );
    }
}
