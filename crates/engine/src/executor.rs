//! The shared bound-driven query executor.
//!
//! Every access method in this repo searches the same way: a stream of
//! candidates, each carrying a lower bound on its true distance key, feeds
//! a [`TopK`] whose k-th best exact key is the pruning bound δ. A
//! candidate whose lower bound reaches δ can be discarded; once the
//! *cheapest remaining* candidate is prunable (the streams below deliver
//! candidates in ascending lower-bound order) the search is provably
//! complete. This module owns that control flow — pruning,
//! ε-early-termination, `nprobes` candidate truncation, `refine_factor`
//! partial refinement and the sim-time budget are implemented exactly
//! once — and the engines reduce to *producers*:
//!
//! * the IQ-tree's directory descent and level-2 table scans push pages
//!   and point approximations into [`drive`],
//! * the X-tree's best-first descent pushes directory nodes and data
//!   pages into [`drive`],
//! * the VA-file's approximation sweep hands its sorted candidate list to
//!   [`refine_ascending`],
//! * the sequential scan offers every exact point directly.
//!
//! With [`QueryOptions::default`] all knobs are neutral and the executor
//! reduces bit-for-bit to the exact branch-and-bound loop each engine
//! used to hand-roll (`prune_scale == 1.0` makes every comparison the
//! same float comparison; the caps start at `u64::MAX`; the deadline is
//! `+∞`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{Filter, QueryTrace, TopK};
use iq_geometry::Metric;
use iq_storage::SimClock;

/// Opens the engine root span of one query on a tracing clock: the span
/// is named after the engine and annotated with `k`, every non-neutral
/// approximation knob and the filter's match count. A no-op (one branch)
/// when the clock is not tracing. Pair with [`query_span_end`].
pub fn query_span_begin(
    clock: &mut SimClock,
    engine: &str,
    k: usize,
    filter: Option<&Filter>,
    opts: &QueryOptions,
) {
    if !clock.tracing() {
        return;
    }
    clock.span_begin(engine);
    clock.span_attr("k", &k);
    if opts.epsilon > 0.0 {
        clock.span_attr("epsilon", &opts.epsilon);
    }
    if let Some(m) = opts.nprobes {
        clock.span_attr("nprobes", &m);
    }
    if opts.refine_factor >= 2 {
        clock.span_attr("refine_factor", &opts.refine_factor);
    }
    if let Some(b) = opts.time_budget {
        clock.span_attr("time_budget", &b);
    }
    if let Some(f) = filter {
        clock.span_attr("filter_matches", &f.matching());
    }
}

/// Closes the engine root span opened by [`query_span_begin`], first
/// recording every non-zero [`QueryTrace`] counter on it. A no-op when
/// the clock is not tracing.
pub fn query_span_end(clock: &mut SimClock, trace: &QueryTrace) {
    if !clock.tracing() {
        return;
    }
    for (name, v) in trace.fields() {
        clock.span_count(name, v);
    }
    clock.span_end();
}

/// Approximation knobs for a k-NN search. The default is **exact**: every
/// engine must return the same bits as a sequential scan when given
/// `QueryOptions::default()`.
///
/// The knobs compose; each one bounds the search from a different side:
///
/// * `epsilon` — relative-error early termination. The search stops as
///   soon as no unexplored candidate could improve the k-th answer by
///   more than a factor `1 + epsilon`: every returned distance is within
///   `(1 + epsilon)×` of the true k-th-NN distance.
/// * `nprobes` — candidate-count truncation: at most this many
///   approximation-level candidates (quantized pages for the IQ-tree,
///   data pages for the X-tree, VA-file candidate entries) are probed, in
///   best-bound-first order — the classic IVF `nprobes` trade-off.
/// * `refine_factor` — partial refinement: at most `k × refine_factor`
///   exact-point look-ups are spent (Lance semantics: larger is closer
///   to exact; `1` means *unlimited*, i.e. full bound-driven refinement,
///   which already stops after few look-ups on well-clustered data).
/// * `time_budget` — best answer within a simulated-seconds budget; the
///   search returns whatever the [`TopK`] holds when the clock runs out.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryOptions {
    /// Relative error bound for early termination (`0.0` = exact).
    pub epsilon: f64,
    /// Maximum approximation-level candidates to probe (`None` = all).
    pub nprobes: Option<u64>,
    /// Exact refinements cap multiplier (`1` = unlimited/exact).
    pub refine_factor: u32,
    /// Simulated-time budget in seconds (`None` = unlimited).
    pub time_budget: Option<f64>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self::EXACT
    }
}

impl QueryOptions {
    /// The exact search: every knob neutral.
    pub const EXACT: QueryOptions = QueryOptions {
        epsilon: 0.0,
        nprobes: None,
        refine_factor: 1,
        time_budget: None,
    };

    /// Whether these options demand the exact answer (every knob at a
    /// value that cannot change the result).
    pub fn is_exact(&self) -> bool {
        self.epsilon == 0.0
            && self.nprobes.is_none_or(|m| m == u64::MAX)
            && self.refine_factor <= 1
            && self.time_budget.is_none_or(|b| b == f64::INFINITY)
    }

    /// Validates ranges (the CLI calls this before running a query).
    pub fn validate(&self) -> Result<(), String> {
        if !self.epsilon.is_finite() || self.epsilon < 0.0 {
            return Err(format!(
                "epsilon must be finite and >= 0, got {}",
                self.epsilon
            ));
        }
        if self.nprobes == Some(0) {
            return Err("nprobes must be at least 1".to_string());
        }
        if self.refine_factor == 0 {
            return Err("refine-factor must be at least 1".to_string());
        }
        if let Some(b) = self.time_budget {
            if b.is_nan() || b <= 0.0 {
                return Err(format!("time budget must be > 0, got {b}"));
            }
        }
        Ok(())
    }
}

/// A total order over distance keys for candidate heaps. Keys come from
/// MINDIST/metric computations over finite coordinates and are never NaN.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrdKey(pub f64);

impl Eq for OrdKey {}

impl PartialOrd for OrdKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("distance keys are never NaN")
    }
}

/// A min-heap of `(lower_bound, candidate)` items, popped cheapest-first
/// by [`drive`].
pub type CandidateHeap<T> = BinaryHeap<Reverse<(OrdKey, T)>>;

/// One k-NN search's mutable core: the shared [`TopK`], the pruning
/// bound, the knob budgets and the [`QueryTrace`]. Engines construct one
/// per query, stream candidates through [`drive`] / [`refine_ascending`]
/// / [`Executor::offer`], and finish with [`Executor::into_results`].
pub struct Executor {
    k: usize,
    top: TopK,
    /// Key-space factor of `(1 + epsilon)`: pruning compares lower
    /// bounds against `bound() / prune_scale`. Exactly `1.0` when
    /// `epsilon == 0` (for every metric, `distance_to_key(1.0) == 1.0`),
    /// so exact-mode comparisons are bit-identical to `lb >= bound()`.
    prune_scale: f64,
    probes_left: u64,
    refines_left: u64,
    deadline: f64,
    /// The work report, written by the executor and the producing engine.
    pub trace: QueryTrace,
    stopped: bool,
}

impl Executor {
    /// Sets up a `k`-NN search under `opts`. The time budget (if any)
    /// starts at the clock's *current* simulated time, so construct the
    /// executor at query entry.
    pub fn new(metric: Metric, k: usize, opts: &QueryOptions, clock: &SimClock) -> Self {
        let prune_scale = metric.distance_to_key(1.0 + opts.epsilon.max(0.0));
        let refines_left = if opts.refine_factor >= 2 {
            (k as u64).saturating_mul(u64::from(opts.refine_factor))
        } else {
            u64::MAX
        };
        let deadline = match opts.time_budget {
            Some(b) if b.is_finite() => clock.total_time() + b,
            _ => f64::INFINITY,
        };
        Self {
            k,
            top: TopK::new(k),
            prune_scale,
            probes_left: opts.nprobes.unwrap_or(u64::MAX),
            refines_left,
            deadline,
            trace: QueryTrace::default(),
            stopped: false,
        }
    }

    /// The `k` this search was asked for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Results currently held (at most `k`).
    pub fn len(&self) -> usize {
        self.top.len()
    }

    /// Whether no result has been found yet.
    pub fn is_empty(&self) -> bool {
        self.top.is_empty()
    }

    /// The pruning bound δ: the k-th best exact key so far (`+∞` while
    /// fewer than `k` results are held).
    pub fn bound(&self) -> f64 {
        self.top.bound()
    }

    /// The effective pruning threshold `δ / (1 + ε)` in key space.
    /// Division by the exact-mode scale `1.0` is a bit-exact identity.
    pub fn prune_threshold(&self) -> f64 {
        self.top.bound() / self.prune_scale
    }

    /// Whether a candidate whose distance key is at least `lower` can be
    /// discarded without changing the (ε-approximate) answer.
    pub fn is_pruned(&self, lower: f64) -> bool {
        lower >= self.prune_threshold()
    }

    /// Offers an exact result; returns whether it entered the top-k.
    pub fn offer(&mut self, key: f64, id: u32) -> bool {
        self.top.insert(key, id)
    }

    /// Whether the simulated-time budget is spent.
    pub fn out_of_time(&self, clock: &SimClock) -> bool {
        clock.total_time() >= self.deadline
    }

    /// Whether the `nprobes` budget is spent.
    pub fn probes_exhausted(&self) -> bool {
        self.probes_left == 0
    }

    /// Remaining `nprobes` budget (`u64::MAX` when unlimited). I/O
    /// planners use this to avoid prefetching candidates the probe
    /// budget can never decode.
    pub fn probes_remaining(&self) -> u64 {
        self.probes_left
    }

    /// Takes one unit of `nprobes` budget. On exhaustion the candidate
    /// is counted skipped and the search marked early-terminated.
    pub fn try_probe(&mut self) -> bool {
        if self.probes_left == 0 {
            self.trace.candidates_skipped += 1;
            self.trace.terminated_early = 1;
            false
        } else {
            self.probes_left -= 1;
            true
        }
    }

    /// Whether the `refine_factor` budget is spent.
    pub fn refines_exhausted(&self) -> bool {
        self.refines_left == 0
    }

    /// Refines one candidate: `fetch` reads the exact point and returns
    /// its distance key (or `None` if the entry is unreadable, which
    /// counts as a skipped point, not a failure). Honors the
    /// `refine_factor` cap. Returns whether an exact key was offered.
    pub fn refine_with(
        &mut self,
        clock: &mut SimClock,
        id: u32,
        fetch: impl FnOnce(&mut SimClock) -> Option<f64>,
    ) -> bool {
        if self.refines_left == 0 {
            self.trace.candidates_skipped += 1;
            self.trace.terminated_early = 1;
            return false;
        }
        self.refines_left -= 1;
        match fetch(clock) {
            Some(key) => {
                self.trace.refinements += 1;
                self.offer(key, id);
                true
            }
            None => {
                self.trace.points_skipped += 1;
                false
            }
        }
    }

    /// Records `n` candidates dropped by a knob (e.g. `nprobes`
    /// truncation of a sorted candidate list) and marks the search
    /// early-terminated.
    pub fn skip_candidates(&mut self, n: u64) {
        if n > 0 {
            self.trace.candidates_skipped += n;
            self.trace.terminated_early = 1;
        }
    }

    /// Marks the search as stopped before its exact termination
    /// condition (ε fired, budget ran out, a cap truncated the stream).
    pub fn note_early_termination(&mut self) {
        self.trace.terminated_early = 1;
    }

    /// Stops the drive loop after the current step (also marks the
    /// search early-terminated).
    pub fn stop(&mut self) {
        self.stopped = true;
        self.trace.terminated_early = 1;
    }

    /// Whether [`Executor::stop`] was called.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// Finishes the search: the results ordered by increasing distance,
    /// plus the trace.
    pub fn into_results(self, metric: Metric) -> (Vec<(u32, f64)>, QueryTrace) {
        (self.top.into_results(metric), self.trace)
    }
}

/// The best-first loop shared by the heap-driven engines (IQ-tree,
/// X-tree): pops the cheapest candidate, terminates when it is prunable
/// (exact completion if the bound itself is reached, ε-termination
/// otherwise) or the time budget is spent, and otherwise hands it to
/// `step`, which may push further candidates.
pub fn drive<T: Ord>(
    exec: &mut Executor,
    clock: &mut SimClock,
    heap: &mut CandidateHeap<T>,
    mut step: impl FnMut(&mut Executor, &mut SimClock, f64, T, &mut CandidateHeap<T>),
) {
    while let Some(Reverse((OrdKey(key), item))) = heap.pop() {
        if exec.is_pruned(key) {
            if key < exec.bound() {
                // Only the ε slack made this prunable: approximate stop.
                exec.note_early_termination();
            }
            break;
        }
        if exec.out_of_time(clock) {
            exec.note_early_termination();
            break;
        }
        step(exec, clock, key, item, heap);
        if exec.stopped {
            break;
        }
    }
}

/// The sorted-sweep loop of filter-and-refine engines (VA-file):
/// `candidates` is `(lower_bound, id)` in ascending lower-bound order;
/// each is refined through `fetch` until the cheapest remaining one is
/// prunable or a budget runs out.
pub fn refine_ascending(
    exec: &mut Executor,
    clock: &mut SimClock,
    candidates: &[(f64, u32)],
    mut fetch: impl FnMut(&mut SimClock, u32) -> Option<f64>,
) {
    for (i, &(lower, id)) in candidates.iter().enumerate() {
        if exec.is_pruned(lower) {
            if lower < exec.bound() {
                exec.note_early_termination();
            }
            break;
        }
        if exec.out_of_time(clock) {
            exec.note_early_termination();
            break;
        }
        if exec.refines_exhausted() {
            exec.skip_candidates((candidates.len() - i) as u64);
            break;
        }
        exec.refine_with(clock, id, |c| fetch(c, id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_exec(k: usize) -> Executor {
        Executor::new(
            Metric::Euclidean,
            k,
            &QueryOptions::default(),
            &SimClock::default(),
        )
    }

    #[test]
    fn default_options_are_exact_and_valid() {
        let d = QueryOptions::default();
        assert!(d.is_exact());
        assert!(d.validate().is_ok());
        assert_eq!(d, QueryOptions::EXACT);
        // Explicitly-neutral settings are exact too.
        let neutral = QueryOptions {
            epsilon: 0.0,
            nprobes: Some(u64::MAX),
            refine_factor: 1,
            time_budget: Some(f64::INFINITY),
        };
        assert!(neutral.is_exact());
        // And any turned knob is not.
        assert!(!QueryOptions { epsilon: 0.1, ..d }.is_exact());
        assert!(!QueryOptions {
            nprobes: Some(4),
            ..d
        }
        .is_exact());
        assert!(!QueryOptions {
            refine_factor: 3,
            ..d
        }
        .is_exact());
        assert!(!QueryOptions {
            time_budget: Some(1.0),
            ..d
        }
        .is_exact());
    }

    #[test]
    fn validate_rejects_bad_ranges() {
        let d = QueryOptions::default();
        assert!(QueryOptions { epsilon: -0.5, ..d }.validate().is_err());
        assert!(QueryOptions {
            epsilon: f64::NAN,
            ..d
        }
        .validate()
        .is_err());
        assert!(QueryOptions {
            nprobes: Some(0),
            ..d
        }
        .validate()
        .is_err());
        assert!(QueryOptions {
            refine_factor: 0,
            ..d
        }
        .validate()
        .is_err());
        assert!(QueryOptions {
            time_budget: Some(0.0),
            ..d
        }
        .validate()
        .is_err());
        assert!(QueryOptions {
            time_budget: Some(-1.0),
            ..d
        }
        .validate()
        .is_err());
    }

    #[test]
    fn exact_mode_prunes_exactly_at_the_bound() {
        let mut e = exact_exec(2);
        assert!(!e.is_pruned(1e300), "infinite bound prunes nothing");
        e.offer(4.0, 1);
        e.offer(9.0, 2);
        assert_eq!(e.prune_threshold().to_bits(), 9.0f64.to_bits());
        assert!(e.is_pruned(9.0), "lb == bound is prunable");
        assert!(!e.is_pruned(8.999999));
    }

    #[test]
    fn epsilon_tightens_the_threshold() {
        let opts = QueryOptions {
            epsilon: 1.0,
            ..QueryOptions::default()
        };
        let mut e = Executor::new(Metric::Euclidean, 1, &opts, &SimClock::default());
        e.offer(16.0, 7); // distance 4
                          // Key-space scale is (1+ε)² = 4 for Euclidean: threshold 16/4.
        assert!((e.prune_threshold() - 4.0).abs() < 1e-12);
        assert!(e.is_pruned(4.0), "within ε of the bound: prunable");
        assert!(!e.is_pruned(3.9));
    }

    #[test]
    fn drive_pops_in_ascending_key_order_and_stops_at_the_bound() {
        let mut e = exact_exec(1);
        let mut heap: CandidateHeap<u32> = CandidateHeap::new();
        for (key, id) in [(3.0, 3), (1.0, 1), (2.0, 2), (50.0, 50)] {
            heap.push(Reverse((OrdKey(key), id)));
        }
        let mut clock = SimClock::default();
        let mut seen = Vec::new();
        drive(&mut e, &mut clock, &mut heap, |e, _c, key, id, _h| {
            seen.push(id);
            e.offer(key, id);
        });
        // After offering key=1.0 the bound is 1.0; 2.0 is popped and
        // pruned immediately.
        assert_eq!(seen, vec![1]);
        assert_eq!(e.trace.terminated_early, 0, "bound-complete, not early");
        let (res, _) = e.into_results(Metric::Euclidean);
        assert_eq!(res[0].0, 1);
    }

    #[test]
    fn nprobes_cap_counts_skips() {
        let opts = QueryOptions {
            nprobes: Some(2),
            ..QueryOptions::default()
        };
        let mut e = Executor::new(Metric::Euclidean, 1, &opts, &SimClock::default());
        assert!(e.try_probe());
        assert!(e.try_probe());
        assert!(e.probes_exhausted());
        assert!(!e.try_probe());
        assert_eq!(e.trace.candidates_skipped, 1);
        assert_eq!(e.trace.terminated_early, 1);
    }

    #[test]
    fn refine_factor_caps_exact_lookups() {
        let opts = QueryOptions {
            refine_factor: 2,
            ..QueryOptions::default()
        };
        let mut e = Executor::new(Metric::Euclidean, 2, &opts, &SimClock::default());
        let mut clock = SimClock::default();
        let cand: Vec<(f64, u32)> = (0..10).map(|i| (i as f64, i as u32)).collect();
        let mut fetched = 0u32;
        refine_ascending(&mut e, &mut clock, &cand, |_c, id| {
            fetched += 1;
            Some(1000.0 + f64::from(id))
        });
        // k * refine_factor = 4 look-ups, the rest skipped.
        assert_eq!(fetched, 4);
        assert_eq!(e.trace.refinements, 4);
        assert_eq!(e.trace.candidates_skipped, 6);
        assert_eq!(e.trace.terminated_early, 1);
    }

    #[test]
    fn refine_ascending_stops_at_the_bound_without_early_flag() {
        let mut e = exact_exec(1);
        let mut clock = SimClock::default();
        let cand = vec![(0.5, 1u32), (2.0, 2), (3.0, 3)];
        refine_ascending(&mut e, &mut clock, &cand, |_c, _id| Some(1.0));
        // id 1 refined to key 1.0; the next lower bound 2.0 >= 1.0.
        assert_eq!(e.trace.refinements, 1);
        assert_eq!(e.trace.terminated_early, 0);
    }

    #[test]
    fn time_budget_stops_the_drive() {
        let opts = QueryOptions {
            time_budget: Some(0.0),
            ..QueryOptions::default()
        };
        // validate() rejects 0.0, but the executor itself treats it as
        // an immediately-spent budget — exercise the deadline check.
        let clock = SimClock::default();
        let mut e = Executor::new(Metric::Euclidean, 1, &opts, &clock);
        let mut clock = clock;
        let mut heap: CandidateHeap<u32> = CandidateHeap::new();
        heap.push(Reverse((OrdKey(1.0), 1)));
        let mut stepped = false;
        drive(&mut e, &mut clock, &mut heap, |_e, _c, _k, _id, _h| {
            stepped = true;
        });
        assert!(!stepped, "budget spent before the first step");
        assert_eq!(e.trace.terminated_early, 1);
    }

    #[test]
    fn unreadable_fetch_counts_points_skipped() {
        let mut e = exact_exec(1);
        let mut clock = SimClock::default();
        assert!(!e.refine_with(&mut clock, 9, |_c| None));
        assert_eq!(e.trace.points_skipped, 1);
        assert_eq!(e.trace.refinements, 0);
    }
}
