//! Attribute filters and paginated k-NN — the query shapes modern vector
//! stores serve (cf. the Lance query pipeline): "give me the k nearest
//! neighbors *among the rows matching this predicate*, then slice the
//! answer with `limit`/`offset`".
//!
//! A [`Filter`] is a precompiled id-bitset: predicate evaluation happens
//! once, against the attribute table, before the search starts; the search
//! itself only asks `matches(id)` in its hot loops. `k` counts results
//! *after* filtering (the Lance ≥ 0.5.0 convention), and every engine
//! pushes the predicate into its single executor-driven search
//! ([`AccessMethod::knn_opts_traced`]), skipping non-matching candidates
//! before any refinement I/O is spent on them.

use crate::{AccessMethod, QueryOptions};
use iq_storage::SimClock;

/// A precompiled predicate over point ids: one bit per id in the indexed
/// domain `0..domain`.
///
/// Ids at or beyond the domain never match — a filter compiled against an
/// attribute table of `n` rows is safe to pass to any engine over the same
/// `n` points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Filter {
    bits: Vec<u64>,
    domain: usize,
    matching: usize,
}

impl Filter {
    /// Compiles `pred` over the id domain `0..domain`.
    pub fn from_fn(domain: usize, mut pred: impl FnMut(u32) -> bool) -> Self {
        let mut bits = vec![0u64; domain.div_ceil(64)];
        let mut matching = 0usize;
        for id in 0..domain {
            if pred(id as u32) {
                bits[id / 64] |= 1u64 << (id % 64);
                matching += 1;
            }
        }
        Self {
            bits,
            domain,
            matching,
        }
    }

    /// A filter matching exactly the given ids (out-of-domain ids are
    /// ignored).
    pub fn from_ids(domain: usize, ids: impl IntoIterator<Item = u32>) -> Self {
        let mut bits = vec![0u64; domain.div_ceil(64)];
        let mut matching = 0usize;
        for id in ids {
            let id = id as usize;
            if id < domain {
                let (w, m) = (id / 64, 1u64 << (id % 64));
                if bits[w] & m == 0 {
                    bits[w] |= m;
                    matching += 1;
                }
            }
        }
        Self {
            bits,
            domain,
            matching,
        }
    }

    /// Whether `id` satisfies the predicate.
    #[inline]
    pub fn matches(&self, id: u32) -> bool {
        let id = id as usize;
        id < self.domain && self.bits[id / 64] & (1u64 << (id % 64)) != 0
    }

    /// Size of the id domain the filter was compiled over.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Number of matching ids.
    pub fn matching(&self) -> usize {
        self.matching
    }

    /// Fraction of the domain that matches (`0.0` for an empty domain).
    pub fn selectivity(&self) -> f64 {
        if self.domain == 0 {
            0.0
        } else {
            self.matching as f64 / self.domain as f64
        }
    }
}

/// Pagination of a filtered k-NN result, with the Lance semantics: `k` is
/// the number of post-filter neighbors the search computes exactly;
/// `offset`/`limit` then slice that list. Re-running the same `(q, k,
/// filter)` yields the same list, so disjoint `offset` windows paginate
/// without overlap or gaps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageSpec {
    /// Post-filter neighbors to compute (the pagination universe).
    pub k: usize,
    /// Rows to skip from the front of the computed list.
    pub offset: usize,
    /// Maximum rows to return after the skip (`None` = all remaining).
    pub limit: Option<usize>,
}

impl PageSpec {
    /// Plain top-k: no offset, no limit.
    pub fn top(k: usize) -> Self {
        Self {
            k,
            offset: 0,
            limit: None,
        }
    }
}

/// The `page.k` exact post-filter nearest neighbors of `q`, canonically
/// ordered (ascending distance, ties by ascending id — engines may break
/// exact-distance ties differently, so pagination must not depend on their
/// internal order), sliced to `[offset, offset + limit)`.
pub fn knn_paginated<M: AccessMethod + ?Sized>(
    method: &M,
    clock: &mut SimClock,
    q: &[f32],
    filter: Option<&Filter>,
    page: &PageSpec,
) -> Vec<(u32, f64)> {
    knn_paginated_opts(method, clock, q, filter, page, &QueryOptions::EXACT)
}

/// [`knn_paginated`] under explicit approximation [`QueryOptions`]. The
/// computed `page.k`-list is whatever the (possibly approximate) search
/// returns, canonically re-ordered — so re-running the same
/// `(q, k, filter, opts)` still yields the same list and disjoint
/// `offset` windows still tile it without overlap or gaps.
pub fn knn_paginated_opts<M: AccessMethod + ?Sized>(
    method: &M,
    clock: &mut SimClock,
    q: &[f32],
    filter: Option<&Filter>,
    page: &PageSpec,
    opts: &QueryOptions,
) -> Vec<(u32, f64)> {
    let mut hits = method.knn_opts(clock, q, page.k, filter, opts);
    hits.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("no NaN distances")
            .then(a.0.cmp(&b.0))
    });
    hits.into_iter()
        .skip(page.offset)
        .take(page.limit.unwrap_or(usize::MAX))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_matches() {
        let f = Filter::from_fn(130, |id| id % 3 == 0);
        assert_eq!(f.domain(), 130);
        assert_eq!(f.matching(), 44);
        assert!(f.matches(0));
        assert!(f.matches(129));
        assert!(!f.matches(1));
        assert!(!f.matches(130), "out of domain never matches");
        assert!(!f.matches(1_000_000));
    }

    #[test]
    fn from_ids_dedups_and_clips() {
        let f = Filter::from_ids(10, [3u32, 3, 7, 42]);
        assert_eq!(f.matching(), 2);
        assert!(f.matches(3));
        assert!(f.matches(7));
        assert!(!f.matches(42));
    }

    #[test]
    fn selectivity() {
        let f = Filter::from_fn(100, |id| id < 25);
        assert!((f.selectivity() - 0.25).abs() < 1e-12);
        assert_eq!(Filter::from_fn(0, |_| true).selectivity(), 0.0);
    }
}
