//! Block devices: in-memory and file-backed.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{IqError, IqResult};
use crate::model::SimClock;

static NEXT_DEVICE_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn fresh_device_id() -> u64 {
    NEXT_DEVICE_ID.fetch_add(1, Ordering::Relaxed)
}

/// A device storing an array of fixed-size blocks.
///
/// All reads and writes charge the passed [`SimClock`]; the clock — not the
/// backend — is the source of truth for simulated time, so in-memory and
/// file-backed devices report identical costs.
///
/// Reads take `&self` so many query threads can share one device; each
/// thread brings its own clock. Writes take `&mut self` and therefore
/// require exclusive access. The `Send + Sync` supertrait makes
/// `Box<dyn BlockDevice>` shareable across scoped threads.
pub trait BlockDevice: Send + Sync {
    /// The block size in bytes (fixed per device).
    fn block_size(&self) -> usize;

    /// Number of blocks currently stored.
    fn num_blocks(&self) -> u64;

    /// Reads `buf.len() / block_size` blocks starting at block `start` into
    /// `buf`.
    ///
    /// Fails with [`IqError::OutOfBounds`] if the range exceeds the device
    /// (corrupt metadata can point anywhere) and [`IqError::Io`] on device
    /// failures, real or injected.
    ///
    /// # Panics
    /// Panics if `buf.len()` is not a multiple of the block size
    /// (programmer error: callers size buffers, data never does).
    fn read_blocks(&self, clock: &mut SimClock, start: u64, buf: &mut [u8]) -> IqResult<()>;

    /// Appends `data` (padded to whole blocks with zeros) and returns the
    /// starting block index.
    fn append(&mut self, clock: &mut SimClock, data: &[u8]) -> IqResult<u64>;

    /// Overwrites blocks starting at `start` with `data` (must be whole
    /// blocks).
    fn write_blocks(&mut self, clock: &mut SimClock, start: u64, data: &[u8]) -> IqResult<()>;

    /// Shrinks the device to `nblocks` blocks, discarding everything after.
    ///
    /// Growing is an error ([`IqError::OutOfBounds`]); devices that cannot
    /// shed blocks (read-only backends) keep the default, which fails with
    /// a non-transient [`IqError::Io`]. Used by WAL truncation and by
    /// checkpoint compaction of the exact level.
    fn truncate_blocks(&mut self, _clock: &mut SimClock, nblocks: u64) -> IqResult<()> {
        Err(IqError::Io {
            op: "truncate",
            block: nblocks,
            transient: false,
            detail: "truncate unsupported by this device".into(),
        })
    }

    /// Stable identifier used by the clock to track head position.
    fn device_id(&self) -> u64;

    /// Convenience: reads `n` blocks starting at `start` into a fresh
    /// buffer.
    fn read_to_vec(&self, clock: &mut SimClock, start: u64, n: u64) -> IqResult<Vec<u8>> {
        let mut buf = vec![0u8; (n as usize) * self.block_size()];
        self.read_blocks(clock, start, &mut buf)?;
        Ok(buf)
    }
}

/// An in-memory block device (the default experiment backend: datasets of
/// the paper's scale fit comfortably in RAM and runs are deterministic).
#[derive(Debug)]
pub struct MemDevice {
    block_size: usize,
    data: Vec<u8>,
    id: u64,
}

impl MemDevice {
    /// Creates an empty device with the given block size.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0);
        Self {
            block_size,
            data: Vec::new(),
            id: fresh_device_id(),
        }
    }

    /// Creates a device pre-loaded with a raw byte image (must be a whole
    /// number of blocks). Used by crash-simulation tests to restore
    /// snapshots taken with [`MemDevice::contents`].
    pub fn from_contents(block_size: usize, data: Vec<u8>) -> Self {
        assert!(block_size > 0);
        assert_eq!(data.len() % block_size, 0, "partial-block image");
        Self {
            block_size,
            data,
            id: fresh_device_id(),
        }
    }

    /// The raw byte image of the device (all blocks, in order).
    pub fn contents(&self) -> &[u8] {
        &self.data
    }
}

impl BlockDevice for MemDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        (self.data.len() / self.block_size) as u64
    }

    fn read_blocks(&self, clock: &mut SimClock, start: u64, buf: &mut [u8]) -> IqResult<()> {
        assert_eq!(buf.len() % self.block_size, 0, "partial-block read");
        let nblocks = (buf.len() / self.block_size) as u64;
        if start + nblocks > self.num_blocks() {
            return Err(IqError::OutOfBounds {
                op: "read",
                start,
                nblocks,
                available: self.num_blocks(),
            });
        }
        let off = (start as usize) * self.block_size;
        buf.copy_from_slice(&self.data[off..off + buf.len()]);
        clock.charge_read(self.id, start, nblocks);
        Ok(())
    }

    fn append(&mut self, clock: &mut SimClock, data: &[u8]) -> IqResult<u64> {
        let start = self.num_blocks();
        let nblocks = data.len().div_ceil(self.block_size) as u64;
        self.data.extend_from_slice(data);
        self.data
            .resize((start + nblocks) as usize * self.block_size, 0);
        clock.charge_write(self.id, start, nblocks);
        Ok(start)
    }

    fn write_blocks(&mut self, clock: &mut SimClock, start: u64, data: &[u8]) -> IqResult<()> {
        assert_eq!(data.len() % self.block_size, 0, "partial-block write");
        let nblocks = (data.len() / self.block_size) as u64;
        if start + nblocks > self.num_blocks() {
            return Err(IqError::OutOfBounds {
                op: "write",
                start,
                nblocks,
                available: self.num_blocks(),
            });
        }
        let off = (start as usize) * self.block_size;
        self.data[off..off + data.len()].copy_from_slice(data);
        clock.charge_write(self.id, start, nblocks);
        Ok(())
    }

    fn truncate_blocks(&mut self, clock: &mut SimClock, nblocks: u64) -> IqResult<()> {
        if nblocks > self.num_blocks() {
            return Err(IqError::OutOfBounds {
                op: "truncate",
                start: nblocks,
                nblocks: 0,
                available: self.num_blocks(),
            });
        }
        self.data.truncate((nblocks as usize) * self.block_size);
        clock.charge_write(self.id, nblocks, 1);
        Ok(())
    }

    fn device_id(&self) -> u64 {
        self.id
    }
}

/// A file-backed block device (functional realism; simulated costs are
/// charged identically to [`MemDevice`]).
#[derive(Debug)]
pub struct FileDevice {
    block_size: usize,
    file: File,
    num_blocks: u64,
    id: u64,
}

impl FileDevice {
    /// Creates (truncating) a file-backed device at `path`.
    pub fn create(path: &Path, block_size: usize) -> io::Result<Self> {
        assert!(block_size > 0);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            block_size,
            file,
            num_blocks: 0,
            id: fresh_device_id(),
        })
    }

    /// Opens an existing device file; its length must be a multiple of the
    /// block size.
    pub fn open(path: &Path, block_size: usize) -> io::Result<Self> {
        assert!(block_size > 0);
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % block_size as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file length is not a multiple of the block size",
            ));
        }
        Ok(Self {
            block_size,
            file,
            num_blocks: len / block_size as u64,
            id: fresh_device_id(),
        })
    }
}

/// Maps an OS error to [`IqError::Io`]; interrupted syscalls are transient.
fn io_error(op: &'static str, block: u64, e: &io::Error) -> IqError {
    IqError::Io {
        op,
        block,
        transient: e.kind() == io::ErrorKind::Interrupted,
        detail: e.to_string(),
    }
}

impl BlockDevice for FileDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn read_blocks(&self, clock: &mut SimClock, start: u64, buf: &mut [u8]) -> IqResult<()> {
        use std::os::unix::fs::FileExt;
        assert_eq!(buf.len() % self.block_size, 0, "partial-block read");
        let nblocks = (buf.len() / self.block_size) as u64;
        if start + nblocks > self.num_blocks {
            return Err(IqError::OutOfBounds {
                op: "read",
                start,
                nblocks,
                available: self.num_blocks,
            });
        }
        self.file
            .read_exact_at(buf, start * self.block_size as u64)
            .map_err(|e| io_error("read", start, &e))?;
        clock.charge_read(self.id, start, nblocks);
        Ok(())
    }

    fn append(&mut self, clock: &mut SimClock, data: &[u8]) -> IqResult<u64> {
        use std::os::unix::fs::FileExt;
        let start = self.num_blocks;
        let nblocks = data.len().div_ceil(self.block_size) as u64;
        let mut padded = data.to_vec();
        padded.resize(nblocks as usize * self.block_size, 0);
        self.file
            .write_all_at(&padded, start * self.block_size as u64)
            .map_err(|e| io_error("append", start, &e))?;
        self.num_blocks += nblocks;
        clock.charge_write(self.id, start, nblocks);
        Ok(start)
    }

    fn write_blocks(&mut self, clock: &mut SimClock, start: u64, data: &[u8]) -> IqResult<()> {
        use std::os::unix::fs::FileExt;
        assert_eq!(data.len() % self.block_size, 0, "partial-block write");
        let nblocks = (data.len() / self.block_size) as u64;
        if start + nblocks > self.num_blocks {
            return Err(IqError::OutOfBounds {
                op: "write",
                start,
                nblocks,
                available: self.num_blocks,
            });
        }
        self.file
            .write_all_at(data, start * self.block_size as u64)
            .map_err(|e| io_error("write", start, &e))?;
        clock.charge_write(self.id, start, nblocks);
        Ok(())
    }

    fn truncate_blocks(&mut self, clock: &mut SimClock, nblocks: u64) -> IqResult<()> {
        if nblocks > self.num_blocks {
            return Err(IqError::OutOfBounds {
                op: "truncate",
                start: nblocks,
                nblocks: 0,
                available: self.num_blocks,
            });
        }
        self.file
            .set_len(nblocks * self.block_size as u64)
            .map_err(|e| io_error("truncate", nblocks, &e))?;
        self.num_blocks = nblocks;
        clock.charge_write(self.id, nblocks, 1);
        Ok(())
    }

    fn device_id(&self) -> u64 {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dev: &mut dyn BlockDevice) {
        let mut clock = SimClock::default();
        let bs = dev.block_size();
        let a = vec![0xAAu8; bs];
        let b = vec![0xBBu8; 2 * bs];
        let s0 = dev.append(&mut clock, &a).unwrap();
        let s1 = dev.append(&mut clock, &b).unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(dev.num_blocks(), 3);

        let got = dev.read_to_vec(&mut clock, 1, 2).unwrap();
        assert_eq!(got, b);

        let c = vec![0xCCu8; bs];
        dev.write_blocks(&mut clock, 0, &c).unwrap();
        let got = dev.read_to_vec(&mut clock, 0, 1).unwrap();
        assert_eq!(got, c);
    }

    #[test]
    fn mem_device_roundtrip() {
        roundtrip(&mut MemDevice::new(64));
    }

    #[test]
    fn file_device_roundtrip() {
        let dir = std::env::temp_dir().join(format!("iq-storage-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.bin");
        roundtrip(&mut FileDevice::create(&path, 64).unwrap());
        // Reopen and check persistence.
        let dev = FileDevice::open(&path, 64).unwrap();
        assert_eq!(dev.num_blocks(), 3);
        let mut clock = SimClock::default();
        assert_eq!(dev.read_to_vec(&mut clock, 0, 1).unwrap(), vec![0xCCu8; 64]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_pads_partial_blocks() {
        let mut dev = MemDevice::new(16);
        let mut clock = SimClock::default();
        dev.append(&mut clock, &[1u8; 10]).unwrap();
        assert_eq!(dev.num_blocks(), 1);
        let got = dev.read_to_vec(&mut clock, 0, 1).unwrap();
        assert_eq!(&got[..10], &[1u8; 10]);
        assert_eq!(&got[10..], &[0u8; 6]);
    }

    #[test]
    fn read_out_of_bounds_is_an_error() {
        let dev = MemDevice::new(16);
        let mut clock = SimClock::default();
        let mut buf = vec![0u8; 16];
        let err = dev.read_blocks(&mut clock, 0, &mut buf).unwrap_err();
        assert!(matches!(
            err,
            IqError::OutOfBounds {
                op: "read",
                start: 0,
                nblocks: 1,
                available: 0
            }
        ));
        // Failed reads charge no simulated time.
        assert_eq!(clock.io_time(), 0.0);
    }

    #[test]
    fn write_out_of_bounds_is_an_error() {
        let mut dev = MemDevice::new(16);
        let mut clock = SimClock::default();
        let err = dev.write_blocks(&mut clock, 5, &[0u8; 16]).unwrap_err();
        assert!(matches!(err, IqError::OutOfBounds { op: "write", .. }));
    }

    #[test]
    fn shared_reads_from_many_threads() {
        let mut dev = MemDevice::new(64);
        let mut clock = SimClock::default();
        for i in 0..8u8 {
            dev.append(&mut clock, &[i; 64]).unwrap();
        }
        let dev: &dyn BlockDevice = &dev;
        std::thread::scope(|s| {
            for t in 0..4u8 {
                s.spawn(move || {
                    let mut c = SimClock::default();
                    for round in 0..16u64 {
                        let b = (round + u64::from(t)) % 8;
                        let got = dev.read_to_vec(&mut c, b, 1).unwrap();
                        assert_eq!(got, vec![b as u8; 64]);
                    }
                });
            }
        });
    }

    #[test]
    fn identical_costs_mem_vs_file() {
        let dir = std::env::temp_dir().join(format!("iq-storage-cost-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut mem = MemDevice::new(64);
        let mut file = FileDevice::create(&dir.join("d.bin"), 64).unwrap();
        let mut c1 = SimClock::default();
        let mut c2 = SimClock::default();
        let data = vec![7u8; 64 * 5];
        mem.append(&mut c1, &data).unwrap();
        file.append(&mut c2, &data).unwrap();
        mem.read_to_vec(&mut c1, 2, 2).unwrap();
        file.read_to_vec(&mut c2, 2, 2).unwrap();
        assert_eq!(c1.io_time(), c2.io_time());
        assert_eq!(c1.stats(), c2.stats());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
