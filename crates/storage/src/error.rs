//! Typed storage errors.
//!
//! Everything that can go wrong between a query and the disk is an
//! [`IqError`]: device I/O failures (real or injected), reads outside the
//! allocated file, per-block checksum mismatches, structural decode
//! failures, and superblock/format-version problems. The read path of the
//! whole workspace returns `IqResult` instead of panicking, so callers can
//! retry transient faults and degrade gracefully on corruption.

use std::fmt;

/// Result alias used across the storage, codec and index crates.
pub type IqResult<T> = Result<T, IqError>;

/// A storage-layer error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IqError {
    /// A device-level I/O failure. `transient` marks faults worth retrying
    /// (e.g. an injected transient error or an interrupted syscall).
    Io {
        /// The operation that failed (`"read"`, `"write"`, `"append"`).
        op: &'static str,
        /// First block of the failed access.
        block: u64,
        /// Whether a retry may succeed.
        transient: bool,
        /// Human-readable cause.
        detail: String,
    },
    /// An access outside the device's allocated blocks (typically caused by
    /// corrupt metadata pointing into the void).
    OutOfBounds {
        /// The operation that was attempted.
        op: &'static str,
        /// First requested block.
        start: u64,
        /// Number of requested blocks.
        nblocks: u64,
        /// Blocks actually allocated on the device.
        available: u64,
    },
    /// A block's stored CRC32 disagrees with its contents.
    ChecksumMismatch {
        /// The corrupt block.
        block: u64,
        /// Checksum stored on disk.
        stored: u32,
        /// Checksum computed over the payload read.
        computed: u32,
    },
    /// A page or directory entry failed structural validation while
    /// decoding (bad header, counts exceeding capacity, truncated bit
    /// stream, …).
    Decode {
        /// What was malformed.
        detail: String,
    },
    /// The superblock is missing or malformed (wrong magic, inconsistent
    /// geometry, bad root checksum).
    Superblock {
        /// What was wrong.
        detail: String,
    },
    /// The on-disk format version is not supported by this build.
    Version {
        /// Version found in the superblock.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// A bounded retry loop exhausted its attempts; `last` is the final
    /// error observed.
    RetriesExhausted {
        /// Attempts performed.
        attempts: u32,
        /// The last underlying error.
        last: Box<IqError>,
    },
}

impl IqError {
    /// Whether retrying the failed operation may succeed (transient device
    /// faults only — corruption and format errors are permanent).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            IqError::Io {
                transient: true,
                ..
            }
        )
    }

    /// The corrupt block index, for checksum mismatches.
    pub fn corrupt_block(&self) -> Option<u64> {
        match self {
            IqError::ChecksumMismatch { block, .. } => Some(*block),
            IqError::RetriesExhausted { last, .. } => last.corrupt_block(),
            _ => None,
        }
    }

    /// Whether the error indicates data corruption (as opposed to a device
    /// fault): a checksum mismatch or a structural decode failure.
    pub fn is_corruption(&self) -> bool {
        match self {
            IqError::ChecksumMismatch { .. } | IqError::Decode { .. } => true,
            IqError::RetriesExhausted { last, .. } => last.is_corruption(),
            _ => false,
        }
    }
}

impl fmt::Display for IqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IqError::Io {
                op,
                block,
                transient,
                detail,
            } => {
                let kind = if *transient { "transient " } else { "" };
                write!(f, "{kind}I/O error during {op} at block {block}: {detail}")
            }
            IqError::OutOfBounds {
                op,
                start,
                nblocks,
                available,
            } => write!(
                f,
                "{op} of {nblocks} block(s) at {start} exceeds device size {available}"
            ),
            IqError::ChecksumMismatch {
                block,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch at block {block}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            IqError::Decode { detail } => write!(f, "corrupt page: {detail}"),
            IqError::Superblock { detail } => write!(f, "invalid superblock: {detail}"),
            IqError::Version { found, supported } => write!(
                f,
                "unsupported on-disk format version {found} (this build supports {supported})"
            ),
            IqError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for IqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        let t = IqError::Io {
            op: "read",
            block: 3,
            transient: true,
            detail: "injected".into(),
        };
        assert!(t.is_transient());
        let p = IqError::ChecksumMismatch {
            block: 3,
            stored: 1,
            computed: 2,
        };
        assert!(!p.is_transient());
        assert!(p.is_corruption());
        assert_eq!(p.corrupt_block(), Some(3));
    }

    #[test]
    fn retries_exhausted_forwards_classification() {
        let inner = IqError::ChecksumMismatch {
            block: 9,
            stored: 0,
            computed: 1,
        };
        let e = IqError::RetriesExhausted {
            attempts: 4,
            last: Box::new(inner),
        };
        assert!(e.is_corruption());
        assert_eq!(e.corrupt_block(), Some(9));
        assert!(!e.is_transient());
    }

    #[test]
    fn display_is_informative() {
        let e = IqError::Version {
            found: 1,
            supported: 2,
        };
        let s = e.to_string();
        assert!(s.contains('1') && s.contains('2'), "{s}");
    }
}
