//! Composable device stacks.
//!
//! Every access method in the workspace reads through the same kind of
//! layered device: a raw backend at the bottom, optional deterministic
//! fault injection above it (simulated media), a per-block checksum layer
//! that turns silent corruption into typed errors, a retry layer that
//! absorbs transient faults, and (optionally, supplied by the caller as a
//! closure because the buffer pool lives in a higher crate) an LRU cache
//! on top. [`DeviceStack`] builds that tower in one call so the IQ-tree
//! and the baselines of the paper's evaluation (VA-file, X-tree,
//! sequential scan) run on identical storage semantics:
//!
//! ```
//! use iq_storage::{DeviceStack, FaultConfig, MemDevice, RetryPolicy};
//!
//! let dev = DeviceStack::new(Box::new(MemDevice::new(4096)))
//!     .faults(FaultConfig::transient(7, 0.05))
//!     .checksum()
//!     .retry(RetryPolicy::default())
//!     .build();
//! assert_eq!(dev.block_size(), 4092); // checksum trailer is invisible above
//! ```
//!
//! Layer order is fixed by semantics, not by call order: faults sit at the
//! bottom (they model the medium), the checksum sits directly above them
//! (so a flipped bit is detected before anything caches or retries stale
//! bytes), retries sit above the checksum (transient `Io` errors are
//! retried; `ChecksumMismatch` is corruption and surfaces immediately),
//! and any caller-supplied layer (buffer pool) goes on top, holding only
//! verified payload bytes.

use crate::checksum::ChecksummedDevice;
use crate::device::BlockDevice;
use crate::error::IqResult;
use crate::fault::{FaultConfig, FaultInjectingDevice};
use crate::model::SimClock;
use crate::retry::RetryPolicy;

/// A device that retries transient faults internally, so layers above see
/// flaky reads and writes only when the retry budget is exhausted.
///
/// Reads and writes both run under the policy; non-transient errors
/// (corruption, out-of-bounds) surface immediately, exactly like
/// [`RetryPolicy::run`].
pub struct RetryingDevice {
    inner: Box<dyn BlockDevice>,
    policy: RetryPolicy,
}

impl RetryingDevice {
    /// Wraps `inner` with the given retry policy.
    pub fn new(inner: Box<dyn BlockDevice>, policy: RetryPolicy) -> Self {
        Self { inner, policy }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &dyn BlockDevice {
        self.inner.as_ref()
    }
}

impl BlockDevice for RetryingDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_blocks(&self, clock: &mut SimClock, start: u64, buf: &mut [u8]) -> IqResult<()> {
        self.policy
            .run(clock, |clock| self.inner.read_blocks(clock, start, buf))
    }

    fn append(&mut self, clock: &mut SimClock, data: &[u8]) -> IqResult<u64> {
        let inner = &mut self.inner;
        self.policy.run(clock, |clock| inner.append(clock, data))
    }

    fn write_blocks(&mut self, clock: &mut SimClock, start: u64, data: &[u8]) -> IqResult<()> {
        let inner = &mut self.inner;
        self.policy
            .run(clock, |clock| inner.write_blocks(clock, start, data))
    }

    fn truncate_blocks(&mut self, clock: &mut SimClock, nblocks: u64) -> IqResult<()> {
        let inner = &mut self.inner;
        self.policy
            .run(clock, |clock| inner.truncate_blocks(clock, nblocks))
    }

    fn device_id(&self) -> u64 {
        self.inner.device_id()
    }
}

/// Builder for the canonical layered device. See the module docs for the
/// layer order contract; the builder enforces nothing and simply wraps in
/// call order, so call it bottom-up: `faults` → `checksum` → `retry` →
/// `layer` (cache).
pub struct DeviceStack {
    dev: Box<dyn BlockDevice>,
}

impl DeviceStack {
    /// Starts a stack on a raw backend.
    pub fn new(base: Box<dyn BlockDevice>) -> Self {
        Self { dev: base }
    }

    /// Adds deterministic fault injection (bottom layer: the medium).
    pub fn faults(self, cfg: FaultConfig) -> Self {
        Self {
            dev: Box::new(FaultInjectingDevice::new(self.dev, cfg)),
        }
    }

    /// Adds per-block CRC32 checksumming. The logical block size shrinks
    /// by [`crate::CHECKSUM_BYTES`].
    pub fn checksum(self) -> Self {
        Self {
            dev: Box::new(ChecksummedDevice::new(self.dev)),
        }
    }

    /// Adds transparent retry of transient faults on reads and writes.
    pub fn retry(self, policy: RetryPolicy) -> Self {
        Self {
            dev: Box::new(RetryingDevice::new(self.dev, policy)),
        }
    }

    /// Adds an arbitrary caller-supplied layer (typically the LRU buffer
    /// pool, which lives in `iq-cache` above this crate).
    pub fn layer(self, f: impl FnOnce(Box<dyn BlockDevice>) -> Box<dyn BlockDevice>) -> Self {
        Self { dev: f(self.dev) }
    }

    /// Adds a metrics layer reporting this point of the stack's traffic to
    /// the global registry under `dev_<stage>_*` (latency histograms plus
    /// operation / block / error counters). Near-free while the global
    /// registry is disabled.
    pub fn observe(self, stage: &str) -> Self {
        Self {
            dev: Box::new(crate::observe::ObservedDevice::new(
                self.dev,
                iq_obs::global(),
                stage,
            )),
        }
    }

    /// Finishes the stack.
    pub fn build(self) -> Box<dyn BlockDevice> {
        self.dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IqError, MemDevice, CHECKSUM_BYTES};

    #[test]
    fn stack_roundtrips_and_shrinks_block_size() {
        let mut dev = DeviceStack::new(Box::new(MemDevice::new(256)))
            .checksum()
            .retry(RetryPolicy::default())
            .build();
        assert_eq!(dev.block_size(), 256 - CHECKSUM_BYTES);
        let mut clock = SimClock::default();
        let payload = vec![0x5Au8; dev.block_size() * 3];
        let start = dev.append(&mut clock, &payload).unwrap();
        assert_eq!(dev.read_to_vec(&mut clock, start, 3).unwrap(), payload);
    }

    #[test]
    fn retry_layer_absorbs_transient_faults() {
        // High transient rate: without the retry layer most reads fail.
        let mut dev = DeviceStack::new(Box::new(MemDevice::new(128)))
            .faults(FaultConfig::transient(3, 0.9))
            .checksum()
            .retry(RetryPolicy::default())
            .build();
        let mut clock = SimClock::default();
        let bs = dev.block_size();
        for i in 0..16u8 {
            dev.append(&mut clock, &vec![i; bs]).unwrap();
        }
        for i in 0..16u64 {
            let got = dev.read_to_vec(&mut clock, i, 1).unwrap();
            assert_eq!(got, vec![i as u8; bs]);
        }
        assert!(clock.stats().io_retries > 0, "faults were actually hit");
    }

    #[test]
    fn corruption_is_not_retried() {
        let fault = FaultInjectingDevice::new(Box::new(MemDevice::new(128)), FaultConfig::none(1));
        let mut clock = SimClock::default();
        let mut dev = DeviceStack::new(Box::new(fault))
            .checksum()
            .retry(RetryPolicy::default())
            .build();
        let bs = dev.block_size();
        dev.append(&mut clock, &vec![7u8; bs * 4]).unwrap();
        // Reach through to plant permanent corruption under the checksum.
        // (Rebuild the same stack around a shared corrupting base instead:
        // simplest is to corrupt via a fresh stack-free device.)
        drop(dev);
        let fault = FaultInjectingDevice::new(Box::new(MemDevice::new(128)), FaultConfig::none(1));
        let mut base = DeviceStack::new(Box::new(fault)).build();
        base.append(&mut clock, &vec![7u8; 128 * 4]).unwrap();
        // Direct test of the retry-vs-corruption contract:
        let n_before = clock.stats().io_retries;
        let err = RetryPolicy::default()
            .run::<()>(&mut clock, |_| {
                Err(IqError::ChecksumMismatch {
                    block: 2,
                    stored: 0,
                    computed: 1,
                })
            })
            .unwrap_err();
        assert!(err.is_corruption());
        assert_eq!(clock.stats().io_retries, n_before);
    }

    #[test]
    fn layer_hook_applies_outermost() {
        struct Tag(Box<dyn BlockDevice>);
        impl BlockDevice for Tag {
            fn block_size(&self) -> usize {
                self.0.block_size()
            }
            fn num_blocks(&self) -> u64 {
                self.0.num_blocks()
            }
            fn read_blocks(
                &self,
                clock: &mut SimClock,
                start: u64,
                buf: &mut [u8],
            ) -> IqResult<()> {
                self.0.read_blocks(clock, start, buf)
            }
            fn append(&mut self, clock: &mut SimClock, data: &[u8]) -> IqResult<u64> {
                self.0.append(clock, data)
            }
            fn write_blocks(
                &mut self,
                clock: &mut SimClock,
                start: u64,
                data: &[u8],
            ) -> IqResult<()> {
                self.0.write_blocks(clock, start, data)
            }
            fn device_id(&self) -> u64 {
                self.0.device_id()
            }
        }
        let mut dev = DeviceStack::new(Box::new(MemDevice::new(64)))
            .checksum()
            .layer(|d| Box::new(Tag(d)))
            .build();
        let mut clock = SimClock::default();
        let bs = dev.block_size();
        dev.append(&mut clock, &vec![1u8; bs]).unwrap();
        assert_eq!(dev.read_to_vec(&mut clock, 0, 1).unwrap(), vec![1u8; bs]);
    }
}
