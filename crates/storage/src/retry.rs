//! Bounded retry with backoff for transient device faults.
//!
//! Only errors classified transient by [`IqError::is_transient`] are
//! retried; corruption and format errors surface immediately. Each retry
//! charges the simulated clock an exponentially growing backoff delay and
//! bumps the [`IoStats::io_retries`] counter, so the cost of recovering
//! from flaky I/O shows up in experiment results like everything else.
//!
//! [`IoStats::io_retries`]: crate::model::IoStats

use crate::device::BlockDevice;
use crate::error::{IqError, IqResult};
use crate::model::SimClock;

/// Retry budget and backoff schedule for transient faults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Simulated backoff before the first retry, in seconds; doubles each
    /// further retry.
    pub base_backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: 0.001,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_backoff: 0.0,
        }
    }

    /// Runs `op` up to `max_attempts` times, retrying only transient
    /// errors, charging backoff to `clock` before each retry.
    pub fn run<T>(
        &self,
        clock: &mut SimClock,
        mut op: impl FnMut(&mut SimClock) -> IqResult<T>,
    ) -> IqResult<T> {
        let attempts = self.max_attempts.max(1);
        let mut backoff = self.base_backoff;
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                clock.note_retry();
                clock.charge_cpu_seconds(backoff);
                backoff *= 2.0;
            }
            match op(clock) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(IqError::RetriesExhausted {
            attempts,
            last: Box::new(last.expect("at least one attempt ran")),
        })
    }
}

/// [`BlockDevice::read_blocks`] with transient-fault retries.
pub fn read_blocks_retry(
    dev: &dyn BlockDevice,
    clock: &mut SimClock,
    start: u64,
    buf: &mut [u8],
    policy: &RetryPolicy,
) -> IqResult<()> {
    policy.run(clock, |clock| dev.read_blocks(clock, start, buf))
}

/// [`BlockDevice::read_to_vec`] with transient-fault retries.
pub fn read_to_vec_retry(
    dev: &dyn BlockDevice,
    clock: &mut SimClock,
    start: u64,
    n: u64,
    policy: &RetryPolicy,
) -> IqResult<Vec<u8>> {
    let mut buf = vec![0u8; (n as usize) * dev.block_size()];
    read_blocks_retry(dev, clock, start, &mut buf, policy)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transient(block: u64) -> IqError {
        IqError::Io {
            op: "read",
            block,
            transient: true,
            detail: "flaky".into(),
        }
    }

    #[test]
    fn retries_transient_until_success() {
        let mut clock = SimClock::default();
        let mut fails = 2;
        let got = RetryPolicy::default().run(&mut clock, |_| {
            if fails > 0 {
                fails -= 1;
                Err(transient(0))
            } else {
                Ok(42)
            }
        });
        assert_eq!(got, Ok(42));
        assert_eq!(clock.stats().io_retries, 2);
        assert!(clock.cpu_time() > 0.0, "backoff was charged");
    }

    #[test]
    fn permanent_errors_surface_immediately() {
        let mut clock = SimClock::default();
        let err = RetryPolicy::default()
            .run::<()>(&mut clock, |_| {
                Err(IqError::ChecksumMismatch {
                    block: 7,
                    stored: 0,
                    computed: 1,
                })
            })
            .unwrap_err();
        assert!(err.is_corruption());
        assert_eq!(clock.stats().io_retries, 0, "no retry of corruption");
    }

    #[test]
    fn exhaustion_reports_attempts_and_last_error() {
        let mut clock = SimClock::default();
        let err = RetryPolicy::default()
            .run::<()>(&mut clock, |_| Err(transient(5)))
            .unwrap_err();
        match err {
            IqError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 4);
                assert!(last.is_transient());
            }
            other => panic!("unexpected error: {other}"),
        }
        assert_eq!(clock.stats().io_retries, 3);
    }

    #[test]
    fn backoff_doubles() {
        let mut clock = SimClock::default();
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: 0.001,
        };
        let _ = policy.run::<()>(&mut clock, |_| Err(transient(0)));
        // 1ms + 2ms + 4ms of simulated backoff.
        assert!((clock.cpu_time() - 0.007).abs() < 1e-12);
    }

    #[test]
    fn none_policy_tries_once() {
        let mut clock = SimClock::default();
        let mut calls = 0;
        let _ = RetryPolicy::none().run::<()>(&mut clock, |_| {
            calls += 1;
            Err(transient(0))
        });
        assert_eq!(calls, 1);
    }
}
