//! Per-block CRC32 checksumming.
//!
//! [`ChecksummedDevice`] wraps any [`BlockDevice`] and reserves the last
//! four bytes of every *physical* block for a CRC32 (IEEE) of the block's
//! payload. Layers above see a device whose logical block size is four
//! bytes smaller; every read verifies the checksum of every block it
//! touches and fails with [`IqError::ChecksumMismatch`] naming the first
//! corrupt block. Writes compute checksums transparently.
//!
//! This is the same discipline production storage engines apply per WAL
//! frame or per file page: a flipped bit anywhere in a block — payload or
//! padding — is detected on the next read instead of silently corrupting
//! query answers.

use crate::device::BlockDevice;
use crate::error::{IqError, IqResult};
use crate::model::SimClock;

/// Bytes reserved per physical block for the CRC32 trailer.
pub const CHECKSUM_BYTES: usize = 4;

/// CRC32 (IEEE 802.3, reflected, init/final `0xFFFF_FFFF`) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming form: feed chunks with `state` starting at `0xFFFF_FFFF`,
/// xor with `0xFFFF_FFFF` at the end.
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = CRC_TABLE[idx] ^ (crc >> 8);
    }
    crc
}

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// A checksumming layer over any block device. See the module docs.
pub struct ChecksummedDevice {
    inner: Box<dyn BlockDevice>,
    /// Logical (payload) block size = physical − [`CHECKSUM_BYTES`].
    logical_bs: usize,
}

impl ChecksummedDevice {
    /// Wraps `inner`, reserving the trailing [`CHECKSUM_BYTES`] of each of
    /// its blocks.
    ///
    /// # Panics
    /// Panics if the inner block size cannot hold a checksum plus at least
    /// one payload byte (programmer error: such a device is useless).
    pub fn new(inner: Box<dyn BlockDevice>) -> Self {
        let physical = inner.block_size();
        assert!(
            physical > CHECKSUM_BYTES,
            "block size {physical} too small for a checksum trailer"
        );
        Self {
            inner,
            logical_bs: physical - CHECKSUM_BYTES,
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &dyn BlockDevice {
        self.inner.as_ref()
    }

    /// Verifies one physical block image, returning its payload range.
    fn verify_block(&self, clock: &mut SimClock, block: u64, physical: &[u8]) -> IqResult<()> {
        let stored = u32::from_le_bytes(
            physical[self.logical_bs..self.logical_bs + CHECKSUM_BYTES]
                .try_into()
                .expect("4-byte trailer"),
        );
        let computed = crc32(&physical[..self.logical_bs]);
        if stored != computed {
            clock.note_corrupt_block();
            return Err(IqError::ChecksumMismatch {
                block,
                stored,
                computed,
            });
        }
        Ok(())
    }

    /// Builds the physical image (payload + CRC trailer per block) of
    /// logical `data`, padding the last block's payload with zeros.
    fn physical_image(&self, data: &[u8]) -> Vec<u8> {
        let physical_bs = self.inner.block_size();
        let nblocks = data.len().div_ceil(self.logical_bs);
        let mut out = Vec::with_capacity(nblocks * physical_bs);
        let mut payload = vec![0u8; self.logical_bs];
        for i in 0..nblocks {
            let lo = i * self.logical_bs;
            let hi = ((i + 1) * self.logical_bs).min(data.len());
            payload.fill(0);
            if lo < data.len() {
                payload[..hi - lo].copy_from_slice(&data[lo..hi]);
            }
            out.extend_from_slice(&payload);
            out.extend_from_slice(&crc32(&payload).to_le_bytes());
        }
        out
    }
}

impl BlockDevice for ChecksummedDevice {
    fn block_size(&self) -> usize {
        self.logical_bs
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_blocks(&self, clock: &mut SimClock, start: u64, buf: &mut [u8]) -> IqResult<()> {
        assert_eq!(buf.len() % self.logical_bs, 0, "partial-block read");
        let nblocks = (buf.len() / self.logical_bs) as u64;
        let physical_bs = self.inner.block_size();
        let mut raw = vec![0u8; nblocks as usize * physical_bs];
        self.inner.read_blocks(clock, start, &mut raw)?;
        for i in 0..nblocks as usize {
            let phys = &raw[i * physical_bs..(i + 1) * physical_bs];
            self.verify_block(clock, start + i as u64, phys)?;
            buf[i * self.logical_bs..(i + 1) * self.logical_bs]
                .copy_from_slice(&phys[..self.logical_bs]);
        }
        Ok(())
    }

    fn append(&mut self, clock: &mut SimClock, data: &[u8]) -> IqResult<u64> {
        if data.is_empty() {
            return Ok(self.inner.num_blocks());
        }
        let image = self.physical_image(data);
        self.inner.append(clock, &image)
    }

    fn write_blocks(&mut self, clock: &mut SimClock, start: u64, data: &[u8]) -> IqResult<()> {
        assert_eq!(data.len() % self.logical_bs, 0, "partial-block write");
        if data.is_empty() {
            return Ok(());
        }
        let image = self.physical_image(data);
        self.inner.write_blocks(clock, start, &image)
    }

    fn truncate_blocks(&mut self, clock: &mut SimClock, nblocks: u64) -> IqResult<()> {
        // Logical and physical block counts agree (1:1 mapping).
        self.inner.truncate_blocks(clock, nblocks)
    }

    fn device_id(&self) -> u64 {
        self.inner.device_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_any_single_byte_change() {
        let data = [7u8; 64];
        let base = crc32(&data);
        for i in 0..64 {
            let mut tampered = data;
            tampered[i] ^= 0x40;
            assert_ne!(crc32(&tampered), base, "byte {i}");
        }
    }

    #[test]
    fn roundtrip_through_checksums() {
        let mut dev = ChecksummedDevice::new(Box::new(MemDevice::new(64)));
        assert_eq!(dev.block_size(), 60);
        let mut clock = SimClock::default();
        let data = vec![0xABu8; 60 * 3];
        let start = dev.append(&mut clock, &data).unwrap();
        assert_eq!(start, 0);
        assert_eq!(dev.num_blocks(), 3);
        assert_eq!(dev.read_to_vec(&mut clock, 0, 3).unwrap(), data);
        let patch = vec![0x11u8; 60];
        dev.write_blocks(&mut clock, 1, &patch).unwrap();
        assert_eq!(dev.read_to_vec(&mut clock, 1, 1).unwrap(), patch);
    }

    #[test]
    fn corruption_is_detected_and_located() {
        let mut inner = MemDevice::new(64);
        let mut clock = SimClock::default();
        // Build valid checksummed content for 4 blocks.
        {
            let mut dev = ChecksummedDevice::new(Box::new(MemDevice::new(64)));
            let data: Vec<u8> = (0..60 * 4).map(|i| i as u8).collect();
            dev.append(&mut clock, &data).unwrap();
            // Copy the physical image into `inner`.
            let raw = dev.inner().read_to_vec(&mut clock, 0, 4).unwrap();
            inner.append(&mut clock, &raw).unwrap();
        }
        // Flip one payload byte of physical block 2.
        let mut raw = inner.read_to_vec(&mut clock, 2, 1).unwrap();
        raw[17] ^= 0x01;
        inner.write_blocks(&mut clock, 2, &raw).unwrap();

        let dev = ChecksummedDevice::new(Box::new(inner));
        assert!(dev.read_to_vec(&mut clock, 0, 2).is_ok());
        let err = dev.read_to_vec(&mut clock, 0, 4).unwrap_err();
        assert_eq!(err.corrupt_block(), Some(2));
        assert!(clock.stats().corrupt_blocks >= 1);
    }

    #[test]
    fn trailer_corruption_is_detected_too() {
        let mut dev = ChecksummedDevice::new(Box::new(MemDevice::new(32)));
        let mut clock = SimClock::default();
        dev.append(&mut clock, &[5u8; 28]).unwrap();
        // Tamper with the stored checksum itself via a raw device view.
        let raw = dev.inner().read_to_vec(&mut clock, 0, 1).unwrap();
        let mut tampered = raw.clone();
        tampered[31] ^= 0xFF;
        let mut backing = MemDevice::new(32);
        backing.append(&mut clock, &tampered).unwrap();
        let dev = ChecksummedDevice::new(Box::new(backing));
        assert!(matches!(
            dev.read_to_vec(&mut clock, 0, 1),
            Err(IqError::ChecksumMismatch { block: 0, .. })
        ));
    }

    #[test]
    fn costs_match_physical_access() {
        // Checksumming adds no simulated I/O beyond the inner reads.
        let mut dev = ChecksummedDevice::new(Box::new(MemDevice::new(64)));
        let mut c1 = SimClock::default();
        dev.append(&mut c1, &vec![1u8; 60 * 8]).unwrap();
        c1.reset();
        dev.read_to_vec(&mut c1, 0, 8).unwrap();
        let mut plain = MemDevice::new(64);
        let mut c2 = SimClock::default();
        plain.append(&mut c2, &vec![1u8; 64 * 8]).unwrap();
        c2.reset();
        plain.read_to_vec(&mut c2, 0, 8).unwrap();
        assert_eq!(c1.io_time(), c2.io_time());
        assert_eq!(c1.stats().seeks, c2.stats().seeks);
    }
}
