//! Deterministic fault injection for robustness testing.
//!
//! [`FaultInjectingDevice`] wraps any [`BlockDevice`] and injects, from a
//! seeded deterministic schedule:
//!
//! * **transient read/write errors** — the first access touching an
//!   afflicted block fails with a retryable [`IqError::Io`]; a retry of the
//!   same block succeeds (the model of a bus hiccup or a recovered-on-retry
//!   sector read),
//! * **bit flips** — an afflicted block is returned with one bit flipped on
//!   *every* read (the model of silent media corruption; a checksum layer
//!   above detects it),
//! * **torn writes** — an afflicted append/write persists only a prefix of
//!   its payload (zero-filled to whole blocks) and then fails (the model of
//!   a crash mid-write).
//!
//! Whether a block is afflicted is a pure function of `(seed, block, kind)`,
//! so a faulty run is reproducible regardless of thread interleavings, and
//! a retried workload converges to the clean run's answers. Explicit
//! permanent corruption can be planted with
//! [`FaultInjectingDevice::corrupt_block`].

use crate::device::BlockDevice;
use crate::error::{IqError, IqResult};
use crate::model::SimClock;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Fault rates and the seed of the deterministic schedule. All rates are
/// probabilities in `[0, 1]` evaluated per block.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Seed of the deterministic per-block schedule.
    pub seed: u64,
    /// Probability that the first read touching a block fails (retry
    /// succeeds).
    pub read_transient_rate: f64,
    /// Probability that the first write touching a block fails (retry
    /// succeeds; nothing is persisted by the failed attempt).
    pub write_transient_rate: f64,
    /// Probability that a block's contents are returned with a flipped bit
    /// on every read (permanent silent corruption).
    pub bit_flip_rate: f64,
    /// Probability that an append/write persists only a prefix and fails.
    pub torn_write_rate: f64,
}

impl FaultConfig {
    /// A schedule injecting only transient faults (both reads and writes)
    /// at the given rate — every fault recovers on retry.
    pub fn transient(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            read_transient_rate: rate,
            write_transient_rate: rate,
            bit_flip_rate: 0.0,
            torn_write_rate: 0.0,
        }
    }

    /// A schedule injecting no faults at all (wrap-only; useful to plant
    /// explicit corruption with [`FaultInjectingDevice::corrupt_block`]).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            read_transient_rate: 0.0,
            write_transient_rate: 0.0,
            bit_flip_rate: 0.0,
            torn_write_rate: 0.0,
        }
    }
}

/// Counters of faults actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads failed with a transient error.
    pub transient_reads: u64,
    /// Writes failed with a transient error.
    pub transient_writes: u64,
    /// Reads that returned a block with a flipped bit.
    pub bit_flips: u64,
    /// Writes that persisted only a prefix.
    pub torn_writes: u64,
}

/// Fault kinds, salted into the per-block hash.
const KIND_READ: u64 = 0x52;
const KIND_WRITE: u64 = 0x57;
const KIND_FLIP: u64 = 0x46;
const KIND_TORN: u64 = 0x54;

/// SplitMix64: cheap, high-quality 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform `[0, 1)` draw from `(seed, block, kind)`.
fn draw(seed: u64, block: u64, kind: u64) -> f64 {
    let h = mix(seed ^ mix(block.wrapping_add(kind << 56)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The error every mutation reports once an armed crash point fired.
fn crash_error(op: &'static str, block: u64) -> IqError {
    IqError::Io {
        op,
        block,
        transient: false,
        detail: "simulated crash (power loss)".into(),
    }
}

/// State of an armed crash point (see
/// [`FaultInjectingDevice::arm_crash`]).
#[derive(Clone, Copy, Debug)]
struct CrashPlan {
    /// Mutating operations still allowed to complete durably.
    remaining: u64,
    /// Whether the triggering write persists a torn prefix (`true`) or
    /// nothing at all (`false`).
    torn: bool,
    /// Set once the crash fired; every later mutation fails too.
    fired: bool,
}

/// A fault-injecting wrapper around any block device. See the module docs.
pub struct FaultInjectingDevice {
    inner: Box<dyn BlockDevice>,
    cfg: FaultConfig,
    /// Blocks whose scheduled transient read fault already fired.
    read_faulted: Mutex<HashSet<u64>>,
    /// Blocks whose scheduled transient write fault already fired.
    write_faulted: Mutex<HashSet<u64>>,
    /// Explicitly planted permanently-corrupt blocks (bit flipped on read).
    planted: Mutex<HashSet<u64>>,
    /// Armed kill-at-offset crash point (power loss simulation).
    crash: Mutex<Option<CrashPlan>>,
    transient_reads: AtomicU64,
    transient_writes: AtomicU64,
    bit_flips: AtomicU64,
    torn_writes: AtomicU64,
}

impl FaultInjectingDevice {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: Box<dyn BlockDevice>, cfg: FaultConfig) -> Self {
        Self {
            inner,
            cfg,
            read_faulted: Mutex::new(HashSet::new()),
            write_faulted: Mutex::new(HashSet::new()),
            planted: Mutex::new(HashSet::new()),
            crash: Mutex::new(None),
            transient_reads: AtomicU64::new(0),
            transient_writes: AtomicU64::new(0),
            bit_flips: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
        }
    }

    /// Plants permanent corruption: every future read of `block` returns
    /// its contents with one bit flipped.
    pub fn corrupt_block(&self, block: u64) {
        self.planted
            .lock()
            .expect("fault set poisoned")
            .insert(block);
    }

    /// Arms a simulated power loss: the next `after_writes` mutating
    /// operations (append / write / truncate — the device's durability
    /// barrier points) complete durably, then the following one fails with
    /// a non-transient `"simulated crash"` [`IqError::Io`] — persisting a
    /// deterministic torn prefix when `torn` is set, nothing otherwise —
    /// and every mutation after that fails the same way. Reads keep
    /// working, modeling post-mortem inspection of the surviving bytes.
    pub fn arm_crash(&self, after_writes: u64, torn: bool) {
        *self.crash.lock().expect("crash plan poisoned") = Some(CrashPlan {
            remaining: after_writes,
            torn,
            fired: false,
        });
    }

    /// Whether an armed crash point has fired.
    pub fn crashed(&self) -> bool {
        self.crash
            .lock()
            .expect("crash plan poisoned")
            .is_some_and(|p| p.fired)
    }

    /// Consults the armed crash plan before a mutating op. `Ok(None)` lets
    /// the op proceed; `Ok(Some(keep))` tears it to `keep` payload bytes
    /// (caller persists the prefix, then reports the crash error);
    /// `Err` is the crash itself (nothing persists).
    fn crash_gate(&self, op: &'static str, start: u64, len: usize) -> IqResult<Option<usize>> {
        let mut guard = self.crash.lock().expect("crash plan poisoned");
        let Some(plan) = guard.as_mut() else {
            return Ok(None);
        };
        if plan.fired {
            return Err(crash_error(op, start));
        }
        if plan.remaining > 0 {
            plan.remaining -= 1;
            return Ok(None);
        }
        plan.fired = true;
        if plan.torn && len > 0 {
            let keep = (mix(self.cfg.seed ^ start) as usize % len).max(1);
            return Ok(Some(keep));
        }
        Err(crash_error(op, start))
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            transient_reads: self.transient_reads.load(Ordering::Relaxed),
            transient_writes: self.transient_writes.load(Ordering::Relaxed),
            bit_flips: self.bit_flips.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &dyn BlockDevice {
        self.inner.as_ref()
    }

    /// Returns the first block in `[start, start+n)` whose scheduled
    /// transient fault has not fired yet, marking it fired.
    fn claim_transient(
        &self,
        fired: &Mutex<HashSet<u64>>,
        rate: f64,
        kind: u64,
        start: u64,
        n: u64,
    ) -> Option<u64> {
        if rate <= 0.0 {
            return None;
        }
        let mut fired = fired.lock().expect("fault set poisoned");
        (start..start + n).find(|&b| draw(self.cfg.seed, b, kind) < rate && fired.insert(b))
    }

    fn flip_targets(&self, start: u64, n: u64) -> Vec<u64> {
        let planted = self.planted.lock().expect("fault set poisoned");
        (start..start + n)
            .filter(|&b| {
                planted.contains(&b)
                    || (self.cfg.bit_flip_rate > 0.0
                        && draw(self.cfg.seed, b, KIND_FLIP) < self.cfg.bit_flip_rate)
            })
            .collect()
    }
}

impl BlockDevice for FaultInjectingDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_blocks(&self, clock: &mut SimClock, start: u64, buf: &mut [u8]) -> IqResult<()> {
        let bs = self.block_size();
        assert_eq!(buf.len() % bs, 0, "partial-block read");
        let n = (buf.len() / bs) as u64;
        if let Some(b) = self.claim_transient(
            &self.read_faulted,
            self.cfg.read_transient_rate,
            KIND_READ,
            start,
            n,
        ) {
            self.transient_reads.fetch_add(1, Ordering::Relaxed);
            clock.note_fault();
            return Err(IqError::Io {
                op: "read",
                block: b,
                transient: true,
                detail: "injected transient read fault".into(),
            });
        }
        self.inner.read_blocks(clock, start, buf)?;
        for b in self.flip_targets(start, n) {
            let off = ((b - start) as usize) * bs;
            // Deterministic bit choice inside the block.
            let bit = (mix(self.cfg.seed ^ b) % (bs as u64 * 8)) as usize;
            buf[off + bit / 8] ^= 1 << (bit % 8);
            self.bit_flips.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn append(&mut self, clock: &mut SimClock, data: &[u8]) -> IqResult<u64> {
        let bs = self.block_size();
        let start = self.inner.num_blocks();
        let n = data.len().div_ceil(bs) as u64;
        match self.crash_gate("append", start, data.len()) {
            Ok(None) => {}
            Ok(Some(keep)) => {
                let mut torn = data[..keep].to_vec();
                torn.resize(n as usize * bs, 0);
                self.inner.append(clock, &torn)?;
                self.torn_writes.fetch_add(1, Ordering::Relaxed);
                clock.note_fault();
                return Err(crash_error("append", start));
            }
            Err(e) => {
                clock.note_fault();
                return Err(e);
            }
        }
        if let Some(b) = self.claim_transient(
            &self.write_faulted,
            self.cfg.write_transient_rate,
            KIND_WRITE,
            start,
            n.max(1),
        ) {
            self.transient_writes.fetch_add(1, Ordering::Relaxed);
            clock.note_fault();
            return Err(IqError::Io {
                op: "append",
                block: b,
                transient: true,
                detail: "injected transient write fault".into(),
            });
        }
        if self.cfg.torn_write_rate > 0.0
            && n > 0
            && draw(self.cfg.seed, start, KIND_TORN) < self.cfg.torn_write_rate
        {
            // Persist only a prefix of the payload, zero-padded to whole
            // blocks, then fail: the classic torn multi-block write.
            let keep = (mix(self.cfg.seed ^ start) as usize % data.len().max(1)).max(1);
            let mut torn = data[..keep].to_vec();
            torn.resize(n as usize * bs, 0);
            self.inner.append(clock, &torn)?;
            self.torn_writes.fetch_add(1, Ordering::Relaxed);
            clock.note_fault();
            return Err(IqError::Io {
                op: "append",
                block: start,
                transient: false,
                detail: format!(
                    "injected torn write ({keep} of {} bytes persisted)",
                    data.len()
                ),
            });
        }
        self.inner.append(clock, data)
    }

    fn write_blocks(&mut self, clock: &mut SimClock, start: u64, data: &[u8]) -> IqResult<()> {
        let bs = self.block_size();
        assert_eq!(data.len() % bs, 0, "partial-block write");
        let n = (data.len() / bs) as u64;
        match self.crash_gate("write", start, data.len()) {
            Ok(None) => {}
            Ok(Some(keep)) => {
                let mut torn = data[..keep].to_vec();
                torn.resize(data.len(), 0);
                self.inner.write_blocks(clock, start, &torn)?;
                self.torn_writes.fetch_add(1, Ordering::Relaxed);
                clock.note_fault();
                return Err(crash_error("write", start));
            }
            Err(e) => {
                clock.note_fault();
                return Err(e);
            }
        }
        if let Some(b) = self.claim_transient(
            &self.write_faulted,
            self.cfg.write_transient_rate,
            KIND_WRITE,
            start,
            n,
        ) {
            self.transient_writes.fetch_add(1, Ordering::Relaxed);
            clock.note_fault();
            return Err(IqError::Io {
                op: "write",
                block: b,
                transient: true,
                detail: "injected transient write fault".into(),
            });
        }
        if self.cfg.torn_write_rate > 0.0
            && n > 0
            && draw(self.cfg.seed, start, KIND_TORN) < self.cfg.torn_write_rate
        {
            let keep = (mix(self.cfg.seed ^ start) as usize % data.len()).max(1);
            let mut torn = data[..keep].to_vec();
            torn.resize(data.len(), 0);
            self.inner.write_blocks(clock, start, &torn)?;
            self.torn_writes.fetch_add(1, Ordering::Relaxed);
            clock.note_fault();
            return Err(IqError::Io {
                op: "write",
                block: start,
                transient: false,
                detail: format!(
                    "injected torn write ({keep} of {} bytes persisted)",
                    data.len()
                ),
            });
        }
        self.inner.write_blocks(clock, start, data)
    }

    fn truncate_blocks(&mut self, clock: &mut SimClock, nblocks: u64) -> IqResult<()> {
        match self.crash_gate("truncate", nblocks, 0) {
            Ok(_) => self.inner.truncate_blocks(clock, nblocks),
            Err(e) => {
                clock.note_fault();
                Err(e)
            }
        }
    }

    fn device_id(&self) -> u64 {
        self.inner.device_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::retry::{read_to_vec_retry, RetryPolicy};

    fn filled(blocks: u64, cfg: FaultConfig) -> FaultInjectingDevice {
        let mut inner = MemDevice::new(64);
        let mut clock = SimClock::default();
        for i in 0..blocks {
            inner.append(&mut clock, &[(i % 251) as u8; 64]).unwrap();
        }
        FaultInjectingDevice::new(Box::new(inner), cfg)
    }

    #[test]
    fn transient_read_fails_once_then_succeeds() {
        let dev = filled(64, FaultConfig::transient(7, 0.5));
        let mut clock = SimClock::default();
        let mut failures = 0;
        for b in 0..64u64 {
            match dev.read_to_vec(&mut clock, b, 1) {
                Ok(got) => assert_eq!(got, vec![(b % 251) as u8; 64]),
                Err(e) => {
                    assert!(e.is_transient(), "{e}");
                    failures += 1;
                    // Retry must succeed.
                    let got = dev.read_to_vec(&mut clock, b, 1).unwrap();
                    assert_eq!(got, vec![(b % 251) as u8; 64]);
                }
            }
        }
        assert!(failures > 10, "rate 0.5 over 64 blocks: got {failures}");
        assert_eq!(dev.stats().transient_reads, failures);
    }

    #[test]
    fn schedule_is_deterministic() {
        let outcome = |seed: u64| -> Vec<bool> {
            let mut clock = SimClock::default();
            let dev = filled(32, FaultConfig::transient(seed, 0.3));
            (0..32u64)
                .map(|b| dev.read_to_vec(&mut clock, b, 1).is_ok())
                .collect()
        };
        assert_eq!(outcome(1), outcome(1));
        assert_ne!(outcome(1), outcome(2), "different seeds, different faults");
    }

    #[test]
    fn bit_flips_corrupt_silently() {
        let dev = filled(
            32,
            FaultConfig {
                seed: 3,
                read_transient_rate: 0.0,
                write_transient_rate: 0.0,
                bit_flip_rate: 0.25,
                torn_write_rate: 0.0,
            },
        );
        let mut clock = SimClock::default();
        let mut corrupted = 0;
        for b in 0..32u64 {
            let got = dev.read_to_vec(&mut clock, b, 1).unwrap();
            if got != vec![(b % 251) as u8; 64] {
                corrupted += 1;
                // The flip is stable: same wrong bytes every read.
                assert_eq!(got, dev.read_to_vec(&mut clock, b, 1).unwrap());
            }
        }
        assert!(corrupted > 0);
        assert_eq!(dev.stats().bit_flips % corrupted, 0);
    }

    #[test]
    fn planted_corruption_always_fires() {
        let dev = filled(8, FaultConfig::none(0));
        dev.corrupt_block(5);
        let mut clock = SimClock::default();
        assert_eq!(
            dev.read_to_vec(&mut clock, 4, 1).unwrap(),
            vec![4u8; 64],
            "other blocks untouched"
        );
        assert_ne!(dev.read_to_vec(&mut clock, 5, 1).unwrap(), vec![5u8; 64]);
    }

    #[test]
    fn torn_write_persists_prefix_and_errors() {
        let inner = MemDevice::new(64);
        let mut dev = FaultInjectingDevice::new(
            Box::new(inner),
            FaultConfig {
                seed: 11,
                read_transient_rate: 0.0,
                write_transient_rate: 0.0,
                bit_flip_rate: 0.0,
                torn_write_rate: 1.0,
            },
        );
        let mut clock = SimClock::default();
        let err = dev.append(&mut clock, &[0xAB; 64 * 4]).unwrap_err();
        assert!(!err.is_transient());
        assert_eq!(dev.stats().torn_writes, 1);
        // Blocks exist but the tail is not the payload.
        assert_eq!(dev.num_blocks(), 4);
        let got = dev.read_to_vec(&mut clock, 0, 4).unwrap();
        assert_ne!(got, vec![0xABu8; 64 * 4]);
        assert_eq!(&got[..32], &[0xABu8; 32][..], "a prefix was persisted");
    }

    #[test]
    fn armed_crash_kills_after_exactly_n_writes() {
        let inner = MemDevice::new(64);
        let mut dev = FaultInjectingDevice::new(Box::new(inner), FaultConfig::none(9));
        let mut clock = SimClock::default();
        dev.arm_crash(2, false);
        assert_eq!(dev.append(&mut clock, &[1u8; 64]).unwrap(), 0);
        assert_eq!(dev.append(&mut clock, &[2u8; 64]).unwrap(), 1);
        // Third mutation dies; nothing of it persists.
        let err = dev.append(&mut clock, &[3u8; 64]).unwrap_err();
        assert!(!err.is_transient());
        assert!(dev.crashed());
        assert_eq!(dev.num_blocks(), 2);
        // Every later mutation fails too; reads still work.
        assert!(dev.write_blocks(&mut clock, 0, &[9u8; 64]).is_err());
        assert!(dev.truncate_blocks(&mut clock, 1).is_err());
        assert_eq!(dev.read_to_vec(&mut clock, 1, 1).unwrap(), vec![2u8; 64]);
    }

    #[test]
    fn armed_crash_can_tear_the_fatal_write() {
        let inner = MemDevice::new(64);
        let mut dev = FaultInjectingDevice::new(Box::new(inner), FaultConfig::none(13));
        let mut clock = SimClock::default();
        dev.arm_crash(0, true);
        let err = dev.append(&mut clock, &[0xEE; 64 * 4]).unwrap_err();
        assert!(!err.is_transient());
        // A prefix persisted, zero-padded to whole blocks.
        assert_eq!(dev.num_blocks(), 4);
        let got = dev.read_to_vec(&mut clock, 0, 4).unwrap();
        assert_ne!(got, vec![0xEEu8; 64 * 4]);
        assert_eq!(got[0], 0xEE, "at least one byte of the prefix persisted");
        assert_eq!(dev.stats().torn_writes, 1);
    }

    #[test]
    fn truncate_passes_through_and_shrinks() {
        let mut dev = FaultInjectingDevice::new(Box::new(MemDevice::new(64)), FaultConfig::none(1));
        let mut clock = SimClock::default();
        dev.append(&mut clock, &[7u8; 64 * 3]).unwrap();
        dev.truncate_blocks(&mut clock, 1).unwrap();
        assert_eq!(dev.num_blocks(), 1);
    }

    #[test]
    fn retry_loop_recovers_everything_transient() {
        let dev = filled(128, FaultConfig::transient(42, 0.4));
        let mut clock = SimClock::default();
        let policy = RetryPolicy::default();
        for b in 0..128u64 {
            let got = read_to_vec_retry(&dev, &mut clock, b, 1, &policy).unwrap();
            assert_eq!(got, vec![(b % 251) as u8; 64]);
        }
        assert!(clock.stats().io_retries > 0);
        assert!(clock.stats().injected_faults > 0);
    }
}
