//! Disk and CPU cost models and the simulated clock.

use iq_obs::{Phase, PhaseTimes};
use std::time::Instant;

/// Disk timing parameters — the `t_seek` / `t_xfer` of Section 2.
///
/// Defaults model a late-1990s disk (the paper's experiments ran on
/// HP 9000/780 workstations): a 10 ms average seek (including rotational
/// latency) and 1 ms to transfer one 8 KiB block (≈ 8 MB/s sustained).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskModel {
    /// Time for one random seek, in seconds.
    pub t_seek: f64,
    /// Time to transfer one block, in seconds.
    pub t_xfer: f64,
    /// Block size in bytes.
    pub block_size: usize,
}

impl Default for DiskModel {
    fn default() -> Self {
        Self {
            t_seek: 0.010,
            t_xfer: 0.001,
            block_size: 8192,
        }
    }
}

impl DiskModel {
    /// The over-read horizon `v = t_seek / t_xfer` (eq 21): the maximum
    /// number of blocks worth over-reading instead of seeking.
    pub fn overread_horizon(&self) -> f64 {
        self.t_seek / self.t_xfer
    }

    /// Number of blocks needed to store `bytes` bytes.
    pub fn blocks_for(&self, bytes: usize) -> u64 {
        (bytes.div_ceil(self.block_size)) as u64
    }

    /// Cost of reading `n` blocks with one initial seek (a sequential scan).
    pub fn scan_cost(&self, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.t_seek + n as f64 * self.t_xfer
        }
    }

    /// Cost of reading `n` blocks with one seek each (naive random access).
    pub fn random_cost(&self, n: u64) -> f64 {
        n as f64 * (self.t_seek + self.t_xfer)
    }
}

/// CPU timing parameters for the simulated total query time.
///
/// The paper reports *total* time; a pure I/O model would flatter the
/// VA-file, whose filter phase evaluates bounds for every one of the N
/// database points. The default (100 ns per dimension-term) is calibrated to
/// a ~1999 workstation evaluating a distance term (load, subtract, multiply,
/// add).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuModel {
    /// Seconds per per-dimension term of a distance / bound computation.
    pub per_dim_op: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        Self { per_dim_op: 100e-9 }
    }
}

impl CpuModel {
    /// A CPU model that charges nothing (pure-I/O accounting).
    pub fn free() -> Self {
        Self { per_dim_op: 0.0 }
    }

    /// Cost of `count` distance-like evaluations over `dim` dimensions.
    pub fn dist_cost(&self, dim: usize, count: u64) -> f64 {
        self.per_dim_op * dim as f64 * count as f64
    }
}

/// Accumulated I/O statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Random seeks performed.
    pub seeks: u64,
    /// Blocks transferred (read).
    pub blocks_read: u64,
    /// Blocks transferred (written).
    pub blocks_written: u64,
    /// Blocks whose checksum verification failed.
    pub corrupt_blocks: u64,
    /// I/O operations retried after a transient fault.
    pub io_retries: u64,
    /// Faults injected by a fault-injecting device.
    pub injected_faults: u64,
    /// Block-cache lookups served entirely from memory.
    pub cache_hits: u64,
    /// Block-cache lookups that went to the underlying device.
    pub cache_misses: u64,
}

impl IoStats {
    /// Adds `other`'s counters into `self` (e.g. folding per-thread stats
    /// into a batch total).
    pub fn merge(&mut self, other: &IoStats) {
        self.seeks += other.seeks;
        self.blocks_read += other.blocks_read;
        self.blocks_written += other.blocks_written;
        self.corrupt_blocks += other.corrupt_blocks;
        self.io_retries += other.io_retries;
        self.injected_faults += other.injected_faults;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }
}

/// The simulated clock: accumulates disk time, CPU time and statistics.
///
/// A clock models one disk arm shared by however many [`BlockDevice`]s take
/// part in an experiment: an access is sequential (no seek) only if it
/// continues exactly where the previous access — *on any device* — left off
/// on the same device. Interleaving accesses across files therefore costs
/// seeks, exactly as it would on a real single-disk installation.
///
/// [`BlockDevice`]: crate::BlockDevice
#[derive(Clone, Debug)]
pub struct SimClock {
    disk: DiskModel,
    cpu: CpuModel,
    io_time: f64,
    cpu_time: f64,
    stats: IoStats,
    /// (device id, next block) the head is positioned at.
    head: Option<(u64, u64)>,
    /// Per-phase simulated + wall time attributed so far.
    phases: PhaseTimes,
    /// The currently open phase: `(phase, sim time at open, wall at open)`.
    open_phase: Option<(Phase, f64, Instant)>,
}

impl SimClock {
    /// Creates a clock for the given disk and CPU models.
    pub fn new(disk: DiskModel, cpu: CpuModel) -> Self {
        Self {
            disk,
            cpu,
            io_time: 0.0,
            cpu_time: 0.0,
            stats: IoStats::default(),
            head: None,
            phases: PhaseTimes::default(),
            open_phase: None,
        }
    }

    /// The disk model in effect.
    pub fn disk(&self) -> &DiskModel {
        &self.disk
    }

    /// The CPU model in effect.
    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    /// Simulated disk time so far, in seconds.
    pub fn io_time(&self) -> f64 {
        self.io_time
    }

    /// Simulated CPU time so far, in seconds.
    pub fn cpu_time(&self) -> f64 {
        self.cpu_time
    }

    /// Simulated total time (disk + CPU) so far, in seconds.
    pub fn total_time(&self) -> f64 {
        self.io_time + self.cpu_time
    }

    /// Accumulated I/O statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets times, statistics, phase times and head position (e.g.
    /// between queries).
    pub fn reset(&mut self) {
        self.io_time = 0.0;
        self.cpu_time = 0.0;
        self.stats = IoStats::default();
        self.head = None;
        self.phases = PhaseTimes::default();
        self.open_phase = None;
    }

    /// Folds another clock's accumulated time and statistics into this one
    /// (merging per-thread clocks after a parallel batch). The head
    /// position is invalidated: the merged clock describes total work, not
    /// a physical arm position.
    pub fn absorb(&mut self, other: &SimClock) {
        self.io_time += other.io_time;
        self.cpu_time += other.cpu_time;
        self.stats.merge(&other.stats);
        self.phases.merge(&other.phases);
        self.head = None;
    }

    /// Charges a read of `nblocks` starting at `start` on device `dev`.
    /// Called by device implementations.
    pub fn charge_read(&mut self, dev: u64, start: u64, nblocks: u64) {
        if nblocks == 0 {
            return;
        }
        if self.head != Some((dev, start)) {
            self.io_time += self.disk.t_seek;
            self.stats.seeks += 1;
        }
        self.io_time += nblocks as f64 * self.disk.t_xfer;
        self.stats.blocks_read += nblocks;
        self.head = Some((dev, start + nblocks));
    }

    /// Charges a write of `nblocks` starting at `start` on device `dev`.
    pub fn charge_write(&mut self, dev: u64, start: u64, nblocks: u64) {
        if nblocks == 0 {
            return;
        }
        if self.head != Some((dev, start)) {
            self.io_time += self.disk.t_seek;
            self.stats.seeks += 1;
        }
        self.io_time += nblocks as f64 * self.disk.t_xfer;
        self.stats.blocks_written += nblocks;
        self.head = Some((dev, start + nblocks));
    }

    /// Records a checksum-verification failure (called by the checksumming
    /// device layer).
    pub fn note_corrupt_block(&mut self) {
        self.stats.corrupt_blocks += 1;
    }

    /// Records a retried I/O operation (called by the retry helpers).
    pub fn note_retry(&mut self) {
        self.stats.io_retries += 1;
    }

    /// Records an injected fault (called by a fault-injecting device).
    pub fn note_fault(&mut self) {
        self.stats.injected_faults += 1;
    }

    /// Records a block-cache lookup served from memory (called by the
    /// caching device layer).
    pub fn note_cache_hit(&mut self) {
        self.stats.cache_hits += 1;
    }

    /// Records a block-cache lookup that had to read through (called by
    /// the caching device layer).
    pub fn note_cache_miss(&mut self) {
        self.stats.cache_misses += 1;
    }

    /// Opens a pipeline phase: simulated and wall time elapse between
    /// this call and the matching [`SimClock::phase_end`] (or the next
    /// `phase_begin` — phases are flat, not nested) are attributed to
    /// `phase`. When every charge happens inside some phase, the phase
    /// sim times sum exactly to the clock's total time.
    pub fn phase_begin(&mut self, phase: Phase) {
        self.phase_end();
        self.open_phase = Some((phase, self.total_time(), Instant::now()));
    }

    /// Closes the currently open phase, if any.
    pub fn phase_end(&mut self) {
        if let Some((phase, sim0, wall0)) = self.open_phase.take() {
            self.phases.add(
                phase,
                self.total_time() - sim0,
                wall0.elapsed().as_secs_f64(),
            );
        }
    }

    /// Per-phase times attributed so far (an open phase's tail is not
    /// included until it ends).
    pub fn phase_times(&self) -> PhaseTimes {
        self.phases
    }

    /// Charges CPU time for `count` distance-like evaluations over `dim`
    /// dimensions.
    pub fn charge_dist_evals(&mut self, dim: usize, count: u64) {
        self.cpu_time += self.cpu.dist_cost(dim, count);
    }

    /// Charges raw CPU seconds (for non-distance work an algorithm wants to
    /// account for).
    pub fn charge_cpu_seconds(&mut self, secs: f64) {
        self.cpu_time += secs;
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new(DiskModel::default(), CpuModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads_seek_once() {
        let mut c = SimClock::default();
        c.charge_read(1, 0, 4);
        c.charge_read(1, 4, 4);
        assert_eq!(c.stats().seeks, 1);
        assert_eq!(c.stats().blocks_read, 8);
        let d = DiskModel::default();
        assert!((c.io_time() - (d.t_seek + 8.0 * d.t_xfer)).abs() < 1e-12);
    }

    #[test]
    fn gap_or_device_switch_seeks() {
        let mut c = SimClock::default();
        c.charge_read(1, 0, 1);
        c.charge_read(1, 5, 1); // gap
        c.charge_read(2, 6, 1); // other device
        c.charge_read(1, 0, 1); // back again
        assert_eq!(c.stats().seeks, 4);
    }

    #[test]
    fn zero_block_read_is_free() {
        let mut c = SimClock::default();
        c.charge_read(1, 10, 0);
        assert_eq!(c.io_time(), 0.0);
        assert_eq!(c.stats().seeks, 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = SimClock::default();
        c.charge_read(1, 0, 2);
        c.charge_dist_evals(16, 100);
        c.reset();
        assert_eq!(c.total_time(), 0.0);
        assert_eq!(c.stats(), IoStats::default());
    }

    #[test]
    fn cpu_model_charges() {
        let mut c = SimClock::default();
        c.charge_dist_evals(10, 1000);
        assert!((c.cpu_time() - 100e-9 * 10.0 * 1000.0).abs() < 1e-15);
        assert_eq!(c.io_time(), 0.0);
    }

    #[test]
    fn scan_vs_random_cost() {
        let d = DiskModel::default();
        assert!(d.scan_cost(100) < d.random_cost(100));
        assert_eq!(d.scan_cost(0), 0.0);
        assert!((d.random_cost(3) - 3.0 * (d.t_seek + d.t_xfer)).abs() < 1e-12);
    }

    #[test]
    fn blocks_for_rounds_up() {
        let d = DiskModel::default();
        assert_eq!(d.blocks_for(0), 0);
        assert_eq!(d.blocks_for(1), 1);
        assert_eq!(d.blocks_for(8192), 1);
        assert_eq!(d.blocks_for(8193), 2);
    }

    #[test]
    fn io_time_is_additive_across_accesses() {
        // Charging accesses one by one equals charging them in any split,
        // as long as head positions line up.
        let mut a = SimClock::default();
        a.charge_read(1, 0, 10);
        let mut b = SimClock::default();
        b.charge_read(1, 0, 4);
        b.charge_read(1, 4, 6);
        assert_eq!(a.io_time(), b.io_time());
        assert_eq!(a.stats().blocks_read, b.stats().blocks_read);
    }

    #[test]
    fn overread_horizon_matches_definition() {
        let d = DiskModel {
            t_seek: 0.02,
            t_xfer: 0.004,
            block_size: 1024,
        };
        assert!((d.overread_horizon() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_sums_time_and_stats() {
        let mut a = SimClock::default();
        a.charge_read(1, 0, 4);
        a.charge_dist_evals(8, 10);
        let mut b = SimClock::default();
        b.charge_read(2, 7, 3);
        b.charge_write(2, 7, 1);
        let mut merged = SimClock::default();
        merged.absorb(&a);
        merged.absorb(&b);
        assert!((merged.io_time() - (a.io_time() + b.io_time())).abs() < 1e-15);
        assert!((merged.cpu_time() - (a.cpu_time() + b.cpu_time())).abs() < 1e-15);
        let mut expect = a.stats();
        expect.merge(&b.stats());
        assert_eq!(merged.stats(), expect);
        // Head is invalidated: the next access seeks.
        let seeks = merged.stats().seeks;
        merged.charge_read(2, 8, 1);
        assert_eq!(merged.stats().seeks, seeks + 1);
    }

    #[test]
    fn phase_times_sum_to_total_when_all_work_is_phased() {
        let mut c = SimClock::default();
        c.phase_begin(Phase::Directory);
        c.charge_read(1, 0, 4);
        c.phase_begin(Phase::Filter); // flat: closes Directory
        c.charge_read(1, 4, 2);
        c.charge_dist_evals(8, 100);
        c.phase_begin(Phase::Refine);
        c.charge_read(2, 0, 1);
        c.phase_end();
        let p = c.phase_times();
        assert!((p.total_sim() - c.total_time()).abs() < 1e-15);
        assert!(p.sim[Phase::Directory.index()] > 0.0);
        assert!(p.sim[Phase::Filter.index()] > 0.0);
        assert!(p.sim[Phase::Refine.index()] > 0.0);
        assert_eq!(p.sim[Phase::Plan.index()], 0.0);
        // Absorb folds phases; reset clears them.
        let mut m = SimClock::default();
        m.absorb(&c);
        m.absorb(&c);
        assert!((m.phase_times().total_sim() - 2.0 * p.total_sim()).abs() < 1e-12);
        c.reset();
        assert!(c.phase_times().is_empty());
    }

    #[test]
    fn cache_notes_accumulate_and_merge() {
        let mut a = SimClock::default();
        a.note_cache_hit();
        a.note_cache_hit();
        a.note_cache_miss();
        assert_eq!(a.stats().cache_hits, 2);
        assert_eq!(a.stats().cache_misses, 1);
        let mut b = SimClock::default();
        b.note_cache_miss();
        a.absorb(&b);
        assert_eq!(a.stats().cache_misses, 2);
    }

    #[test]
    fn write_charges_like_read() {
        let mut c = SimClock::default();
        c.charge_write(1, 0, 3);
        assert_eq!(c.stats().blocks_written, 3);
        assert_eq!(c.stats().seeks, 1);
    }
}
