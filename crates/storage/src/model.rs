//! Disk and CPU cost models and the simulated clock.

use iq_obs::{Phase, PhaseTimes, TraceBuilder, TraceTree};
use std::time::Instant;

/// Disk timing parameters — the `t_seek` / `t_xfer` of Section 2.
///
/// Defaults model a late-1990s disk (the paper's experiments ran on
/// HP 9000/780 workstations): a 10 ms average seek (including rotational
/// latency) and 1 ms to transfer one 8 KiB block (≈ 8 MB/s sustained).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskModel {
    /// Time for one random seek, in seconds.
    pub t_seek: f64,
    /// Time to transfer one block, in seconds.
    pub t_xfer: f64,
    /// Block size in bytes.
    pub block_size: usize,
}

impl Default for DiskModel {
    fn default() -> Self {
        Self {
            t_seek: 0.010,
            t_xfer: 0.001,
            block_size: 8192,
        }
    }
}

impl DiskModel {
    /// The over-read horizon `v = t_seek / t_xfer` (eq 21): the maximum
    /// number of blocks worth over-reading instead of seeking.
    pub fn overread_horizon(&self) -> f64 {
        self.t_seek / self.t_xfer
    }

    /// Number of blocks needed to store `bytes` bytes.
    pub fn blocks_for(&self, bytes: usize) -> u64 {
        (bytes.div_ceil(self.block_size)) as u64
    }

    /// Cost of reading `n` blocks with one initial seek (a sequential scan).
    pub fn scan_cost(&self, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.t_seek + n as f64 * self.t_xfer
        }
    }

    /// Cost of reading `n` blocks with one seek each (naive random access).
    pub fn random_cost(&self, n: u64) -> f64 {
        n as f64 * (self.t_seek + self.t_xfer)
    }
}

/// CPU timing parameters for the simulated total query time.
///
/// The paper reports *total* time; a pure I/O model would flatter the
/// VA-file, whose filter phase evaluates bounds for every one of the N
/// database points. The default (100 ns per dimension-term) is calibrated to
/// a ~1999 workstation evaluating a distance term (load, subtract, multiply,
/// add).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuModel {
    /// Seconds per per-dimension term of a distance / bound computation.
    pub per_dim_op: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        Self { per_dim_op: 100e-9 }
    }
}

impl CpuModel {
    /// A CPU model that charges nothing (pure-I/O accounting).
    pub fn free() -> Self {
        Self { per_dim_op: 0.0 }
    }

    /// Cost of `count` distance-like evaluations over `dim` dimensions.
    pub fn dist_cost(&self, dim: usize, count: u64) -> f64 {
        self.per_dim_op * dim as f64 * count as f64
    }
}

/// Accumulated I/O statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Random seeks performed.
    pub seeks: u64,
    /// Blocks transferred (read).
    pub blocks_read: u64,
    /// Blocks transferred (written).
    pub blocks_written: u64,
    /// Blocks whose checksum verification failed.
    pub corrupt_blocks: u64,
    /// I/O operations retried after a transient fault.
    pub io_retries: u64,
    /// Faults injected by a fault-injecting device.
    pub injected_faults: u64,
    /// Block-cache lookups served entirely from memory.
    pub cache_hits: u64,
    /// Block-cache lookups that went to the underlying device.
    pub cache_misses: u64,
}

impl IoStats {
    /// Adds `other`'s counters into `self` (e.g. folding per-thread stats
    /// into a batch total).
    pub fn merge(&mut self, other: &IoStats) {
        self.seeks += other.seeks;
        self.blocks_read += other.blocks_read;
        self.blocks_written += other.blocks_written;
        self.corrupt_blocks += other.corrupt_blocks;
        self.io_retries += other.io_retries;
        self.injected_faults += other.injected_faults;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }
}

/// The simulated clock: accumulates disk time, CPU time and statistics.
///
/// A clock models one disk arm shared by however many [`BlockDevice`]s take
/// part in an experiment: an access is sequential (no seek) only if it
/// continues exactly where the previous access — *on any device* — left off
/// on the same device. Interleaving accesses across files therefore costs
/// seeks, exactly as it would on a real single-disk installation.
///
/// [`BlockDevice`]: crate::BlockDevice
#[derive(Clone, Debug)]
pub struct SimClock {
    disk: DiskModel,
    cpu: CpuModel,
    io_time: f64,
    cpu_time: f64,
    stats: IoStats,
    /// (device id, next block) the head is positioned at.
    head: Option<(u64, u64)>,
    /// Per-phase simulated + wall time attributed so far.
    phases: PhaseTimes,
    /// The currently open phase: `(phase, sim time at open, wall at
    /// open, seeks at open, blocks read at open)`.
    open_phase: Option<(Phase, f64, Instant, u64, u64)>,
    /// Hierarchical trace recorder; `None` (the default) keeps every
    /// tracing entry point a single branch with no allocation.
    tracer: Option<Box<TraceBuilder>>,
}

impl SimClock {
    /// Creates a clock for the given disk and CPU models.
    pub fn new(disk: DiskModel, cpu: CpuModel) -> Self {
        Self {
            disk,
            cpu,
            io_time: 0.0,
            cpu_time: 0.0,
            stats: IoStats::default(),
            head: None,
            phases: PhaseTimes::default(),
            open_phase: None,
            tracer: None,
        }
    }

    /// The disk model in effect.
    pub fn disk(&self) -> &DiskModel {
        &self.disk
    }

    /// The CPU model in effect.
    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    /// Simulated disk time so far, in seconds.
    pub fn io_time(&self) -> f64 {
        self.io_time
    }

    /// Simulated CPU time so far, in seconds.
    pub fn cpu_time(&self) -> f64 {
        self.cpu_time
    }

    /// Simulated total time (disk + CPU) so far, in seconds.
    pub fn total_time(&self) -> f64 {
        self.io_time + self.cpu_time
    }

    /// Accumulated I/O statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets times, statistics, phase times and head position (e.g.
    /// between queries). A tracer, if enabled, restarts with an empty
    /// tree — tracing stays on across resets.
    pub fn reset(&mut self) {
        self.io_time = 0.0;
        self.cpu_time = 0.0;
        self.stats = IoStats::default();
        self.head = None;
        self.phases = PhaseTimes::default();
        self.open_phase = None;
        if self.tracer.is_some() {
            self.tracer = Some(Box::new(TraceBuilder::new("query", 0.0, 0, 0)));
        }
    }

    /// Folds another clock's accumulated time and statistics into this one
    /// (merging per-thread clocks after a parallel batch). The head
    /// position is invalidated: the merged clock describes total work, not
    /// a physical arm position.
    pub fn absorb(&mut self, other: &SimClock) {
        self.io_time += other.io_time;
        self.cpu_time += other.cpu_time;
        self.stats.merge(&other.stats);
        self.phases.merge(&other.phases);
        self.head = None;
        if let (Some(t), Some(o)) = (&mut self.tracer, &other.tracer) {
            t.add_child_tree(
                o.snapshot_tree(
                    other.io_time + other.cpu_time,
                    other.stats.seeks,
                    other.stats.blocks_read,
                )
                .root,
            );
        }
    }

    /// Charges a read of `nblocks` starting at `start` on device `dev`.
    /// Called by device implementations.
    pub fn charge_read(&mut self, dev: u64, start: u64, nblocks: u64) {
        if nblocks == 0 {
            return;
        }
        if self.head != Some((dev, start)) {
            self.io_time += self.disk.t_seek;
            self.stats.seeks += 1;
        }
        self.io_time += nblocks as f64 * self.disk.t_xfer;
        self.stats.blocks_read += nblocks;
        self.head = Some((dev, start + nblocks));
    }

    /// Charges a write of `nblocks` starting at `start` on device `dev`.
    pub fn charge_write(&mut self, dev: u64, start: u64, nblocks: u64) {
        if nblocks == 0 {
            return;
        }
        if self.head != Some((dev, start)) {
            self.io_time += self.disk.t_seek;
            self.stats.seeks += 1;
        }
        self.io_time += nblocks as f64 * self.disk.t_xfer;
        self.stats.blocks_written += nblocks;
        self.head = Some((dev, start + nblocks));
    }

    /// Records a checksum-verification failure (called by the checksumming
    /// device layer).
    pub fn note_corrupt_block(&mut self) {
        self.stats.corrupt_blocks += 1;
    }

    /// Records a retried I/O operation (called by the retry helpers).
    pub fn note_retry(&mut self) {
        self.stats.io_retries += 1;
    }

    /// Records an injected fault (called by a fault-injecting device).
    pub fn note_fault(&mut self) {
        self.stats.injected_faults += 1;
    }

    /// Records a block-cache lookup served from memory (called by the
    /// caching device layer).
    pub fn note_cache_hit(&mut self) {
        self.stats.cache_hits += 1;
    }

    /// Records a block-cache lookup that had to read through (called by
    /// the caching device layer).
    pub fn note_cache_miss(&mut self) {
        self.stats.cache_misses += 1;
    }

    /// Opens a pipeline phase: simulated and wall time elapse between
    /// this call and the matching [`SimClock::phase_end`] (or the next
    /// `phase_begin` — phases are flat, not nested) are attributed to
    /// `phase`. When every charge happens inside some phase, the phase
    /// sim times sum exactly to the clock's total time.
    pub fn phase_begin(&mut self, phase: Phase) {
        self.phase_end();
        self.open_phase = Some((
            phase,
            self.total_time(),
            Instant::now(),
            self.stats.seeks,
            self.stats.blocks_read,
        ));
    }

    /// Closes the currently open phase, if any. The simulated and wall
    /// deltas are computed once and fed to both the flat [`PhaseTimes`]
    /// and (when tracing) the trace tree's phase leaf, so the tree's
    /// leaves sum to the flat totals exactly.
    pub fn phase_end(&mut self) {
        if let Some((phase, sim0, wall0, seeks0, blocks0)) = self.open_phase.take() {
            let sim = self.total_time() - sim0;
            let wall = wall0.elapsed().as_secs_f64();
            self.phases.add(phase, sim, wall);
            if let Some(t) = &mut self.tracer {
                t.phase_leaf(
                    phase,
                    sim,
                    wall,
                    self.stats.seeks - seeks0,
                    self.stats.blocks_read - blocks0,
                );
            }
        }
    }

    /// Per-phase times attributed so far (an open phase's tail is not
    /// included until it ends).
    pub fn phase_times(&self) -> PhaseTimes {
        self.phases
    }

    /// Charges CPU time for `count` distance-like evaluations over `dim`
    /// dimensions.
    pub fn charge_dist_evals(&mut self, dim: usize, count: u64) {
        self.cpu_time += self.cpu.dist_cost(dim, count);
    }

    /// Charges raw CPU seconds (for non-distance work an algorithm wants to
    /// account for).
    pub fn charge_cpu_seconds(&mut self, secs: f64) {
        self.cpu_time += secs;
    }

    /// Starts recording a hierarchical trace tree. Until
    /// [`SimClock::take_trace`], phase accounting also produces phase
    /// leaves and the span methods record structure; with tracing off
    /// (the default) all of them are single-branch no-ops.
    pub fn enable_tracing(&mut self) {
        self.tracer = Some(Box::new(TraceBuilder::new(
            "query",
            self.total_time(),
            self.stats.seeks,
            self.stats.blocks_read,
        )));
    }

    /// Whether a trace is being recorded.
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Finishes and returns the recorded trace, turning tracing off.
    pub fn take_trace(&mut self) -> Option<TraceTree> {
        self.phase_end();
        self.tracer
            .take()
            .map(|t| t.finish(self.total_time(), self.stats.seeks, self.stats.blocks_read))
    }

    /// Opens a named child span in the trace (no-op when not tracing).
    pub fn span_begin(&mut self, name: &str) {
        let (sim, seeks, blocks) = (
            self.io_time + self.cpu_time,
            self.stats.seeks,
            self.stats.blocks_read,
        );
        if let Some(t) = &mut self.tracer {
            t.span_begin(name, sim, seeks, blocks);
        }
    }

    /// Closes the innermost open span (no-op when not tracing).
    pub fn span_end(&mut self) {
        let (sim, seeks, blocks) = (
            self.io_time + self.cpu_time,
            self.stats.seeks,
            self.stats.blocks_read,
        );
        if let Some(t) = &mut self.tracer {
            t.span_end(sim, seeks, blocks);
        }
    }

    /// Annotates the innermost open span (no-op when not tracing).
    pub fn span_attr(&mut self, key: &str, value: &dyn std::fmt::Display) {
        if let Some(t) = &mut self.tracer {
            t.attr(key, &value.to_string());
        }
    }

    /// Adds `n` to a counter on the innermost open span (no-op when not
    /// tracing; zero counts are skipped to keep trees lean).
    pub fn span_count(&mut self, key: &str, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(t) = &mut self.tracer {
            t.count(key, n);
        }
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new(DiskModel::default(), CpuModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads_seek_once() {
        let mut c = SimClock::default();
        c.charge_read(1, 0, 4);
        c.charge_read(1, 4, 4);
        assert_eq!(c.stats().seeks, 1);
        assert_eq!(c.stats().blocks_read, 8);
        let d = DiskModel::default();
        assert!((c.io_time() - (d.t_seek + 8.0 * d.t_xfer)).abs() < 1e-12);
    }

    #[test]
    fn gap_or_device_switch_seeks() {
        let mut c = SimClock::default();
        c.charge_read(1, 0, 1);
        c.charge_read(1, 5, 1); // gap
        c.charge_read(2, 6, 1); // other device
        c.charge_read(1, 0, 1); // back again
        assert_eq!(c.stats().seeks, 4);
    }

    #[test]
    fn zero_block_read_is_free() {
        let mut c = SimClock::default();
        c.charge_read(1, 10, 0);
        assert_eq!(c.io_time(), 0.0);
        assert_eq!(c.stats().seeks, 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = SimClock::default();
        c.charge_read(1, 0, 2);
        c.charge_dist_evals(16, 100);
        c.reset();
        assert_eq!(c.total_time(), 0.0);
        assert_eq!(c.stats(), IoStats::default());
    }

    #[test]
    fn cpu_model_charges() {
        let mut c = SimClock::default();
        c.charge_dist_evals(10, 1000);
        assert!((c.cpu_time() - 100e-9 * 10.0 * 1000.0).abs() < 1e-15);
        assert_eq!(c.io_time(), 0.0);
    }

    #[test]
    fn scan_vs_random_cost() {
        let d = DiskModel::default();
        assert!(d.scan_cost(100) < d.random_cost(100));
        assert_eq!(d.scan_cost(0), 0.0);
        assert!((d.random_cost(3) - 3.0 * (d.t_seek + d.t_xfer)).abs() < 1e-12);
    }

    #[test]
    fn blocks_for_rounds_up() {
        let d = DiskModel::default();
        assert_eq!(d.blocks_for(0), 0);
        assert_eq!(d.blocks_for(1), 1);
        assert_eq!(d.blocks_for(8192), 1);
        assert_eq!(d.blocks_for(8193), 2);
    }

    #[test]
    fn io_time_is_additive_across_accesses() {
        // Charging accesses one by one equals charging them in any split,
        // as long as head positions line up.
        let mut a = SimClock::default();
        a.charge_read(1, 0, 10);
        let mut b = SimClock::default();
        b.charge_read(1, 0, 4);
        b.charge_read(1, 4, 6);
        assert_eq!(a.io_time(), b.io_time());
        assert_eq!(a.stats().blocks_read, b.stats().blocks_read);
    }

    #[test]
    fn overread_horizon_matches_definition() {
        let d = DiskModel {
            t_seek: 0.02,
            t_xfer: 0.004,
            block_size: 1024,
        };
        assert!((d.overread_horizon() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_sums_time_and_stats() {
        let mut a = SimClock::default();
        a.charge_read(1, 0, 4);
        a.charge_dist_evals(8, 10);
        let mut b = SimClock::default();
        b.charge_read(2, 7, 3);
        b.charge_write(2, 7, 1);
        let mut merged = SimClock::default();
        merged.absorb(&a);
        merged.absorb(&b);
        assert!((merged.io_time() - (a.io_time() + b.io_time())).abs() < 1e-15);
        assert!((merged.cpu_time() - (a.cpu_time() + b.cpu_time())).abs() < 1e-15);
        let mut expect = a.stats();
        expect.merge(&b.stats());
        assert_eq!(merged.stats(), expect);
        // Head is invalidated: the next access seeks.
        let seeks = merged.stats().seeks;
        merged.charge_read(2, 8, 1);
        assert_eq!(merged.stats().seeks, seeks + 1);
    }

    #[test]
    fn phase_times_sum_to_total_when_all_work_is_phased() {
        let mut c = SimClock::default();
        c.phase_begin(Phase::Directory);
        c.charge_read(1, 0, 4);
        c.phase_begin(Phase::Filter); // flat: closes Directory
        c.charge_read(1, 4, 2);
        c.charge_dist_evals(8, 100);
        c.phase_begin(Phase::Refine);
        c.charge_read(2, 0, 1);
        c.phase_end();
        let p = c.phase_times();
        assert!((p.total_sim() - c.total_time()).abs() < 1e-15);
        assert!(p.sim[Phase::Directory.index()] > 0.0);
        assert!(p.sim[Phase::Filter.index()] > 0.0);
        assert!(p.sim[Phase::Refine.index()] > 0.0);
        assert_eq!(p.sim[Phase::Plan.index()], 0.0);
        // Absorb folds phases; reset clears them.
        let mut m = SimClock::default();
        m.absorb(&c);
        m.absorb(&c);
        assert!((m.phase_times().total_sim() - 2.0 * p.total_sim()).abs() < 1e-12);
        c.reset();
        assert!(c.phase_times().is_empty());
    }

    #[test]
    fn cache_notes_accumulate_and_merge() {
        let mut a = SimClock::default();
        a.note_cache_hit();
        a.note_cache_hit();
        a.note_cache_miss();
        assert_eq!(a.stats().cache_hits, 2);
        assert_eq!(a.stats().cache_misses, 1);
        let mut b = SimClock::default();
        b.note_cache_miss();
        a.absorb(&b);
        assert_eq!(a.stats().cache_misses, 2);
    }

    #[test]
    fn write_charges_like_read() {
        let mut c = SimClock::default();
        c.charge_write(1, 0, 3);
        assert_eq!(c.stats().blocks_written, 3);
        assert_eq!(c.stats().seeks, 1);
    }

    #[test]
    fn trace_phase_leaves_sum_exactly_to_phase_times() {
        let mut c = SimClock::default();
        c.enable_tracing();
        c.span_begin("engine");
        c.span_attr("k", &10);
        c.phase_begin(Phase::Directory);
        c.charge_read(1, 0, 4);
        c.phase_begin(Phase::Filter);
        c.charge_read(1, 9, 2);
        c.charge_dist_evals(8, 500);
        c.phase_begin(Phase::Filter); // coalesces with the previous leaf
        c.charge_read(1, 20, 2);
        c.phase_begin(Phase::Refine);
        c.charge_read(2, 0, 1);
        c.phase_end();
        c.span_count("pages_processed", 3);
        c.span_end();
        let flat = c.phase_times();
        let tree = c.take_trace().expect("tracing was on");
        assert!(!c.tracing());
        let (sim, wall) = tree.phase_totals();
        for p in iq_obs::PHASES {
            assert_eq!(sim[p.index()], flat.sim[p.index()], "{}", p.name());
            assert_eq!(wall[p.index()], flat.wall[p.index()], "{}", p.name());
        }
        assert!((tree.total_sim() - c.total_time()).abs() < 1e-15);
        // Structure: root -> engine -> [directory, filter x2, refine].
        let engine = &tree.root.children[0];
        assert_eq!(engine.name, "engine");
        assert_eq!(engine.attrs, vec![("k".to_string(), "10".to_string())]);
        assert_eq!(engine.children.len(), 3);
        assert_eq!(engine.children[1].merged, 2);
        assert_eq!(engine.children[1].blocks_read, 4);
        assert_eq!(tree.root.seeks, c.stats().seeks);
        assert_eq!(tree.root.blocks_read, c.stats().blocks_read);
    }

    #[test]
    fn untraced_clock_records_nothing_and_take_is_none() {
        let mut c = SimClock::default();
        c.span_begin("x");
        c.span_attr("a", &1);
        c.span_count("n", 3);
        c.span_end();
        c.phase_begin(Phase::Filter);
        c.charge_read(1, 0, 1);
        c.phase_end();
        assert!(!c.tracing());
        assert!(c.take_trace().is_none());
        assert!(c.phase_times().sim[Phase::Filter.index()] > 0.0);
    }

    #[test]
    fn reset_restarts_the_trace_but_keeps_tracing_on() {
        let mut c = SimClock::default();
        c.enable_tracing();
        c.phase_begin(Phase::Filter);
        c.charge_read(1, 0, 1);
        c.phase_end();
        c.reset();
        assert!(c.tracing());
        let tree = c.take_trace().expect("still tracing");
        assert!(tree.root.children.is_empty());
        assert_eq!(tree.root.sim, 0.0);
    }

    #[test]
    fn absorb_attaches_the_other_clocks_tree() {
        let mut chunk = SimClock::default();
        chunk.enable_tracing();
        chunk.phase_begin(Phase::Filter);
        chunk.charge_read(1, 0, 2);
        chunk.phase_end();
        let mut main = SimClock::default();
        main.enable_tracing();
        main.absorb(&chunk);
        let tree = main.take_trace().expect("tracing");
        let sub = &tree.root.children[0];
        assert_eq!(sub.name, "query");
        assert_eq!(sub.children[0].name, "filter");
        assert!((tree.total_sim() - main.phase_times().total_sim()).abs() < 1e-15);
        // An untraced absorber stays untraced.
        let mut plain = SimClock::default();
        plain.absorb(&chunk);
        assert!(plain.take_trace().is_none());
    }
}
