//! Simulated-disk block storage.
//!
//! The IQ-tree paper's entire argument is written in terms of two disk
//! parameters: the seek time `t_seek` and the per-block transfer time
//! `t_xfer` (Section 2). This crate provides:
//!
//! * [`DiskModel`] / [`CpuModel`] / [`SimClock`] — the cost model and the
//!   clock that accumulates simulated I/O and CPU time plus access
//!   statistics,
//! * [`BlockDevice`] with an in-memory ([`MemDevice`]) and a real
//!   file-backed ([`FileDevice`]) implementation; both charge the simulated
//!   clock identically, so experiments are deterministic regardless of
//!   backend,
//! * [`fetch`] — the optimal batch block-fetch planner of Section 2
//!   (Figure 1): given the sorted positions of the blocks an index selected,
//!   decide where to seek and where to over-read,
//! * robustness: typed errors ([`IqError`]), per-block CRC32 checksumming
//!   ([`ChecksummedDevice`]), deterministic fault injection
//!   ([`FaultInjectingDevice`]) and bounded retry with backoff
//!   ([`RetryPolicy`]).

pub mod checksum;
pub mod device;
pub mod error;
pub mod fault;
pub mod fetch;
pub mod mmap;
pub mod model;
pub mod observe;
pub mod retry;
pub mod stack;
pub mod wal;

pub use checksum::{crc32, crc32_update, ChecksummedDevice, CHECKSUM_BYTES};
pub use device::{BlockDevice, FileDevice, MemDevice};
pub use error::{IqError, IqResult};
pub use fault::{FaultConfig, FaultInjectingDevice, FaultStats};
pub use fetch::{plan_fetch, plan_fetch_bounded, plan_fetch_cost, Run};
pub use mmap::MmapFileDevice;
pub use model::{CpuModel, DiskModel, IoStats, SimClock};
pub use observe::ObservedDevice;
pub use retry::{read_blocks_retry, read_to_vec_retry, RetryPolicy};
pub use stack::{DeviceStack, RetryingDevice};
pub use wal::{FileWal, MemWal, WalStore, WAL_CHARGE_BLOCK};
