//! Optimal batch fetching of a known set of blocks (Section 2, Figure 1).
//!
//! Given the sorted disk positions of the `n` blocks an index selected, the
//! planner walks the list and decides, between consecutive selected blocks,
//! whether to seek or to over-read the gap: over-read exactly when
//! `(p_{i+1} − p_i − 1) · t_xfer < t_seek`. Seeger et al. (VLDB '93) proved
//! this greedy rule time-optimal (with unbounded buffer); in the extremes it
//! degenerates to a single full scan or to pure random accesses, which is the
//! behaviour the paper highlights.

use crate::error::IqResult;
use crate::model::{DiskModel, SimClock};
use crate::BlockDevice;

/// A contiguous run of blocks to read in one sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Run {
    /// First block of the run.
    pub start: u64,
    /// Number of blocks (selected + over-read).
    pub len: u64,
}

impl Run {
    /// Whether `pos` falls inside the run.
    pub fn contains(&self, pos: u64) -> bool {
        pos >= self.start && pos < self.start + self.len
    }
}

/// Plans the optimal fetch schedule for `positions` (must be sorted
/// ascending; duplicates are tolerated).
///
/// # Example
///
/// ```
/// use iq_storage::{plan_fetch, DiskModel, Run};
///
/// let disk = DiskModel::default(); // over-read horizon = 10 blocks
/// // Blocks 0 and 4 are close: over-read the gap. Block 1000 is far: seek.
/// let runs = plan_fetch(&[0, 4, 1000], &disk);
/// assert_eq!(runs, vec![Run { start: 0, len: 5 }, Run { start: 1000, len: 1 }]);
/// ```
///
/// # Panics
/// Panics (debug) if positions are not sorted.
pub fn plan_fetch(positions: &[u64], model: &DiskModel) -> Vec<Run> {
    debug_assert!(
        positions.windows(2).all(|w| w[0] <= w[1]),
        "positions must be sorted"
    );
    let mut runs: Vec<Run> = Vec::new();
    for &p in positions {
        match runs.last_mut() {
            Some(run) if run.contains(p) => {}
            Some(run) => {
                let gap = p - (run.start + run.len);
                // Over-read the gap iff cheaper than a seek (Figure 1).
                if (gap as f64) * model.t_xfer < model.t_seek {
                    run.len = p - run.start + 1;
                } else {
                    runs.push(Run { start: p, len: 1 });
                }
            }
            None => runs.push(Run { start: p, len: 1 }),
        }
    }
    runs
}

/// The modeled cost of executing a fetch plan: one seek plus the transfer
/// of every block of every run. (Assumes the head is not already positioned
/// at the first run, the conservative case.)
pub fn plan_fetch_cost(runs: &[Run], model: &DiskModel) -> f64 {
    runs.iter()
        .map(|r| model.t_seek + r.len as f64 * model.t_xfer)
        .sum()
}

/// Buffer-limited variant (Seeger et al., VLDB '93, consider exactly this
/// restriction): no run may exceed `max_run_blocks`, because only that much
/// buffer memory is available for one sweep. Runs the greedy rule, then
/// splits oversized runs; a split introduces a seek but never changes which
/// blocks are read.
///
/// # Panics
/// Panics if `max_run_blocks == 0`.
pub fn plan_fetch_bounded(positions: &[u64], model: &DiskModel, max_run_blocks: u64) -> Vec<Run> {
    assert!(max_run_blocks > 0, "buffer must hold at least one block");
    let mut out = Vec::new();
    for run in plan_fetch(positions, model) {
        let mut start = run.start;
        let mut remaining = run.len;
        while remaining > 0 {
            let len = remaining.min(max_run_blocks);
            out.push(Run { start, len });
            start += len;
            remaining -= len;
        }
    }
    out
}

/// Plans and executes the fetch against a device, returning for each *run*
/// its starting block and raw bytes. Callers slice out the blocks they
/// actually selected.
pub fn fetch_blocks(
    dev: &dyn BlockDevice,
    clock: &mut SimClock,
    positions: &[u64],
) -> IqResult<Vec<(Run, Vec<u8>)>> {
    let runs = plan_fetch(positions, clock.disk());
    runs.into_iter()
        .map(|run| {
            let buf = dev.read_to_vec(clock, run.start, run.len)?;
            Ok((run, buf))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    fn model(t_seek: f64, t_xfer: f64) -> DiskModel {
        DiskModel {
            t_seek,
            t_xfer,
            block_size: 64,
        }
    }

    #[test]
    fn empty_plan() {
        assert!(plan_fetch(&[], &model(0.01, 0.001)).is_empty());
    }

    #[test]
    fn dense_positions_become_one_run() {
        // Gaps of 1-2 blocks, horizon v = 10 → all merged.
        let runs = plan_fetch(&[0, 2, 3, 6], &model(0.01, 0.001));
        assert_eq!(runs, vec![Run { start: 0, len: 7 }]);
    }

    #[test]
    fn huge_gaps_become_random_accesses() {
        let runs = plan_fetch(&[0, 1000, 2000], &model(0.01, 0.001));
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.len == 1));
    }

    #[test]
    fn boundary_gap_exactly_at_horizon_seeks() {
        // v = 10: gap of exactly 10 blocks → 10 * t_xfer == t_seek, i.e. the
        // strict `<` of the paper's rule does NOT over-read.
        let runs = plan_fetch(&[0, 11], &model(0.01, 0.001));
        assert_eq!(runs.len(), 2);
        // Gap of 9 (< horizon) → over-read.
        let runs = plan_fetch(&[0, 10], &model(0.01, 0.001));
        assert_eq!(runs, vec![Run { start: 0, len: 11 }]);
    }

    #[test]
    fn duplicates_are_tolerated() {
        let runs = plan_fetch(&[5, 5, 5], &model(0.01, 0.001));
        assert_eq!(runs, vec![Run { start: 5, len: 1 }]);
    }

    #[test]
    fn plan_cost_between_scan_and_random() {
        let m = model(0.01, 0.001);
        // 50 selected blocks evenly spread over 500.
        let positions: Vec<u64> = (0..50).map(|i| i * 10).collect();
        let runs = plan_fetch(&positions, &m);
        let cost = plan_fetch_cost(&runs, &m);
        assert!(cost <= m.random_cost(50) + 1e-12, "never worse than random");
        // Dense case: must be close to a scan of the touched range.
        assert!(cost <= m.scan_cost(500) + m.t_seek);
    }

    #[test]
    fn greedy_is_optimal_vs_bruteforce() {
        // Exhaustively check small instances: every subset of gap decisions.
        let m = model(0.004, 0.001); // horizon v = 4
        let cases: Vec<Vec<u64>> = vec![
            vec![0, 3, 4, 9, 20],
            vec![0, 5, 6, 7, 30, 31],
            vec![2, 4, 8, 16, 32],
            vec![0, 1, 2, 3],
        ];
        for positions in cases {
            let greedy = plan_fetch_cost(&plan_fetch(&positions, &m), &m);
            // Brute force: each of the n-1 gaps is independently "seek" or
            // "over-read"; cost decomposes per gap, plus one seek + one xfer
            // per selected block.
            let mut best = f64::INFINITY;
            let gaps: Vec<u64> = positions.windows(2).map(|w| w[1] - w[0] - 1).collect();
            for mask in 0..(1u32 << gaps.len()) {
                let mut cost = m.t_seek + positions.len() as f64 * m.t_xfer;
                for (i, &g) in gaps.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        cost += g as f64 * m.t_xfer; // over-read
                    } else {
                        cost += m.t_seek; // seek
                    }
                }
                best = best.min(cost);
            }
            assert!(
                (greedy - best).abs() < 1e-12,
                "greedy {greedy} vs optimal {best} for {positions:?}"
            );
        }
    }

    #[test]
    fn greedy_is_optimal_randomized() {
        // Randomized extension of the exhaustive check: up to 14 gaps,
        // random horizons.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let v = rng.gen_range(1..=12) as f64;
            let m = model(0.001 * v, 0.001);
            let n = rng.gen_range(2..=14);
            let mut positions: Vec<u64> = (0..n).map(|_| rng.gen_range(0..200)).collect();
            positions.sort_unstable();
            positions.dedup();
            if positions.len() < 2 {
                continue;
            }
            let greedy = plan_fetch_cost(&plan_fetch(&positions, &m), &m);
            let gaps: Vec<u64> = positions.windows(2).map(|w| w[1] - w[0] - 1).collect();
            let mut best = f64::INFINITY;
            for mask in 0..(1u32 << gaps.len()) {
                let mut cost = m.t_seek + positions.len() as f64 * m.t_xfer;
                for (i, &g) in gaps.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        cost += g as f64 * m.t_xfer;
                    } else {
                        cost += m.t_seek;
                    }
                }
                best = best.min(cost);
            }
            assert!(
                (greedy - best).abs() < 1e-12,
                "v={v} positions={positions:?}: greedy {greedy} vs {best}"
            );
        }
    }

    #[test]
    fn bounded_plan_respects_buffer_and_covers_everything() {
        let m = model(0.01, 0.001);
        let positions: Vec<u64> = (0..40).map(|i| i * 2).collect(); // one big run
        let unbounded = plan_fetch(&positions, &m);
        assert_eq!(unbounded.len(), 1);
        let bounded = plan_fetch_bounded(&positions, &m, 16);
        assert!(bounded.iter().all(|r| r.len <= 16));
        // Coverage identical.
        for &p in &positions {
            assert!(bounded.iter().any(|r| r.contains(p)), "block {p}");
        }
        // Cost: more seeks, same transfers.
        let c_unb = plan_fetch_cost(&unbounded, &m);
        let c_b = plan_fetch_cost(&bounded, &m);
        assert!(c_b > c_unb);
        let blocks_unb: u64 = unbounded.iter().map(|r| r.len).sum();
        let blocks_b: u64 = bounded.iter().map(|r| r.len).sum();
        assert_eq!(blocks_unb, blocks_b);
    }

    #[test]
    fn bounded_plan_with_huge_buffer_is_identity() {
        let m = model(0.01, 0.001);
        let positions = [3u64, 4, 5, 100];
        assert_eq!(
            plan_fetch_bounded(&positions, &m, 1_000_000),
            plan_fetch(&positions, &m)
        );
    }

    #[test]
    fn fetch_blocks_reads_correct_data() {
        let m = model(0.01, 0.001);
        let mut dev = MemDevice::new(64);
        let mut clock = SimClock::new(m, crate::CpuModel::free());
        for i in 0..20u8 {
            dev.append(&mut clock, &[i; 64]).unwrap();
        }
        clock.reset();
        let fetched = fetch_blocks(&dev, &mut clock, &[1, 2, 18]).unwrap();
        assert_eq!(fetched.len(), 2);
        assert_eq!(fetched[0].0, Run { start: 1, len: 2 });
        assert_eq!(&fetched[0].1[..64], &vec![1u8; 64][..]);
        assert_eq!(fetched[1].0, Run { start: 18, len: 1 });
        assert_eq!(clock.stats().seeks, 2);
        assert_eq!(clock.stats().blocks_read, 3);
    }
}
