//! Read-only real-file block device backed by `mmap` (with a `pread`
//! fallback).
//!
//! [`FileDevice`](crate::FileDevice) is the read-write backend the engines
//! build through; this device is the *ingestion-side* counterpart: it opens
//! an existing file — an fvecs dump, a device file written by an earlier
//! run — without requiring its length to be a multiple of the block size
//! (the final partial block reads back zero-padded, matching how
//! [`append`](crate::BlockDevice::append) pads). It slots into the
//! [`DeviceStack`](crate::DeviceStack) like any other base device: faults,
//! checksums, cache and observation layer above it unchanged.
//!
//! Mapping is plain `PROT_READ`/`MAP_PRIVATE` through the libc ABI (`std`
//! already links libc on every Unix target); if `mmap` refuses — empty
//! file, exotic filesystem — the device silently degrades to positioned
//! reads on the kept file handle. Reads take `&self` either way, so any
//! number of query threads can share the device.

use std::fs::File;
use std::io;
use std::path::Path;

use crate::device::fresh_device_id;
use crate::error::{IqError, IqResult};
use crate::model::SimClock;
use crate::BlockDevice;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;
}

/// How the file contents are accessed.
enum Backing {
    /// The whole file is mapped; reads are `memcpy`s from the mapping.
    Mapped { ptr: *const u8, len: usize },
    /// Positioned reads on the file handle (`pread`).
    Positioned,
}

// SAFETY: the mapping is PROT_READ and never mutated through this struct;
// concurrent reads from multiple threads are exactly what a shared
// read-only mapping is for.
unsafe impl Send for Backing {}
unsafe impl Sync for Backing {}

impl Drop for Backing {
    fn drop(&mut self) {
        if let Backing::Mapped { ptr, len } = *self {
            // SAFETY: ptr/len came from a successful mmap of exactly len
            // bytes and the mapping is not referenced after this point.
            unsafe {
                sys::munmap(ptr as *mut _, len);
            }
        }
    }
}

/// A read-only block device over an existing real file.
pub struct MmapFileDevice {
    block_size: usize,
    /// Exact file length in bytes (not rounded to blocks).
    file_len: u64,
    num_blocks: u64,
    file: File,
    backing: Backing,
    id: u64,
}

impl MmapFileDevice {
    /// Opens `path` read-only. Any file length is accepted: the device
    /// exposes `ceil(len / block_size)` blocks and zero-pads the final
    /// partial block on read.
    pub fn open(path: &Path, block_size: usize) -> io::Result<Self> {
        assert!(block_size > 0);
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let backing = Self::try_map(&file, file_len);
        Ok(Self {
            block_size,
            file_len,
            num_blocks: file_len.div_ceil(block_size as u64),
            file,
            backing,
            id: fresh_device_id(),
        })
    }

    /// Attempts to map the whole file; any refusal (zero length, weird
    /// filesystem) degrades to positioned reads.
    #[cfg(unix)]
    fn try_map(file: &File, len: u64) -> Backing {
        use std::os::unix::io::AsRawFd;
        let Ok(len) = usize::try_from(len) else {
            return Backing::Positioned;
        };
        if len == 0 {
            return Backing::Positioned; // mmap(len = 0) is EINVAL
        }
        // SAFETY: fd is open for reading and outlives the mapping (the
        // mapping stays valid even after close; the File is kept anyway).
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            Backing::Positioned
        } else {
            Backing::Mapped {
                ptr: ptr as *const u8,
                len,
            }
        }
    }

    #[cfg(not(unix))]
    fn try_map(_file: &File, _len: u64) -> Backing {
        Backing::Positioned
    }

    /// Whether reads go through a memory mapping (false: `pread`).
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped { .. })
    }

    /// Exact length of the underlying file in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    fn read_only_err(op: &'static str) -> IqError {
        IqError::Io {
            op,
            block: 0,
            transient: false,
            detail: "MmapFileDevice is read-only".into(),
        }
    }
}

impl BlockDevice for MmapFileDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn read_blocks(&self, clock: &mut SimClock, start: u64, buf: &mut [u8]) -> IqResult<()> {
        assert_eq!(buf.len() % self.block_size, 0, "partial-block read");
        let nblocks = (buf.len() / self.block_size) as u64;
        if start + nblocks > self.num_blocks {
            return Err(IqError::OutOfBounds {
                op: "read",
                start,
                nblocks,
                available: self.num_blocks,
            });
        }
        let off = start * self.block_size as u64;
        // Bytes actually present in the file for this range; the rest of
        // the final block is padding.
        let present = (self.file_len - off).min(buf.len() as u64) as usize;
        match &self.backing {
            Backing::Mapped { ptr, .. } => {
                // SAFETY: off + present <= file_len = mapping length, and
                // the mapping lives as long as self.
                unsafe {
                    std::ptr::copy_nonoverlapping(ptr.add(off as usize), buf.as_mut_ptr(), present);
                }
            }
            Backing::Positioned => {
                use std::os::unix::fs::FileExt;
                self.file
                    .read_exact_at(&mut buf[..present], off)
                    .map_err(|e| IqError::Io {
                        op: "read",
                        block: start,
                        transient: e.kind() == io::ErrorKind::Interrupted,
                        detail: e.to_string(),
                    })?;
            }
        }
        buf[present..].fill(0);
        clock.charge_read(self.id, start, nblocks);
        Ok(())
    }

    fn append(&mut self, _clock: &mut SimClock, _data: &[u8]) -> IqResult<u64> {
        Err(Self::read_only_err("append"))
    }

    fn write_blocks(&mut self, _clock: &mut SimClock, _start: u64, _data: &[u8]) -> IqResult<()> {
        Err(Self::read_only_err("write"))
    }

    fn device_id(&self) -> u64 {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("iq-storage-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(name)
    }

    #[test]
    fn reads_match_file_contents() {
        let path = temp_path("whole.bin");
        let data: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &data).unwrap();
        let dev = MmapFileDevice::open(&path, 256).unwrap();
        assert_eq!(dev.num_blocks(), 4);
        assert!(dev.is_mapped(), "a regular non-empty file maps");
        let mut clock = SimClock::default();
        let got = dev.read_to_vec(&mut clock, 0, 4).unwrap();
        assert_eq!(got, data);
        let got = dev.read_to_vec(&mut clock, 2, 1).unwrap();
        assert_eq!(got, data[512..768]);
    }

    #[test]
    fn partial_final_block_is_zero_padded() {
        let path = temp_path("partial.bin");
        std::fs::write(&path, vec![0xABu8; 300]).unwrap();
        let dev = MmapFileDevice::open(&path, 256).unwrap();
        assert_eq!(dev.num_blocks(), 2, "300 bytes -> 2 blocks of 256");
        assert_eq!(dev.file_len(), 300);
        let mut clock = SimClock::default();
        let got = dev.read_to_vec(&mut clock, 1, 1).unwrap();
        assert_eq!(&got[..44], &[0xABu8; 44][..]);
        assert_eq!(&got[44..], &[0u8; 212][..], "padding is zeros");
        // Reading both blocks at once sees the same padding.
        let got = dev.read_to_vec(&mut clock, 0, 2).unwrap();
        assert_eq!(&got[300..], &[0u8; 212][..]);
    }

    #[test]
    fn empty_file_opens_with_zero_blocks() {
        let path = temp_path("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let dev = MmapFileDevice::open(&path, 128).unwrap();
        assert_eq!(dev.num_blocks(), 0);
        assert!(!dev.is_mapped(), "mmap of an empty file degrades to pread");
        let mut clock = SimClock::default();
        assert!(matches!(
            dev.read_to_vec(&mut clock, 0, 1),
            Err(IqError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn out_of_bounds_and_write_errors() {
        let path = temp_path("ro.bin");
        std::fs::write(&path, vec![1u8; 128]).unwrap();
        let mut dev = MmapFileDevice::open(&path, 64).unwrap();
        let mut clock = SimClock::default();
        assert!(matches!(
            dev.read_to_vec(&mut clock, 1, 2),
            Err(IqError::OutOfBounds { .. })
        ));
        assert!(matches!(
            dev.append(&mut clock, &[0u8; 64]),
            Err(IqError::Io { op: "append", .. })
        ));
        assert!(matches!(
            dev.write_blocks(&mut clock, 0, &[0u8; 64]),
            Err(IqError::Io { op: "write", .. })
        ));
    }

    #[test]
    fn costs_match_mem_device() {
        let path = temp_path("cost.bin");
        let data = vec![9u8; 64 * 6];
        std::fs::write(&path, &data).unwrap();
        let dev = MmapFileDevice::open(&path, 64).unwrap();
        let mut mem = MemDevice::new(64);
        let mut c0 = SimClock::default();
        mem.append(&mut c0, &data).unwrap();
        let mut c1 = SimClock::default();
        let mut c2 = SimClock::default();
        for (start, n) in [(0u64, 2u64), (4, 2), (1, 1)] {
            assert_eq!(
                dev.read_to_vec(&mut c1, start, n).unwrap(),
                mem.read_to_vec(&mut c2, start, n).unwrap()
            );
        }
        assert_eq!(c1.io_time(), c2.io_time());
        assert_eq!(c1.stats(), c2.stats());
    }
}
