//! Append-only byte logs: the storage substrate of the write-ahead log.
//!
//! A WAL is not a block device: frames are variable-length, the only
//! mutations are *append*, *sync* and *truncate*, and durability is
//! defined by the sync barrier — bytes appended but not yet synced may
//! vanish in a crash. [`WalStore`] captures exactly that contract;
//! [`MemWal`] (deterministic experiments, crash simulation via
//! [`MemWal::kill_at`]) and [`FileWal`] (a real file, `fdatasync` on
//! [`WalStore::sync`]) implement it.
//!
//! Simulated costs are charged against a nominal 4 KiB unit
//! ([`WAL_CHARGE_BLOCK`]) so sequential appends price like the sequential
//! block writes they are, and a sync charges one extra unit (the barrier).

use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

use crate::device::fresh_device_id;
use crate::error::{IqError, IqResult};
use crate::model::SimClock;

/// Nominal unit for charging WAL traffic to the [`SimClock`].
pub const WAL_CHARGE_BLOCK: usize = 4096;

/// An append-only byte log with an explicit durability barrier.
///
/// Reads take `&self` (post-mortem scans share the store); mutations take
/// `&mut self`. Offsets and lengths are bytes, not blocks.
pub trait WalStore: Send + Sync {
    /// Current length of the log in bytes.
    fn len(&self) -> u64;

    /// Whether the log is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `bytes` at the end of the log.
    fn append(&mut self, clock: &mut SimClock, bytes: &[u8]) -> IqResult<()>;

    /// Reads `buf.len()` bytes starting at byte offset `off`.
    fn read_at(&self, clock: &mut SimClock, off: u64, buf: &mut [u8]) -> IqResult<()>;

    /// Durability barrier: everything appended so far survives a crash
    /// once this returns.
    fn sync(&mut self, clock: &mut SimClock) -> IqResult<()>;

    /// Shrinks the log to `len` bytes (used to drop a torn tail during
    /// recovery and to fold the log at a checkpoint).
    fn truncate(&mut self, clock: &mut SimClock, len: u64) -> IqResult<()>;

    /// Stable identifier for clock accounting.
    fn device_id(&self) -> u64;

    /// Convenience: the whole log as one buffer.
    fn read_all(&self, clock: &mut SimClock) -> IqResult<Vec<u8>> {
        let mut buf = vec![0u8; usize::try_from(self.len()).expect("log fits in memory")];
        self.read_at(clock, 0, &mut buf)?;
        Ok(buf)
    }
}

fn charge_span(clock: &mut SimClock, id: u64, off: u64, len: usize, write: bool) {
    if len == 0 {
        return;
    }
    let first = off / WAL_CHARGE_BLOCK as u64;
    let last = (off + len as u64 - 1) / WAL_CHARGE_BLOCK as u64;
    let n = last - first + 1;
    if write {
        clock.charge_write(id, first, n);
    } else {
        clock.charge_read(id, first, n);
    }
}

/// An in-memory WAL store. Appends are durable immediately (the crash
/// matrix constructs torn tails explicitly; [`MemWal::kill_at`] simulates
/// a live mid-append power loss).
pub struct MemWal {
    data: Vec<u8>,
    /// Total bytes allowed to persist before the store "loses power".
    kill_at: Option<u64>,
    id: u64,
}

impl Default for MemWal {
    fn default() -> Self {
        Self::new()
    }
}

impl MemWal {
    /// Creates an empty in-memory log.
    pub fn new() -> Self {
        Self {
            data: Vec::new(),
            kill_at: None,
            id: fresh_device_id(),
        }
    }

    /// Creates a log pre-loaded with `bytes` (e.g. a recorded prefix that
    /// models the durable state at a crash point).
    pub fn from_contents(bytes: Vec<u8>) -> Self {
        Self {
            data: bytes,
            kill_at: None,
            id: fresh_device_id(),
        }
    }

    /// The raw log bytes.
    pub fn contents(&self) -> &[u8] {
        &self.data
    }

    /// Arms a power loss at absolute byte offset `offset`: the append that
    /// crosses it persists only the bytes below the offset and fails with
    /// a non-transient `"simulated crash"` error; every later append fails
    /// outright.
    pub fn kill_at(&mut self, offset: u64) {
        self.kill_at = Some(offset);
    }
}

fn wal_crash_error() -> IqError {
    IqError::Io {
        op: "wal-append",
        block: 0,
        transient: false,
        detail: "simulated crash (power loss)".into(),
    }
}

impl WalStore for MemWal {
    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn append(&mut self, clock: &mut SimClock, bytes: &[u8]) -> IqResult<()> {
        let off = self.data.len() as u64;
        if let Some(limit) = self.kill_at {
            if off + bytes.len() as u64 > limit {
                let keep = limit.saturating_sub(off) as usize;
                self.data.extend_from_slice(&bytes[..keep]);
                charge_span(clock, self.id, off, keep, true);
                clock.note_fault();
                return Err(wal_crash_error());
            }
        }
        self.data.extend_from_slice(bytes);
        charge_span(clock, self.id, off, bytes.len(), true);
        Ok(())
    }

    fn read_at(&self, clock: &mut SimClock, off: u64, buf: &mut [u8]) -> IqResult<()> {
        let end = off + buf.len() as u64;
        if end > self.len() {
            return Err(IqError::OutOfBounds {
                op: "wal-read",
                start: off,
                nblocks: buf.len() as u64,
                available: self.len(),
            });
        }
        buf.copy_from_slice(&self.data[off as usize..end as usize]);
        charge_span(clock, self.id, off, buf.len(), false);
        Ok(())
    }

    fn sync(&mut self, clock: &mut SimClock) -> IqResult<()> {
        if self.kill_at.is_some_and(|limit| self.len() >= limit) {
            clock.note_fault();
            return Err(wal_crash_error());
        }
        clock.charge_write(self.id, self.len() / WAL_CHARGE_BLOCK as u64, 1);
        Ok(())
    }

    fn truncate(&mut self, clock: &mut SimClock, len: u64) -> IqResult<()> {
        if len > self.len() {
            return Err(IqError::OutOfBounds {
                op: "wal-truncate",
                start: len,
                nblocks: 0,
                available: self.len(),
            });
        }
        self.data.truncate(len as usize);
        clock.charge_write(self.id, len / WAL_CHARGE_BLOCK as u64, 1);
        Ok(())
    }

    fn device_id(&self) -> u64 {
        self.id
    }
}

/// A file-backed WAL store. [`WalStore::sync`] issues `fdatasync`, making
/// the commit protocol's barrier real on a real disk.
pub struct FileWal {
    file: File,
    len: u64,
    id: u64,
}

impl FileWal {
    /// Opens (creating if missing) the log at `path`, keeping existing
    /// contents — recovery needs the surviving frames.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            file,
            len,
            id: fresh_device_id(),
        })
    }
}

fn wal_io_error(op: &'static str, e: &io::Error) -> IqError {
    IqError::Io {
        op,
        block: 0,
        transient: e.kind() == io::ErrorKind::Interrupted,
        detail: e.to_string(),
    }
}

impl WalStore for FileWal {
    fn len(&self) -> u64 {
        self.len
    }

    fn append(&mut self, clock: &mut SimClock, bytes: &[u8]) -> IqResult<()> {
        use std::os::unix::fs::FileExt;
        self.file
            .write_all_at(bytes, self.len)
            .map_err(|e| wal_io_error("wal-append", &e))?;
        charge_span(clock, self.id, self.len, bytes.len(), true);
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn read_at(&self, clock: &mut SimClock, off: u64, buf: &mut [u8]) -> IqResult<()> {
        use std::os::unix::fs::FileExt;
        if off + buf.len() as u64 > self.len {
            return Err(IqError::OutOfBounds {
                op: "wal-read",
                start: off,
                nblocks: buf.len() as u64,
                available: self.len,
            });
        }
        self.file
            .read_exact_at(buf, off)
            .map_err(|e| wal_io_error("wal-read", &e))?;
        charge_span(clock, self.id, off, buf.len(), false);
        Ok(())
    }

    fn sync(&mut self, clock: &mut SimClock) -> IqResult<()> {
        self.file
            .sync_data()
            .map_err(|e| wal_io_error("wal-sync", &e))?;
        clock.charge_write(self.id, self.len / WAL_CHARGE_BLOCK as u64, 1);
        Ok(())
    }

    fn truncate(&mut self, clock: &mut SimClock, len: u64) -> IqResult<()> {
        if len > self.len {
            return Err(IqError::OutOfBounds {
                op: "wal-truncate",
                start: len,
                nblocks: 0,
                available: self.len,
            });
        }
        self.file
            .set_len(len)
            .map_err(|e| wal_io_error("wal-truncate", &e))?;
        self.len = len;
        clock.charge_write(self.id, len / WAL_CHARGE_BLOCK as u64, 1);
        Ok(())
    }

    fn device_id(&self) -> u64 {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn WalStore) {
        let mut clock = SimClock::default();
        assert!(store.is_empty());
        store.append(&mut clock, b"hello ").unwrap();
        store.append(&mut clock, b"wal").unwrap();
        store.sync(&mut clock).unwrap();
        assert_eq!(store.len(), 9);
        assert_eq!(store.read_all(&mut clock).unwrap(), b"hello wal");
        let mut buf = [0u8; 3];
        store.read_at(&mut clock, 6, &mut buf).unwrap();
        assert_eq!(&buf, b"wal");
        store.truncate(&mut clock, 5).unwrap();
        assert_eq!(store.read_all(&mut clock).unwrap(), b"hello");
        assert!(store.read_at(&mut clock, 4, &mut buf).is_err());
    }

    #[test]
    fn mem_wal_roundtrip() {
        exercise(&mut MemWal::new());
    }

    #[test]
    fn file_wal_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("iq-walstore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.bin");
        {
            let mut store = FileWal::open(&path).unwrap();
            exercise(&mut store);
        }
        // Reopen keeps the surviving bytes.
        let store = FileWal::open(&path).unwrap();
        let mut clock = SimClock::default();
        assert_eq!(store.read_all(&mut clock).unwrap(), b"hello");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_wal_kill_at_tears_the_crossing_append() {
        let mut store = MemWal::new();
        let mut clock = SimClock::default();
        store.append(&mut clock, &[1u8; 10]).unwrap();
        store.kill_at(14);
        let err = store.append(&mut clock, &[2u8; 10]).unwrap_err();
        assert!(!err.is_transient());
        assert_eq!(store.len(), 14, "prefix up to the kill offset persisted");
        // The barrier reports the loss too.
        assert!(store.sync(&mut clock).is_err());
    }

    #[test]
    fn costs_match_mem_vs_file() {
        let dir = std::env::temp_dir().join(format!("iq-walstore-cost-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut mem = MemWal::new();
        let mut file = FileWal::open(&dir.join("w.bin")).unwrap();
        let mut c1 = SimClock::default();
        let mut c2 = SimClock::default();
        let payload = vec![9u8; 10_000];
        mem.append(&mut c1, &payload).unwrap();
        file.append(&mut c2, &payload).unwrap();
        mem.sync(&mut c1).unwrap();
        file.sync(&mut c2).unwrap();
        assert_eq!(c1.io_time(), c2.io_time());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
