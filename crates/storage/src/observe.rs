//! Metrics-emitting device layer.
//!
//! [`ObservedDevice`] wraps any [`BlockDevice`] and mirrors its traffic
//! into a metrics [`Registry`]: per-stage read/write
//! operation counts, block counts, error counts and wall-clock latency
//! histograms. Handles are resolved once at construction, so the record
//! path never touches the registry's name maps; with a disabled registry
//! every update is a single relaxed atomic load.
//!
//! Insert one per stack stage you want visibility into, e.g.
//! `DeviceStack::new(base).checksum().observe("checksum")` — metric names
//! come out as `dev_checksum_read_seconds`, `dev_checksum_reads_total`, …

use crate::device::BlockDevice;
use crate::error::IqResult;
use crate::model::SimClock;
use iq_obs::{Counter, Histogram, Registry};
use std::time::Instant;

/// A [`BlockDevice`] wrapper that counts and times every operation under
/// a stage label.
pub struct ObservedDevice {
    inner: Box<dyn BlockDevice>,
    reads: Counter,
    writes: Counter,
    read_errors: Counter,
    write_errors: Counter,
    blocks_read: Counter,
    blocks_written: Counter,
    read_seconds: Histogram,
    write_seconds: Histogram,
}

impl ObservedDevice {
    /// Wraps `inner`, registering this stage's metrics on `registry` as
    /// `dev_<stage>_*`.
    pub fn new(inner: Box<dyn BlockDevice>, registry: &Registry, stage: &str) -> Self {
        let name = |suffix: &str| format!("dev_{stage}_{suffix}");
        ObservedDevice {
            inner,
            reads: registry.counter(&name("reads_total")),
            writes: registry.counter(&name("writes_total")),
            read_errors: registry.counter(&name("read_errors_total")),
            write_errors: registry.counter(&name("write_errors_total")),
            blocks_read: registry.counter(&name("blocks_read_total")),
            blocks_written: registry.counter(&name("blocks_written_total")),
            read_seconds: registry.histogram(&name("read_seconds")),
            write_seconds: registry.histogram(&name("write_seconds")),
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &dyn BlockDevice {
        self.inner.as_ref()
    }
}

impl BlockDevice for ObservedDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_blocks(&self, clock: &mut SimClock, start: u64, buf: &mut [u8]) -> IqResult<()> {
        let timed = self.read_seconds.enabled().then(Instant::now);
        let res = self.inner.read_blocks(clock, start, buf);
        if let Some(t0) = timed {
            self.read_seconds.observe(t0.elapsed().as_secs_f64());
            self.reads.inc();
            self.blocks_read
                .add((buf.len() / self.inner.block_size().max(1)) as u64);
            if res.is_err() {
                self.read_errors.inc();
            }
        }
        res
    }

    fn append(&mut self, clock: &mut SimClock, data: &[u8]) -> IqResult<u64> {
        let timed = self.write_seconds.enabled().then(Instant::now);
        let res = self.inner.append(clock, data);
        if let Some(t0) = timed {
            self.write_seconds.observe(t0.elapsed().as_secs_f64());
            self.writes.inc();
            self.blocks_written
                .add((data.len() / self.inner.block_size().max(1)) as u64);
            if res.is_err() {
                self.write_errors.inc();
            }
        }
        res
    }

    fn write_blocks(&mut self, clock: &mut SimClock, start: u64, data: &[u8]) -> IqResult<()> {
        let timed = self.write_seconds.enabled().then(Instant::now);
        let res = self.inner.write_blocks(clock, start, data);
        if let Some(t0) = timed {
            self.write_seconds.observe(t0.elapsed().as_secs_f64());
            self.writes.inc();
            self.blocks_written
                .add((data.len() / self.inner.block_size().max(1)) as u64);
            if res.is_err() {
                self.write_errors.inc();
            }
        }
        res
    }

    fn truncate_blocks(&mut self, clock: &mut SimClock, nblocks: u64) -> IqResult<()> {
        let timed = self.write_seconds.enabled().then(Instant::now);
        let res = self.inner.truncate_blocks(clock, nblocks);
        if let Some(t0) = timed {
            self.write_seconds.observe(t0.elapsed().as_secs_f64());
            self.writes.inc();
            if res.is_err() {
                self.write_errors.inc();
            }
        }
        res
    }

    fn device_id(&self) -> u64 {
        self.inner.device_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn observed_device_is_transparent_and_counts() {
        let reg = Registry::new();
        let mut dev = ObservedDevice::new(Box::new(MemDevice::new(64)), &reg, "base");
        let mut clock = SimClock::default();
        dev.append(&mut clock, &[3u8; 64 * 2]).unwrap();
        let got = dev.read_to_vec(&mut clock, 0, 2).unwrap();
        assert_eq!(got, vec![3u8; 128]);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["dev_base_writes_total"], 1);
        assert_eq!(snap.counters["dev_base_blocks_written_total"], 2);
        assert_eq!(snap.counters["dev_base_reads_total"], 1);
        assert_eq!(snap.counters["dev_base_blocks_read_total"], 2);
        assert_eq!(snap.counters["dev_base_read_errors_total"], 0);
        assert_eq!(snap.histograms["dev_base_read_seconds"].count, 1);
    }

    #[test]
    fn disabled_registry_records_nothing_but_io_still_works() {
        let reg = Registry::disabled();
        let mut dev = ObservedDevice::new(Box::new(MemDevice::new(64)), &reg, "q");
        let mut clock = SimClock::default();
        dev.append(&mut clock, &[9u8; 64]).unwrap();
        assert_eq!(dev.read_to_vec(&mut clock, 0, 1).unwrap(), vec![9u8; 64]);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["dev_q_reads_total"], 0);
        assert_eq!(snap.histograms["dev_q_read_seconds"].count, 0);
    }

    #[test]
    fn read_errors_are_counted() {
        let reg = Registry::new();
        let dev = ObservedDevice::new(Box::new(MemDevice::new(64)), &reg, "e");
        let mut clock = SimClock::default();
        let mut buf = [0u8; 64];
        assert!(dev.read_blocks(&mut clock, 99, &mut buf).is_err());
        assert_eq!(reg.snapshot().counters["dev_e_read_errors_total"], 1);
    }
}
