//! The disabled tracing path is allocation-free: a clock that never
//! called `enable_tracing` pays one branch per span call and **zero**
//! heap allocations — span names are never copied, attrs are never
//! formatted, counters are never boxed. Phase accounting stays
//! alloc-free too (it was before tracing existed; the tracer hook must
//! not change that). Enforced with a counting global allocator; the
//! counter is thread-local so the harness thread cannot pollute the
//! measurement.
//!
//! Single-test file on purpose: one process, one test thread.

use iq_obs::Phase;
use iq_storage::SimClock;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

std::thread_local! {
    static LOCAL_ALLOCS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates to `System` verbatim; the counter bump has no effect
// on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    LOCAL_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

/// The full per-query instrumentation sequence an engine emits — span
/// open with attrs, phase work with I/O, result counters, span close —
/// exactly as `knn_traced_impl` does it, on an untraced clock.
fn instrumented_query(clock: &mut SimClock, k: u32) -> f64 {
    clock.span_begin("iqtree");
    clock.span_attr("k", &k);
    clock.phase_begin(Phase::Directory);
    clock.charge_read(0, 0, 2);
    clock.phase_end();
    clock.phase_begin(Phase::Filter);
    clock.charge_read(0, 8, 3);
    clock.charge_cpu_seconds(64.0e-9);
    clock.phase_end();
    clock.phase_begin(Phase::TopK);
    clock.phase_end();
    clock.span_count("pages_processed", u64::from(k));
    clock.span_count("pages_skipped", 0); // zero: the skip-fast path
    clock.span_end();
    clock.total_time()
}

#[test]
fn untraced_span_and_phase_path_is_allocation_free() {
    let mut clock = SimClock::default();
    assert!(!clock.tracing());
    // Warm-up: lets any lazy one-time setup (thread-locals, phase table)
    // happen outside the measured window.
    let warm = instrumented_query(&mut clock, 7);
    assert!(warm > 0.0);
    clock.reset();

    let before = allocations();
    let mut total = 0.0;
    for _ in 0..100 {
        clock.reset();
        total += instrumented_query(&mut clock, 7);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "the untraced span/phase path must not touch the allocator"
    );
    assert!((total - 100.0 * warm).abs() < 1e-9, "same work, same time");
    assert!(clock.take_trace().is_none(), "nothing was recorded");
}
