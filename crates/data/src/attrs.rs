//! Per-point attribute columns and the predicates that filter on them.
//!
//! Real vector workloads rarely query the whole collection: rows carry
//! scalar attributes (a label, a timestamp bucket, a shard id) and queries
//! ask for the nearest neighbors *among rows matching a predicate* (cf.
//! the lantern SQL fixtures and the Lance filtered-query pipeline). This
//! module stores the attributes column-wise and compiles a [`Predicate`]
//! into the engine layer's [`Filter`] bitset once, before the search runs.

use iq_engine::Filter;

/// Named integer attribute columns, one row per indexed point (row `i`
/// belongs to point id `i`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AttrTable {
    names: Vec<String>,
    cols: Vec<Vec<i64>>,
}

impl AttrTable {
    /// An empty table with no columns (every predicate fails to compile).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table with the given column names.
    ///
    /// # Panics
    /// Panics if a name repeats.
    pub fn with_columns(names: Vec<String>) -> Self {
        for (i, n) in names.iter().enumerate() {
            assert!(!names[..i].contains(n), "duplicate attribute column `{n}`");
        }
        let cols = names.iter().map(|_| Vec::new()).collect();
        Self { names, cols }
    }

    /// Appends one row (one value per column, in declaration order).
    ///
    /// # Panics
    /// Panics if `row.len()` mismatches the column count.
    pub fn push_row(&mut self, row: &[i64]) {
        assert_eq!(row.len(), self.names.len(), "attribute row arity mismatch");
        for (col, &v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.cols.first().map_or(0, Vec::len)
    }

    /// Whether the table has no rows (a table with no columns is empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Declared column names, in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The values of column `name`, if it exists.
    pub fn column(&self, name: &str) -> Option<&[i64]> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.cols[i].as_slice())
    }

    /// One row's values, in column order.
    pub fn row(&self, i: usize) -> Vec<i64> {
        self.cols.iter().map(|c| c[i]).collect()
    }
}

/// A filter predicate over one attribute column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Predicate {
    /// `column` ∈ `values`.
    In { column: String, values: Vec<i64> },
    /// `lo <= column <= hi` (inclusive on both ends).
    Range { column: String, lo: i64, hi: i64 },
}

impl Predicate {
    /// Parses the CLI surface syntax:
    ///
    /// * `col in v1,v2,...` — membership,
    /// * `col range lo..hi` — inclusive range,
    /// * `col = v` — shorthand for a one-element `in`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if let Some((col, rest)) = s.split_once(" in ") {
            let values = rest
                .split(',')
                .map(|v| {
                    v.trim()
                        .parse::<i64>()
                        .map_err(|_| format!("bad integer `{}` in filter", v.trim()))
                })
                .collect::<Result<Vec<i64>, String>>()?;
            if values.is_empty() {
                return Err("empty `in` list".into());
            }
            return Ok(Predicate::In {
                column: col.trim().to_string(),
                values,
            });
        }
        if let Some((col, rest)) = s.split_once(" range ") {
            let (lo, hi) = rest
                .split_once("..")
                .ok_or_else(|| format!("expected `lo..hi` after `range`, got `{rest}`"))?;
            let lo = lo
                .trim()
                .parse::<i64>()
                .map_err(|_| format!("bad integer `{}` in filter", lo.trim()))?;
            let hi = hi
                .trim()
                .parse::<i64>()
                .map_err(|_| format!("bad integer `{}` in filter", hi.trim()))?;
            if lo > hi {
                return Err(format!("empty range {lo}..{hi}"));
            }
            return Ok(Predicate::Range {
                column: col.trim().to_string(),
                lo,
                hi,
            });
        }
        if let Some((col, v)) = s.split_once('=') {
            let v = v
                .trim()
                .parse::<i64>()
                .map_err(|_| format!("bad integer `{}` in filter", v.trim()))?;
            return Ok(Predicate::In {
                column: col.trim().to_string(),
                values: vec![v],
            });
        }
        Err(format!(
            "unparseable filter `{s}` (use `col in v1,v2`, `col range lo..hi` or `col = v`)"
        ))
    }

    /// The column the predicate filters on.
    pub fn column(&self) -> &str {
        match self {
            Predicate::In { column, .. } | Predicate::Range { column, .. } => column,
        }
    }

    /// Compiles the predicate against `attrs` into an id-bitset [`Filter`]
    /// over the domain `0..attrs.len()`.
    pub fn compile(&self, attrs: &AttrTable) -> Result<Filter, String> {
        let col = attrs.column(self.column()).ok_or_else(|| {
            format!(
                "unknown attribute column `{}` (have: {})",
                self.column(),
                attrs.names().join(", ")
            )
        })?;
        Ok(match self {
            Predicate::In { values, .. } => {
                Filter::from_fn(col.len(), |id| values.contains(&col[id as usize]))
            }
            Predicate::Range { lo, hi, .. } => {
                Filter::from_fn(col.len(), |id| (*lo..=*hi).contains(&col[id as usize]))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> AttrTable {
        let mut t = AttrTable::with_columns(vec!["label".into(), "weight".into()]);
        for i in 0..100i64 {
            t.push_row(&[i % 10, i]);
        }
        t
    }

    #[test]
    fn push_and_read_back() {
        let t = table();
        assert_eq!(t.len(), 100);
        assert_eq!(t.names(), &["label".to_string(), "weight".to_string()]);
        assert_eq!(t.column("label").unwrap()[13], 3);
        assert_eq!(t.row(13), vec![3, 13]);
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn parse_forms() {
        assert_eq!(
            Predicate::parse("label in 1,2,3").unwrap(),
            Predicate::In {
                column: "label".into(),
                values: vec![1, 2, 3]
            }
        );
        assert_eq!(
            Predicate::parse("weight range 10..20").unwrap(),
            Predicate::Range {
                column: "weight".into(),
                lo: 10,
                hi: 20
            }
        );
        assert_eq!(
            Predicate::parse("label = 7").unwrap(),
            Predicate::In {
                column: "label".into(),
                values: vec![7]
            }
        );
        assert!(Predicate::parse("label").is_err());
        assert!(Predicate::parse("label in ").is_err());
        assert!(Predicate::parse("w range 9..2").is_err());
    }

    #[test]
    fn compile_in_and_range() {
        let t = table();
        let f = Predicate::parse("label in 0,5")
            .unwrap()
            .compile(&t)
            .unwrap();
        assert_eq!(f.matching(), 20);
        assert!(f.matches(0));
        assert!(f.matches(5));
        assert!(!f.matches(1));
        let f = Predicate::parse("weight range 90..99")
            .unwrap()
            .compile(&t)
            .unwrap();
        assert_eq!(f.matching(), 10);
        assert!(f.matches(99));
        assert!(!f.matches(89));
    }

    #[test]
    fn compile_unknown_column_fails() {
        let t = table();
        let err = Predicate::parse("shard = 1")
            .unwrap()
            .compile(&t)
            .unwrap_err();
        assert!(err.contains("unknown attribute column"), "{err}");
    }
}
