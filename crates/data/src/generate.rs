//! Synthetic data-set generators.
//!
//! All generators emit points in the unit cube `[0,1]^d` and are fully
//! deterministic given a seed. The three "real-world analogues" reproduce
//! the properties the paper states for its proprietary sets:
//!
//! * [`cad_like`] — *moderately clustered*, energy concentrated in leading
//!   dimensions (Fourier coefficients of object curvature),
//! * [`color_like`] — *only very slightly clustered* (color histograms on a
//!   simplex),
//! * [`weather_like`] — *highly clustered with low fractal dimension*
//!   (station observations driven by a few latent variables).

use iq_geometry::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

fn clamp01(x: f64) -> f32 {
    x.clamp(0.0, 1.0) as f32
}

/// `n` points uniformly distributed in `[0,1]^dim` — the paper's UNIFORM
/// data set.
pub fn uniform(dim: usize, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(dim, n);
    let mut row = vec![0.0f32; dim];
    for _ in 0..n {
        for x in &mut row {
            *x = rng.gen::<f32>();
        }
        ds.push(&row);
    }
    ds
}

/// `n` points in `k` isotropic Gaussian clusters with standard deviation
/// `sigma`, clamped to the unit cube.
pub fn clusters(dim: usize, n: usize, k: usize, sigma: f64, seed: u64) -> Dataset {
    assert!(k > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.1..0.9)).collect())
        .collect();
    let normal = Normal::new(0.0, sigma).expect("sigma is finite");
    let mut ds = Dataset::with_capacity(dim, n);
    let mut row = vec![0.0f32; dim];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..k)];
        for (x, &mu) in row.iter_mut().zip(c) {
            *x = clamp01(mu + normal.sample(&mut rng));
        }
        ds.push(&row);
    }
    ds
}

/// CAD analogue: `dim` Fourier coefficients of the curvature of synthetic
/// object outlines.
///
/// A small library of object classes each fixes a spectral signature with a
/// decaying envelope (`1/(1+j)`); objects add per-instance jitter. The
/// result is moderately clustered with variance concentrated in the leading
/// dimensions — the regime in which the paper reports the X-tree staying
/// competitive.
pub fn cad_like(dim: usize, n: usize, seed: u64) -> Dataset {
    const CLASSES: usize = 10;
    let mut rng = StdRng::seed_from_u64(seed);
    let envelope: Vec<f64> = (0..dim).map(|j| 1.0 / (1.0 + j as f64)).collect();
    let class_means: Vec<Vec<f64>> = (0..CLASSES)
        .map(|_| {
            envelope
                .iter()
                .map(|&e| Normal::new(0.0, e).expect("finite std").sample(&mut rng))
                .collect()
        })
        .collect();
    let mut ds = Dataset::with_capacity(dim, n);
    let mut row = vec![0.0f32; dim];
    for _ in 0..n {
        let class = &class_means[rng.gen_range(0..CLASSES)];
        for ((x, &mu), &e) in row.iter_mut().zip(class).zip(&envelope) {
            let jitter = Normal::new(0.0, 0.25 * e)
                .expect("finite std")
                .sample(&mut rng);
            // Map coefficient from roughly [-2, 2] into [0, 1].
            *x = clamp01(0.5 + 0.25 * (mu + jitter));
        }
        ds.push(&row);
    }
    ds
}

/// COLOR analogue: `dim`-bin color histograms.
///
/// Each histogram mixes one of a handful of palette profiles (weight 0.3)
/// with strong, *sparse* per-image noise (Dirichlet with concentration
/// below 1 — real histograms put most mass in few bins), then clamps to
/// the unit cube. The result lives near a simplex and is only very
/// slightly clustered, matching the paper's description of COLOR, while
/// the sparsity keeps hierarchical indexes viable (the paper's Figure 11
/// has the X-tree still beating the sequential scan on COLOR).
pub fn color_like(dim: usize, n: usize, seed: u64) -> Dataset {
    const PALETTES: usize = 8;
    const PALETTE_WEIGHT: f64 = 0.3;
    // Real color histograms are sparse: most images concentrate their mass
    // in a few bins. Dirichlet concentration < 1 produces exactly that.
    const NOISE_ALPHA: f64 = 0.25;
    let mut rng = StdRng::seed_from_u64(seed);
    let sample_dirichlet = |rng: &mut StdRng, alpha: f64, dim: usize| -> Vec<f64> {
        // Dirichlet via normalized Gamma(alpha, 1) draws. For alpha = 1,
        // Gamma(1) = Exp(1) exactly. For alpha < 1, the boosting identity
        // Gamma(alpha) =d= Gamma(alpha + 1) · U^{1/alpha} is applied with
        // Gamma(alpha + 1) approximated by Exp(1); the approximation skews
        // the shape slightly but preserves the property that matters here —
        // mass concentrating in few bins as alpha shrinks.
        let mut g: Vec<f64> = (0..dim)
            .map(|_| {
                let e = -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln();
                if alpha >= 1.0 {
                    e
                } else {
                    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    e * u.powf(1.0 / alpha)
                }
            })
            .collect();
        let s: f64 = g.iter().sum();
        if s > 0.0 {
            for x in &mut g {
                *x /= s;
            }
        }
        g
    };
    let palettes: Vec<Vec<f64>> = (0..PALETTES)
        .map(|_| sample_dirichlet(&mut rng, 1.0, dim))
        .collect();
    let mut ds = Dataset::with_capacity(dim, n);
    let mut row = vec![0.0f32; dim];
    for _ in 0..n {
        let p = &palettes[rng.gen_range(0..PALETTES)];
        let noise = sample_dirichlet(&mut rng, NOISE_ALPHA, dim);
        for ((x, &pal), &nz) in row.iter_mut().zip(p).zip(&noise) {
            *x = clamp01(PALETTE_WEIGHT * pal + (1.0 - PALETTE_WEIGHT) * nz);
        }
        ds.push(&row);
    }
    ds
}

/// Points on a smooth `intrinsic`-dimensional manifold embedded in
/// `[0,1]^dim`, with additive noise of scale `noise`.
///
/// Each embedding coordinate is a random low-frequency trigonometric
/// polynomial of the latent variables, so the image is curved (not an
/// affine subspace) and its correlation dimension is ≈ `intrinsic` for
/// small noise. The probe workload for the cost model's fractal
/// correction (eqs 13–15).
///
/// # Panics
/// Panics if `intrinsic` is 0 or greater than `dim`.
pub fn manifold(dim: usize, intrinsic: usize, n: usize, noise: f64, seed: u64) -> Dataset {
    assert!(
        intrinsic >= 1 && intrinsic <= dim,
        "intrinsic dimension out of range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Random but fixed embedding: coefficients of sin/cos terms per latent
    // variable plus pairwise interaction terms.
    let lin: Vec<Vec<f64>> = (0..dim)
        .map(|_| (0..intrinsic).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let trig: Vec<Vec<(f64, f64)>> = (0..dim)
        .map(|_| {
            (0..intrinsic)
                .map(|_| (rng.gen_range(-0.5..0.5), rng.gen_range(0.5..2.5)))
                .collect()
        })
        .collect();
    let nrm = Normal::new(0.0, noise.max(0.0)).expect("finite noise");
    let mut ds = Dataset::with_capacity(dim, n);
    let mut latent = vec![0.0f64; intrinsic];
    let mut row = vec![0.0f32; dim];
    for _ in 0..n {
        for t in latent.iter_mut() {
            *t = rng.gen_range(0.0..1.0);
        }
        for (j, x) in row.iter_mut().enumerate() {
            let mut v = 0.0;
            for (t, (&l, &(a, f))) in latent.iter().zip(lin[j].iter().zip(&trig[j])) {
                v += l * (t - 0.5) + a * (std::f64::consts::TAU * f * t).sin();
            }
            // Normalize by sqrt(intrinsic): v is a sum of `intrinsic`
            // independent-ish terms, so this keeps the per-coordinate
            // spread comparable across intrinsic dimensions.
            *x = clamp01(0.5 + 0.35 * v / (intrinsic as f64).sqrt() + nrm.sample(&mut rng));
        }
        ds.push(&row);
    }
    ds
}

/// WEATHER analogue: `dim` (canonically 9) weather attributes of station
/// observations.
///
/// A few hundred stations sit at fixed geographic positions; every
/// observation's attributes are smooth functions of three latent variables
/// (latitude, altitude, season) plus small noise. The embedded manifold has
/// intrinsic dimension ≈ 3, giving the highly clustered, low-fractal-
/// dimension set the paper describes.
pub fn weather_like(dim: usize, n: usize, seed: u64) -> Dataset {
    const STATIONS: usize = 400;
    let mut rng = StdRng::seed_from_u64(seed);
    // Random but fixed mixing of the 3 latent variables into `dim`
    // attributes.
    let mixing: Vec<[f64; 3]> = (0..dim)
        .map(|_| {
            [
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ]
        })
        .collect();
    let stations: Vec<[f64; 2]> = (0..STATIONS)
        .map(|_| [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
        .collect();
    let noise = Normal::new(0.0, 0.01).expect("finite std");
    let mut ds = Dataset::with_capacity(dim, n);
    let mut row = vec![0.0f32; dim];
    for _ in 0..n {
        let st = stations[rng.gen_range(0..STATIONS)];
        let season: f64 = rng.gen_range(0.0..1.0);
        let latent = [st[0], st[1], season];
        for (j, x) in row.iter_mut().enumerate() {
            let m = &mixing[j];
            let v: f64 = 0.5
                + 0.25
                    * (m[0] * (2.0 * latent[0] - 1.0)
                        + m[1] * (2.0 * latent[1] - 1.0)
                        + m[2] * (std::f64::consts::TAU * latent[2]).sin());
            *x = clamp01(v + noise.sample(&mut rng));
        }
        ds.push(&row);
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_geometry::Mbr;

    fn in_unit_cube(ds: &Dataset) -> bool {
        ds.iter()
            .all(|p| p.iter().all(|&x| (0.0..=1.0).contains(&x)))
    }

    #[test]
    fn generators_are_deterministic_and_bounded() {
        for (name, a, b) in [
            ("uniform", uniform(8, 500, 1), uniform(8, 500, 1)),
            (
                "clusters",
                clusters(8, 500, 5, 0.05, 1),
                clusters(8, 500, 5, 0.05, 1),
            ),
            ("cad", cad_like(16, 500, 1), cad_like(16, 500, 1)),
            ("color", color_like(16, 500, 1), color_like(16, 500, 1)),
            ("weather", weather_like(9, 500, 1), weather_like(9, 500, 1)),
        ] {
            assert_eq!(a, b, "{name} not deterministic");
            assert!(in_unit_cube(&a), "{name} escapes unit cube");
            assert_eq!(a.len(), 500);
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(uniform(4, 100, 1), uniform(4, 100, 2));
    }

    #[test]
    fn uniform_fills_the_cube() {
        let ds = uniform(4, 5_000, 7);
        let mbr = Mbr::of_points(4, ds.iter());
        for i in 0..4 {
            assert!(mbr.lb(i) < 0.01, "lb {i}");
            assert!(mbr.ub(i) > 0.99, "ub {i}");
        }
    }

    #[test]
    fn cad_variance_decays_with_dimension() {
        let ds = cad_like(16, 5_000, 3);
        let var = |i: usize| -> f64 {
            let mean: f64 = ds.iter().map(|p| f64::from(p[i])).sum::<f64>() / ds.len() as f64;
            ds.iter()
                .map(|p| (f64::from(p[i]) - mean).powi(2))
                .sum::<f64>()
                / ds.len() as f64
        };
        assert!(
            var(0) > 3.0 * var(15),
            "leading dims should dominate: {} vs {}",
            var(0),
            var(15)
        );
    }

    #[test]
    fn color_rows_near_simplex() {
        let ds = color_like(16, 1_000, 3);
        for p in ds.iter() {
            let s: f64 = p.iter().map(|&x| f64::from(x)).sum();
            assert!((s - 1.0).abs() < 0.05, "histogram sums to {s}");
        }
    }

    #[test]
    fn manifold_has_intrinsic_fractal_dimension() {
        for intrinsic in [1usize, 2, 3] {
            let ds = manifold(8, intrinsic, 30_000, 0.0, 7);
            let df = crate::fractal::correlation_dimension_auto(&ds);
            assert!(
                (df - intrinsic as f64).abs() < 1.0,
                "intrinsic {intrinsic}: estimated {df}"
            );
        }
    }

    #[test]
    fn manifold_noise_raises_dimension() {
        let clean = manifold(8, 2, 30_000, 0.0, 8);
        let noisy = manifold(8, 2, 30_000, 0.05, 8);
        let df_clean = crate::fractal::correlation_dimension_auto(&clean);
        let df_noisy = crate::fractal::correlation_dimension_auto(&noisy);
        assert!(df_noisy > df_clean, "{df_noisy} vs {df_clean}");
    }

    #[test]
    fn weather_is_tightly_clustered() {
        // Average NN-ish spread: points from the same station should be
        // close; verify overall variance is far below uniform's 1/12.
        let ds = weather_like(9, 2_000, 3);
        let mut var_sum = 0.0;
        for i in 0..9 {
            let mean: f64 = ds.iter().map(|p| f64::from(p[i])).sum::<f64>() / ds.len() as f64;
            var_sum += ds
                .iter()
                .map(|p| (f64::from(p[i]) - mean).powi(2))
                .sum::<f64>()
                / ds.len() as f64;
        }
        assert!(
            var_sum / 9.0 < 1.0 / 12.0,
            "should be below uniform variance"
        );
    }
}
