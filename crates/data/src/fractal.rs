//! Correlation fractal-dimension estimation (box counting).
//!
//! The cost model's fractal correction (eqs 13–15) needs the correlation
//! dimension `D_F` (a.k.a. `D₂`) of the data set: the exponent with which
//! the number of point pairs within distance `r` grows with `r`. The
//! box-counting estimator of Belussi/Faloutsos (VLDB '95) computes, for a
//! sequence of grids with cell side `2^{-g}`, the correlation sum
//! `S₂(g) = Σ_cells (n_cell/N)²` and fits the slope of `log₂ S₂` against
//! `-g`; for a uniform d-dimensional set the slope is exactly `d`.

use iq_geometry::{Dataset, Mbr};
use std::collections::HashMap;

/// Estimates the correlation fractal dimension of `ds` using grid levels
/// `g_min..=g_max` bits per dimension.
///
/// The data is first normalized to its bounding box (degenerate dimensions
/// collapse to cell 0 and contribute nothing, as they should). Cell keys are
/// bit-packed, which limits `dim * g_max` to 128.
///
/// # Panics
/// Panics if the set is empty, `g_min == 0`, `g_min >= g_max`, or
/// `dim * g_max > 128`.
pub fn correlation_dimension(ds: &Dataset, g_min: u32, g_max: u32) -> f64 {
    assert!(
        !ds.is_empty(),
        "cannot estimate the dimension of an empty set"
    );
    assert!(g_min >= 1 && g_min < g_max, "need at least two grid levels");
    let d = ds.dim();
    assert!(
        d as u32 * g_max <= 128,
        "dim * g_max must be <= 128 for packed cell keys"
    );
    let mbr = Mbr::of_points(d, ds.iter());
    let n = ds.len() as f64;

    // The naive correlation sum Σ (n_i/N)² has a 1/N sampling floor that
    // flattens the slope once cells hold mostly single points. The unbiased
    // pair-count form Σ n_i(n_i−1) / (N(N−1)) — the probability that two
    // *distinct* points share a cell — has no such floor; levels whose pair
    // count is too small to be statistically meaningful are skipped.
    const MIN_PAIRS: u64 = 64;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut counts: HashMap<u128, u64> = HashMap::new();
    for g in g_min..=g_max {
        counts.clear();
        let cells = f64::from(1u32 << g);
        for p in ds.iter() {
            let mut key: u128 = 0;
            for (i, &x) in p.iter().enumerate() {
                let ext = mbr.extent(i);
                let c = if ext == 0.0 {
                    0u128
                } else {
                    let rel = (f64::from(x) - f64::from(mbr.lb(i))) / ext;
                    ((rel * cells).floor().max(0.0) as u128).min((1u128 << g) - 1)
                };
                key = (key << g) | c;
            }
            *counts.entry(key).or_insert(0) += 1;
        }
        let pairs: u64 = counts.values().map(|&c| c * (c - 1)).sum();
        if pairs < MIN_PAIRS {
            break; // finer levels are pure noise
        }
        let s2 = pairs as f64 / (n * (n - 1.0));
        // x = log2 of the cell side = -g; y = log2 S2.
        xs.push(-(f64::from(g)));
        ys.push(s2.log2());
    }
    if xs.len() < 2 {
        // Too few usable levels (tiny or ultra-sparse set): fall back to the
        // embedding dimension, the conservative choice for the cost model.
        return d as f64;
    }

    // Least-squares slope of y on x.
    let m = xs.len() as f64;
    let mean_x: f64 = xs.iter().sum::<f64>() / m;
    let mean_y: f64 = ys.iter().sum::<f64>() / m;
    let cov: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let var: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    (cov / var).max(0.0)
}

/// Estimates `D_F` with default grid levels suited to the set's size and
/// dimensionality (coarser grids for higher dimensions so cells stay
/// populated and keys stay packable).
pub fn correlation_dimension_auto(ds: &Dataset) -> f64 {
    let d = ds.dim() as u32;
    let g_max = (128 / d).clamp(2, 6);
    correlation_dimension(ds, 1, g_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn uniform_set_has_full_dimension() {
        for d in [2usize, 4, 8] {
            let ds = generate::uniform(d, 40_000, 11);
            let df = correlation_dimension_auto(&ds);
            assert!(
                (df - d as f64).abs() < 0.35 * d as f64,
                "d={d}: estimated {df}"
            );
        }
    }

    #[test]
    fn line_embedded_in_high_dim_has_dimension_one() {
        // Points along the diagonal of [0,1]^8.
        let mut ds = Dataset::new(8);
        let mut t = 0.0f32;
        for _ in 0..20_000 {
            t = (t + 0.618_034) % 1.0; // low-discrepancy walk along the line
            ds.push(&[t; 8]);
        }
        let df = correlation_dimension_auto(&ds);
        assert!(df < 1.5, "diagonal line estimated at {df}");
    }

    #[test]
    fn plane_embedded_in_high_dim_has_dimension_two() {
        let mut ds = Dataset::new(6);
        let (mut u, mut v) = (0.0f32, 0.0f32);
        for _ in 0..30_000 {
            u = (u + 0.618_034) % 1.0;
            v = (v + 0.414_214) % 1.0;
            ds.push(&[u, v, u, v, u, v]);
        }
        let df = correlation_dimension_auto(&ds);
        assert!((1.4..2.8).contains(&df), "plane estimated at {df}");
    }

    #[test]
    fn weather_has_low_fractal_dimension() {
        let ds = generate::weather_like(9, 40_000, 5);
        let df = correlation_dimension_auto(&ds);
        assert!(df < 5.0, "weather-like should be far below 9, got {df}");
    }

    #[test]
    fn degenerate_dimension_contributes_nothing() {
        // 2-d uniform with a constant third coordinate: D2 ≈ 2.
        let base = generate::uniform(2, 30_000, 3);
        let mut ds = Dataset::new(3);
        for p in base.iter() {
            ds.push(&[p[0], p[1], 0.5]);
        }
        let df = correlation_dimension_auto(&ds);
        assert!((1.5..2.6).contains(&df), "got {df}");
    }
}
