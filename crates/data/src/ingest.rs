//! Real-dataset ingestion: fvecs/bvecs (the SIFT/GloVe interchange
//! formats) and CSV with bracketed vector literals plus attribute columns
//! (the lantern fixture shape, `"[0,1,0]",4,7`).
//!
//! Every reader validates structure up front — consistent dimensionality,
//! sane headers, no truncated trailing vector — and reports malformed
//! input as a typed [`IqError::Decode`] rather than panicking or silently
//! clipping: ingested files come from outside the system and are the one
//! input the repo must never trust.

use crate::attrs::AttrTable;
use iq_geometry::Dataset;
use iq_storage::{IqError, IqResult};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Upper bound on a declared vector dimensionality. fvecs headers are raw
/// little-endian u32s, so a corrupt or foreign file shows up as an absurd
/// dimension; rejecting it early beats attempting a multi-gigabyte
/// allocation.
const MAX_DIM: u32 = 65_536;

/// A point set together with its per-point attribute columns (empty for
/// formats that carry none).
#[derive(Clone, Debug, Default)]
pub struct VectorDataset {
    /// The vectors, row id = point id.
    pub points: Dataset,
    /// Attribute columns; when non-empty, `attrs.len() == points.len()`.
    pub attrs: AttrTable,
}

impl VectorDataset {
    /// A dataset with no attributes.
    pub fn bare(points: Dataset) -> Self {
        Self {
            points,
            attrs: AttrTable::new(),
        }
    }
}

fn decode_err(detail: String) -> IqError {
    IqError::Decode { detail }
}

fn io_err(op: &'static str, e: &std::io::Error) -> IqError {
    IqError::Io {
        op,
        block: 0,
        transient: e.kind() == std::io::ErrorKind::Interrupted,
        detail: e.to_string(),
    }
}

/// Decodes an fvecs byte buffer: per vector, a little-endian `u32`
/// dimension header followed by `dim` little-endian `f32`s.
pub fn decode_fvecs(bytes: &[u8]) -> IqResult<Dataset> {
    decode_vecs(bytes, 4, |ds, payload| {
        let mut row = Vec::with_capacity(payload.len() / 4);
        for c in payload.chunks_exact(4) {
            let x = f32::from_le_bytes(c.try_into().expect("4 bytes"));
            if !x.is_finite() {
                return Err(decode_err(format!(
                    "fvecs vector {}: non-finite coordinate",
                    ds.len()
                )));
            }
            row.push(x);
        }
        ds.push(&row);
        Ok(())
    })
}

/// Decodes a bvecs byte buffer (same layout as fvecs with `u8` payload
/// components, as in the SIFT1B distribution); components widen to `f32`.
pub fn decode_bvecs(bytes: &[u8]) -> IqResult<Dataset> {
    decode_vecs(bytes, 1, |ds, payload| {
        let row: Vec<f32> = payload.iter().map(|&b| f32::from(b)).collect();
        ds.push(&row);
        Ok(())
    })
}

/// Shared fvecs/bvecs frame walk: validates each `u32` dimension header
/// against the first, checks the payload is fully present, and hands it to
/// `push`.
fn decode_vecs(
    bytes: &[u8],
    comp_bytes: usize,
    mut push: impl FnMut(&mut Dataset, &[u8]) -> IqResult<()>,
) -> IqResult<Dataset> {
    let mut off = 0usize;
    let mut ds: Option<Dataset> = None;
    while off < bytes.len() {
        let Some(header) = bytes.get(off..off + 4) else {
            return Err(decode_err(format!(
                "truncated vector header at byte {off} (file length {})",
                bytes.len()
            )));
        };
        let dim = u32::from_le_bytes(header.try_into().expect("4 bytes"));
        if dim == 0 || dim > MAX_DIM {
            return Err(decode_err(format!(
                "implausible dimension {dim} in vector header at byte {off}"
            )));
        }
        let ds = match &mut ds {
            Some(ds) => {
                if dim as usize != ds.dim() {
                    return Err(decode_err(format!(
                        "inconsistent dimension at byte {off}: header says {dim}, file started with {}",
                        ds.dim()
                    )));
                }
                ds
            }
            None => ds.insert(Dataset::new(dim as usize)),
        };
        let payload_len = dim as usize * comp_bytes;
        let Some(payload) = bytes.get(off + 4..off + 4 + payload_len) else {
            return Err(decode_err(format!(
                "truncated vector payload at byte {} (need {payload_len} bytes, have {})",
                off + 4,
                bytes.len() - off - 4
            )));
        };
        push(ds, payload)?;
        off += 4 + payload_len;
    }
    ds.ok_or_else(|| decode_err("empty vector file".into()))
}

/// Encodes `ds` in the fvecs layout.
pub fn encode_fvecs(ds: &Dataset) -> Vec<u8> {
    let mut out = Vec::with_capacity(ds.len() * (4 + ds.dim() * 4));
    for p in ds.iter() {
        out.extend_from_slice(&(ds.dim() as u32).to_le_bytes());
        for &c in p {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
    out
}

/// Reads an fvecs file.
pub fn read_fvecs(path: &Path) -> IqResult<Dataset> {
    let bytes = std::fs::read(path).map_err(|e| io_err("read fvecs", &e))?;
    decode_fvecs(&bytes)
}

/// Writes `ds` as an fvecs file.
pub fn write_fvecs(path: &Path, ds: &Dataset) -> IqResult<()> {
    std::fs::write(path, encode_fvecs(ds)).map_err(|e| io_err("write fvecs", &e))
}

/// Reads a bvecs file (components widen to `f32`).
pub fn read_bvecs(path: &Path) -> IqResult<Dataset> {
    let bytes = std::fs::read(path).map_err(|e| io_err("read bvecs", &e))?;
    decode_bvecs(&bytes)
}

/// Writes `ds` as a bvecs file. Every coordinate must be an integer in
/// `0..=255` (bvecs stores bytes); anything else is a [`IqError::Decode`].
pub fn write_bvecs(path: &Path, ds: &Dataset) -> IqResult<()> {
    let mut out = Vec::with_capacity(ds.len() * (4 + ds.dim()));
    for (i, p) in ds.iter().enumerate() {
        out.extend_from_slice(&(ds.dim() as u32).to_le_bytes());
        for &c in p {
            if c.fract() != 0.0 || !(0.0..=255.0).contains(&c) {
                return Err(decode_err(format!(
                    "vector {i}: coordinate {c} does not fit a bvecs byte"
                )));
            }
            out.push(c as u8);
        }
    }
    std::fs::write(path, out).map_err(|e| io_err("write bvecs", &e))
}

/// Reads a CSV file whose rows carry a bracketed vector literal followed
/// by optional integer attribute columns:
///
/// ```text
/// # attrs: label,weight
/// [0.1,0.2,0.3],4,70
/// [0.0,1.0,0.5],2,13
/// ```
///
/// The `# attrs:` header names the attribute columns; without it, columns
/// are named `a0, a1, ...` after the first data row fixes their count.
/// Plain (bracket-free) CSV rows are accepted too and carry no attributes.
pub fn read_vec_csv(path: &Path) -> IqResult<VectorDataset> {
    let file = std::fs::File::open(path).map_err(|e| io_err("read csv", &e))?;
    let reader = BufReader::new(file);
    let mut names: Option<Vec<String>> = None;
    let mut points: Option<Dataset> = None;
    let mut attrs: Option<AttrTable> = None;
    let mut row: Vec<f32> = Vec::new();
    let mut avals: Vec<i64> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| io_err("read csv", &e))?;
        let lineno = lineno + 1;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix('#') {
            if let Some(list) = rest.trim().strip_prefix("attrs:") {
                names = Some(
                    list.split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
            }
            continue; // other comments are ignored
        }
        let (vec_part, attr_part) = if let Some(body) = t.strip_prefix('[') {
            let (inner, rest) = body
                .split_once(']')
                .ok_or_else(|| decode_err(format!("line {lineno}: unterminated vector literal")))?;
            (inner, rest.trim_start_matches(',').trim())
        } else {
            (t, "")
        };
        row.clear();
        for tok in vec_part.split(',') {
            let x: f32 = tok.trim().parse().map_err(|_| {
                decode_err(format!(
                    "line {lineno}: invalid coordinate `{}`",
                    tok.trim()
                ))
            })?;
            if !x.is_finite() {
                return Err(decode_err(format!("line {lineno}: non-finite coordinate")));
            }
            row.push(x);
        }
        avals.clear();
        if !attr_part.is_empty() {
            for tok in attr_part.split(',') {
                let v: i64 = tok.trim().parse().map_err(|_| {
                    decode_err(format!("line {lineno}: invalid attribute `{}`", tok.trim()))
                })?;
                avals.push(v);
            }
        }
        let points = points.get_or_insert_with(|| Dataset::new(row.len()));
        if row.len() != points.dim() {
            return Err(decode_err(format!(
                "line {lineno}: expected {} coordinates, got {}",
                points.dim(),
                row.len()
            )));
        }
        let attrs = attrs.get_or_insert_with(|| {
            let names = names
                .clone()
                .unwrap_or_else(|| (0..avals.len()).map(|i| format!("a{i}")).collect());
            AttrTable::with_columns(names)
        });
        if avals.len() != attrs.names().len() {
            return Err(decode_err(format!(
                "line {lineno}: expected {} attributes, got {}",
                attrs.names().len(),
                avals.len()
            )));
        }
        points.push(&row);
        attrs.push_row(&avals);
    }
    let points = points.ok_or_else(|| decode_err(format!("{path:?} contains no points")))?;
    Ok(VectorDataset {
        points,
        attrs: attrs.unwrap_or_default(),
    })
}

/// Writes `vd` in the bracketed-vector CSV layout [`read_vec_csv`] reads,
/// including the `# attrs:` header when attribute columns exist.
pub fn write_vec_csv(path: &Path, vd: &VectorDataset) -> IqResult<()> {
    let file = std::fs::File::create(path).map_err(|e| io_err("write csv", &e))?;
    let mut w = BufWriter::new(file);
    let has_attrs = !vd.attrs.names().is_empty();
    if has_attrs {
        assert_eq!(
            vd.attrs.len(),
            vd.points.len(),
            "one attribute row per point"
        );
        writeln!(w, "# attrs: {}", vd.attrs.names().join(","))
            .map_err(|e| io_err("write csv", &e))?;
    }
    let mut line = String::new();
    for (i, p) in vd.points.iter().enumerate() {
        line.clear();
        line.push('[');
        for (j, x) in p.iter().enumerate() {
            if j > 0 {
                line.push(',');
            }
            line.push_str(&x.to_string());
        }
        line.push(']');
        if has_attrs {
            for v in vd.attrs.row(i) {
                line.push(',');
                line.push_str(&v.to_string());
            }
        }
        writeln!(w, "{line}").map_err(|e| io_err("write csv", &e))?;
    }
    w.flush().map_err(|e| io_err("write csv", &e))
}

/// Reads a dataset from `path`, dispatching on the extension: `.fvecs`,
/// `.bvecs`, or CSV (bracketed-literal or plain) for everything else.
pub fn read_auto(path: &Path) -> IqResult<VectorDataset> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("fvecs") => Ok(VectorDataset::bare(read_fvecs(path)?)),
        Some("bvecs") => Ok(VectorDataset::bare(read_bvecs(path)?)),
        _ => read_vec_csv(path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("iq-data-ingest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(name)
    }

    fn sample(n: usize, dim: usize) -> Dataset {
        let mut ds = Dataset::with_capacity(dim, n);
        let mut x = 0.37f32;
        let mut row = vec![0.0f32; dim];
        for _ in 0..n {
            for r in &mut row {
                x = (x * 31.7 + 0.11).fract();
                *r = x;
            }
            ds.push(&row);
        }
        ds
    }

    #[test]
    fn fvecs_roundtrip_is_byte_identical() {
        let ds = sample(200, 7);
        let path = temp_file("rt.fvecs");
        write_fvecs(&path, &ds).expect("write");
        let back = read_fvecs(&path).expect("read");
        assert_eq!(back.dim(), 7);
        assert_eq!(back.len(), 200);
        assert_eq!(ds.as_flat(), back.as_flat(), "f32s must round-trip exactly");
        // And the encoded bytes themselves round-trip.
        assert_eq!(encode_fvecs(&back), std::fs::read(&path).unwrap());
    }

    #[test]
    fn bvecs_roundtrip() {
        let mut ds = Dataset::new(4);
        for i in 0..50 {
            ds.push(&[i as f32, 255.0, 0.0, (i * 3 % 256) as f32]);
        }
        let path = temp_file("rt.bvecs");
        write_bvecs(&path, &ds).expect("write");
        let back = read_bvecs(&path).expect("read");
        assert_eq!(ds.as_flat(), back.as_flat());
    }

    #[test]
    fn bvecs_write_rejects_non_bytes() {
        let ds = Dataset::from_flat(2, vec![0.5, 1.0]);
        assert!(matches!(
            write_bvecs(&temp_file("bad.bvecs"), &ds),
            Err(IqError::Decode { .. })
        ));
    }

    #[test]
    fn fvecs_malformed_headers_are_typed_errors() {
        // Truncated header.
        let e = decode_fvecs(&[1, 0]).unwrap_err();
        assert!(matches!(e, IqError::Decode { ref detail } if detail.contains("truncated")));
        // Zero dimension.
        let e = decode_fvecs(&0u32.to_le_bytes()).unwrap_err();
        assert!(matches!(e, IqError::Decode { ref detail } if detail.contains("implausible")));
        // Absurd dimension (a foreign binary file).
        let e = decode_fvecs(&u32::MAX.to_le_bytes()).unwrap_err();
        assert!(matches!(e, IqError::Decode { ref detail } if detail.contains("implausible")));
        // Truncated payload.
        let mut bytes = 3u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&1.0f32.to_le_bytes());
        let e = decode_fvecs(&bytes).unwrap_err();
        assert!(matches!(e, IqError::Decode { ref detail } if detail.contains("payload")));
        // Inconsistent dimension between vectors.
        let mut bytes = encode_fvecs(&Dataset::from_flat(2, vec![1.0, 2.0]));
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        let e = decode_fvecs(&bytes).unwrap_err();
        assert!(matches!(e, IqError::Decode { ref detail } if detail.contains("inconsistent")));
        // Empty file.
        assert!(decode_fvecs(&[]).is_err());
    }

    #[test]
    fn vec_csv_roundtrip_with_attrs() {
        let points = sample(60, 3);
        let mut attrs = AttrTable::with_columns(vec!["label".into(), "w".into()]);
        for i in 0..60i64 {
            attrs.push_row(&[i % 5, i * 10]);
        }
        let vd = VectorDataset { points, attrs };
        let path = temp_file("rt.csv");
        write_vec_csv(&path, &vd).expect("write");
        let back = read_vec_csv(&path).expect("read");
        assert_eq!(back.points.as_flat(), vd.points.as_flat());
        assert_eq!(back.attrs, vd.attrs);
    }

    #[test]
    fn vec_csv_literal_forms() {
        let path = temp_file("forms.csv");
        std::fs::write(&path, "[0,1,0],7\n[1,0,1],9\n").expect("write");
        let vd = read_vec_csv(&path).expect("read");
        assert_eq!(vd.points.len(), 2);
        assert_eq!(vd.points.point(0), &[0.0, 1.0, 0.0]);
        assert_eq!(vd.attrs.names(), &["a0".to_string()]);
        assert_eq!(vd.attrs.column("a0").unwrap(), &[7, 9]);
        // Plain rows (no brackets) still parse, attribute-free.
        std::fs::write(&path, "0.5,0.25\n0.75,1.5\n").expect("write");
        let vd = read_vec_csv(&path).expect("read");
        assert_eq!(vd.points.len(), 2);
        assert!(vd.attrs.names().is_empty());
    }

    #[test]
    fn vec_csv_rejects_malformed() {
        let path = temp_file("bad.csv");
        for (content, needle) in [
            ("[1,2", "unterminated"),
            ("[1,x]", "invalid coordinate"),
            ("[1,2],z", "invalid attribute"),
            ("[1,2],3\n[1,2,3],4\n", "expected 2 coordinates"),
            ("[1,2],3\n[1,2]\n", "expected 1 attributes"),
            ("", "no points"),
        ] {
            std::fs::write(&path, content).expect("write");
            let e = read_vec_csv(&path).expect_err(content);
            match e {
                IqError::Decode { ref detail } => {
                    assert!(detail.contains(needle), "`{content}` -> {detail}")
                }
                other => panic!("`{content}` -> unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn read_auto_dispatches_on_extension() {
        let ds = sample(20, 4);
        let f = temp_file("auto.fvecs");
        write_fvecs(&f, &ds).expect("write");
        assert_eq!(read_auto(&f).expect("fvecs").points.as_flat(), ds.as_flat());
        let c = temp_file("auto.csv");
        write_vec_csv(&c, &VectorDataset::bare(ds.clone())).expect("write");
        assert_eq!(read_auto(&c).expect("csv").points.as_flat(), ds.as_flat());
    }
}
