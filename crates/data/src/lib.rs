//! Synthetic data sets and fractal-dimension estimation.
//!
//! The paper evaluates on UNIFORM plus three proprietary real data sets
//! (CAD, COLOR, WEATHER). The real sets are unavailable, so [`generate`]
//! provides synthetic analogues engineered to have the *properties the
//! paper's analysis depends on* (degree of clustering and fractal
//! dimension); see DESIGN.md for the substitution argument. [`fractal`]
//! implements the correlation fractal-dimension estimator the cost model
//! uses to correct for those properties.

pub mod attrs;
pub mod fractal;
pub mod generate;
pub mod ingest;
pub mod io;
pub mod workload;

pub use attrs::{AttrTable, Predicate};
pub use fractal::{correlation_dimension, correlation_dimension_auto};
pub use generate::{cad_like, clusters, color_like, manifold, uniform, weather_like};
pub use ingest::{
    read_auto, read_bvecs, read_fvecs, read_vec_csv, write_bvecs, write_fvecs, write_vec_csv,
    VectorDataset,
};
pub use io::{read_csv, write_csv};
pub use workload::Workload;
