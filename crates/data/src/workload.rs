//! Query workloads.
//!
//! "For each experiment we separated from \[the\] database a set of query
//! points, thus not contained in the database, but following the
//! distribution of the respective data set" (Section 4). A [`Workload`]
//! does exactly that: it generates `n + q` points from one distribution and
//! reserves the last `q` as queries.

use iq_geometry::Dataset;

/// A database plus a query set drawn from the same distribution.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The indexed points.
    pub db: Dataset,
    /// The query points (not contained in the database).
    pub queries: Dataset,
}

impl Workload {
    /// Splits the last `num_queries` points of `all` off as the query set.
    ///
    /// # Panics
    /// Panics if `num_queries >= all.len()` (the database must be
    /// non-empty).
    pub fn split(mut all: Dataset, num_queries: usize) -> Self {
        assert!(
            num_queries < all.len(),
            "workload would leave an empty database"
        );
        let queries = all.split_off_tail(num_queries);
        Self { db: all, queries }
    }

    /// Convenience: builds a workload from a generator closure producing
    /// `n + num_queries` points.
    pub fn generate(n: usize, num_queries: usize, gen: impl FnOnce(usize) -> Dataset) -> Self {
        Self::split(gen(n + num_queries), num_queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn split_sizes() {
        let w = Workload::generate(100, 10, |n| generate::uniform(4, n, 1));
        assert_eq!(w.db.len(), 100);
        assert_eq!(w.queries.len(), 10);
        assert_eq!(w.db.dim(), 4);
    }

    #[test]
    fn queries_not_in_db() {
        let w = Workload::generate(500, 20, |n| generate::uniform(4, n, 2));
        for q in w.queries.iter() {
            assert!(w.db.iter().all(|p| p != q));
        }
    }
}
