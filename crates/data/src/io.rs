//! CSV import/export for point sets.
//!
//! The interchange format the `iq` CLI uses: one point per line, `f32`
//! coordinates separated by commas. Dimensionality is inferred from the
//! first row and enforced on the rest.

use iq_geometry::Dataset;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes `ds` as CSV to `path` (one row per point).
pub fn write_csv(path: &Path, ds: &Dataset) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("create {path:?}: {e}"))?;
    let mut w = BufWriter::new(file);
    let mut line = String::new();
    for p in ds.iter() {
        line.clear();
        for (i, x) in p.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&x.to_string());
        }
        writeln!(w, "{line}").map_err(|e| format!("write {path:?}: {e}"))?;
    }
    w.flush().map_err(|e| format!("flush {path:?}: {e}"))
}

/// Reads a CSV point file written by [`write_csv`] (or any compatible
/// producer). Empty lines are skipped; ragged rows are an error.
pub fn read_csv(path: &Path) -> Result<Dataset, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let reader = BufReader::new(file);
    let mut ds: Option<Dataset> = None;
    let mut row: Vec<f32> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("read {path:?}: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        row.clear();
        for tok in line.split(',') {
            let x: f32 = tok
                .trim()
                .parse()
                .map_err(|_| format!("line {}: invalid coordinate `{tok}`", lineno + 1))?;
            if !x.is_finite() {
                return Err(format!("line {}: non-finite coordinate", lineno + 1));
            }
            row.push(x);
        }
        let ds = ds.get_or_insert_with(|| Dataset::new(row.len()));
        if row.len() != ds.dim() {
            return Err(format!(
                "line {}: expected {} coordinates, got {}",
                lineno + 1,
                ds.dim(),
                row.len()
            ));
        }
        ds.push(&row);
    }
    ds.ok_or_else(|| format!("{path:?} contains no points"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("iq-data-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(name)
    }

    #[test]
    fn roundtrip() {
        let ds = crate::generate::uniform(5, 200, 3);
        let path = temp_file("roundtrip.csv");
        write_csv(&path, &ds).expect("write");
        let back = read_csv(&path).expect("read");
        assert_eq!(back.dim(), 5);
        assert_eq!(back.len(), 200);
        for (a, b) in ds.iter().zip(back.iter()) {
            assert_eq!(a, b, "f32 -> decimal -> f32 must be exact");
        }
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn skips_empty_lines() {
        let path = temp_file("gaps.csv");
        std::fs::write(&path, "1,2\n\n3,4\n   \n5,6\n").expect("write");
        let ds = read_csv(&path).expect("read");
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.point(2), &[5.0, 6.0]);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_ragged_and_garbage() {
        let path = temp_file("bad1.csv");
        std::fs::write(&path, "1,2\n3,4,5\n").expect("write");
        assert!(read_csv(&path).expect_err("ragged").contains("expected 2"));
        std::fs::write(&path, "1,x\n").expect("write");
        assert!(read_csv(&path)
            .expect_err("garbage")
            .contains("invalid coordinate"));
        std::fs::write(&path, "1,inf\n").expect("write");
        assert!(read_csv(&path).expect_err("inf").contains("non-finite"));
        std::fs::write(&path, "").expect("write");
        assert!(read_csv(&path).expect_err("empty").contains("no points"));
        std::fs::remove_file(&path).expect("cleanup");
    }
}
