//! VA-file baseline (vector-approximation file, Weber/Schek/Blott,
//! VLDB '98).
//!
//! The VA-file is "an index structure that actually is not an index
//! structure" (paper, Section 5): it keeps a bit-compressed version of all
//! points in one flat file plus the exact points in a second flat file, in
//! identical order. A query scans the approximation file sequentially,
//! derives a lower and an upper distance bound per point from its grid-cell
//! box, and fetches the exact coordinates only for points whose lower bound
//! does not exceed the best upper bound found (two-phase NN search).
//!
//! Unlike the IQ-tree's *page-local* grids, the VA-file uses one *global*
//! grid with a fixed, manually chosen number of bits per dimension — the
//! tuning knob the paper sweeps from 2 to 8 bits and picks the best of.

use iq_cost::refine::RefineParams;
use iq_engine::{
    query_span_begin, query_span_end, refine_ascending, AccessMethod, Executor, Filter,
    QueryOptions, QueryTrace, TopK,
};
use iq_geometry::{Dataset, Mbr, Metric};
use iq_obs::{CostPrediction, Phase};
use iq_quantize::{BitWriter, CellMatch, DistTable, ExactPageCodec, GridQuantizer, WindowTable};
use iq_storage::DiskModel;
use iq_storage::{BlockDevice, SimClock};

/// Blocks fetched per sequential read during the filter scan.
const SCAN_CHUNK_BLOCKS: u64 = 256;

/// Predicts the average NN query cost of a VA-file at `bits` per
/// dimension, using the IQ-tree's cost model (the data space plays the
/// role of one big "page" with a global grid): one sequential sweep of the
/// approximation file, two bound evaluations per point, plus the expected
/// refinements priced as random accesses.
///
/// This ports the paper's headline advantage — "it automatically adapts
/// the compression rate" — to the VA-file, replacing its manual 2–8 bit
/// sweep (Section 4.2).
pub fn predict_cost(
    disk: &DiskModel,
    cpu: &iq_storage::CpuModel,
    dim: usize,
    n: usize,
    fractal_dim: f64,
    data_sides: &[f32],
    bits: u32,
) -> f64 {
    let entry_bytes = (dim * bits as usize).div_ceil(8);
    let scan_blocks = disk.blocks_for(n * entry_bytes);
    let scan = disk.scan_cost(scan_blocks) + cpu.dist_cost(dim, 2 * n as u64);
    let params = RefineParams::fractal(Metric::Euclidean, dim, fractal_dim, n);
    let refinements = iq_cost::expected_refinements(&params, data_sides, n, bits);
    scan + refinements * (disk.t_seek + disk.t_xfer) + refinements * cpu.dist_cost(dim, 1)
}

/// The model-chosen number of bits per dimension for a data set: evaluates
/// [`predict_cost`] over 1..=16 and returns the argmin.
pub fn auto_bits(
    disk: &DiskModel,
    cpu: &iq_storage::CpuModel,
    ds: &Dataset,
    fractal_dim: f64,
) -> u32 {
    let mbr = Mbr::of_points(ds.dim(), ds.iter());
    let sides: Vec<f32> = (0..ds.dim()).map(|i| mbr.extent(i) as f32).collect();
    (1..=16u32)
        .min_by(|&a, &b| {
            let ca = predict_cost(disk, cpu, ds.dim(), ds.len(), fractal_dim, &sides, a);
            let cb = predict_cost(disk, cpu, ds.dim(), ds.len(), fractal_dim, &sides, b);
            ca.partial_cmp(&cb).expect("costs are never NaN")
        })
        .expect("non-empty bits range")
}

/// A VA-file over a fixed data set.
///
/// # Example
///
/// ```
/// use iq_geometry::{Dataset, Metric};
/// use iq_storage::{MemDevice, SimClock};
/// use iq_vafile::VaFile;
///
/// let ds = Dataset::from_flat(2, (0..100).map(|i| i as f32 / 100.0).collect());
/// let mut clock = SimClock::default();
/// let va = VaFile::build(
///     &ds,
///     Metric::Euclidean,
///     4, // bits per dimension
///     Box::new(MemDevice::new(512)),
///     Box::new(MemDevice::new(512)),
///     &mut clock,
/// );
/// let (_, dist) = va.nearest(&mut clock, &[0.51, 0.52]).unwrap();
/// assert!(dist < 0.1);
/// ```
pub struct VaFile {
    dim: usize,
    metric: Metric,
    bits: u32,
    n: usize,
    mbr: Mbr,
    entry_bytes: usize,
    codec: ExactPageCodec,
    approx: Box<dyn BlockDevice>,
    exact: Box<dyn BlockDevice>,
}

impl VaFile {
    /// Builds the approximation and exact files for `ds` with `bits` bits
    /// per dimension (the paper sweeps 2–8).
    ///
    /// # Panics
    /// Panics if `ds` is empty or `bits` is outside `1..=16`.
    pub fn build(
        ds: &Dataset,
        metric: Metric,
        bits: u32,
        mut approx: Box<dyn BlockDevice>,
        mut exact: Box<dyn BlockDevice>,
        clock: &mut SimClock,
    ) -> Self {
        assert!(!ds.is_empty(), "cannot build a VA-file over an empty set");
        assert!(
            (1..=16).contains(&bits),
            "bits per dimension must be in 1..=16"
        );
        let dim = ds.dim();
        let mbr = Mbr::of_points(dim, ds.iter());
        let grid = GridQuantizer::new(&mbr, bits);
        let entry_bytes = (dim * bits as usize).div_ceil(8);

        let mut approx_bytes = Vec::with_capacity(ds.len() * entry_bytes);
        for p in ds.iter() {
            let mut w = BitWriter::new();
            for (i, &x) in p.iter().enumerate() {
                w.write(grid.cell_of(i, x), bits);
            }
            let packed = w.into_bytes();
            debug_assert_eq!(packed.len(), entry_bytes);
            approx_bytes.extend_from_slice(&packed);
        }
        approx
            .append(clock, &approx_bytes)
            .expect("append approximation file");

        let codec = ExactPageCodec::new(dim);
        let rows = ds.iter().enumerate().map(|(i, p)| (i as u32, p));
        exact
            .append(clock, &codec.encode(rows))
            .expect("append exact file");

        Self {
            dim,
            metric,
            bits,
            n: ds.len(),
            mbr,
            entry_bytes,
            codec,
            approx,
            exact,
        }
    }

    /// Bits per dimension of the global grid.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The distance metric queries are answered under.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the file is empty (never true: `build` rejects empty sets).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Size of the approximation file in blocks (what the filter phase
    /// scans).
    pub fn approx_blocks(&self) -> u64 {
        self.approx.num_blocks()
    }

    /// Builds the per-query distance table over the global grid: `dim ×
    /// 2^bits` lower/upper bound contributions, so the scan does `dim`
    /// lookups per point instead of per-point geometry. (For very fine
    /// grids the table stays lazy and folds contributions on the fly —
    /// same results either way.)
    fn dist_table(&self, q: &[f32]) -> DistTable {
        let mut t = DistTable::new();
        t.build(&self.mbr, self.bits, self.metric, q, self.n);
        t
    }

    /// Phase 1: scans the approximation file and produces per-point lower
    /// bounds plus the pruning threshold δ (the k-th smallest upper bound),
    /// all in the metric's comparable key space. When a `filter` is
    /// pushed down, non-matching points are dropped during the sweep: they
    /// get a `NAN` lower bound (never a candidate) and contribute nothing
    /// to δ, so the threshold is the k-th smallest *matching* upper bound.
    ///
    /// Takes `&self` (like all query paths): both files are immutable after
    /// [`VaFile::build`], so concurrent queries share the structure freely.
    fn filter_phase(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
        filter: Option<&Filter>,
    ) -> (Vec<f64>, f64) {
        let table = self.dist_table(q);
        let entry = self.entry_bytes;

        let mut lower = Vec::with_capacity(self.n);
        // The k smallest upper bounds seen so far (δ is their max).
        let mut best_ub = TopK::new(k);
        let total_blocks = self.approx.num_blocks();
        let mut processed = 0usize;
        let mut buf_carry: Vec<u8> = Vec::new();
        let mut block = 0u64;
        // Batch scratch: each chunk's entries are unpacked and bound in one
        // SIMD pass (bit-identical to the per-entry lookup loop).
        let mut block_cells: Vec<u32> = Vec::new();
        let mut lo_keys: Vec<f64> = Vec::new();
        let mut hi_keys: Vec<f64> = Vec::new();
        while block < total_blocks && processed < self.n {
            let nb = SCAN_CHUNK_BLOCKS.min(total_blocks - block);
            let chunk = self
                .approx
                .read_to_vec(clock, block, nb)
                .expect("read approximation file");
            buf_carry.extend_from_slice(&chunk);
            let avail = (buf_carry.len() / entry).min(self.n - processed);
            if avail > 0 {
                block_cells.clear();
                block_cells.resize(avail * self.dim, 0);
                iq_quantize::simd::unpack_block(
                    &buf_carry[..avail * entry],
                    entry,
                    0,
                    self.bits,
                    self.dim,
                    &mut block_cells,
                );
                table.bounds_keys(&block_cells, &mut lo_keys, &mut hi_keys);
                for j in 0..avail {
                    let id = (processed + j) as u32;
                    if filter.is_none_or(|f| f.matches(id)) {
                        lower.push(lo_keys[j]);
                        best_ub.insert(hi_keys[j], id);
                    } else {
                        lower.push(f64::NAN);
                    }
                }
                buf_carry.drain(..avail * entry);
                processed += avail;
            }
            block += nb;
        }
        // Two bound evaluations per scanned point.
        clock.charge_dist_evals(self.dim, 2 * self.n as u64);
        // δ = the k-th smallest upper bound; +∞ while fewer than k points
        // exist (then every lower bound passes anyway, since lb <= ub).
        (lower, best_ub.bound())
    }

    /// Fetches the exact coordinates of point `i` (random access into the
    /// exact file) into a caller-provided buffer.
    fn fetch_exact_into(&self, clock: &mut SimClock, i: usize, out: &mut [f32]) {
        let bs = self.exact.block_size();
        let (first, nblocks, byte_off) = self.codec.entry_span(i, bs);
        let buf = self
            .exact
            .read_to_vec(clock, first, nblocks)
            .expect("read exact file");
        self.codec
            .decode_entry_into(&buf[byte_off..byte_off + self.codec.entry_bytes()], out);
    }

    /// Exact nearest neighbor of `q`.
    pub fn nearest(&self, clock: &mut SimClock, q: &[f32]) -> Option<(u32, f64)> {
        self.knn(clock, q, 1).pop()
    }

    /// The `k` exact nearest neighbors of `q`, ordered by increasing
    /// distance.
    pub fn knn(&self, clock: &mut SimClock, q: &[f32], k: usize) -> Vec<(u32, f64)> {
        self.knn_traced(clock, q, k).0
    }

    /// Like [`VaFile::knn`], additionally reporting what the two-phase
    /// search did: the approximation sweep ([`QueryTrace::runs`] = 1,
    /// `pages_processed` = blocks scanned), the candidates surviving the
    /// filter (`approx_enqueued`) and the exact fetches actually performed
    /// (`refinements`).
    pub fn knn_traced(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
    ) -> (Vec<(u32, f64)>, QueryTrace) {
        self.knn_traced_impl(clock, q, k, None, &QueryOptions::EXACT)
    }

    /// Shared two-phase search; `filter` (if any) is pushed into the
    /// approximation sweep, so δ and the candidate set derive only from
    /// matching points and `k` counts post-filter results. Phase 2 is the
    /// shared executor's [`refine_ascending`] sweep, which owns pruning,
    /// ε-termination, the `refine_factor` cap and the time budget;
    /// `nprobes` truncates the sorted candidate list first (IVF-style:
    /// only the m best approximations are ever refined).
    fn knn_traced_impl(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
        filter: Option<&Filter>,
        opts: &QueryOptions,
    ) -> (Vec<(u32, f64)>, QueryTrace) {
        assert_eq!(q.len(), self.dim);
        if k == 0 || filter.is_some_and(|f| f.matching() == 0) {
            return (Vec::new(), QueryTrace::default());
        }
        let metric = self.metric;
        query_span_begin(clock, "vafile", k, filter, opts);
        let mut exec = Executor::new(metric, k, opts, clock);
        exec.trace.pages_processed = self.approx.num_blocks();
        exec.trace.runs = 1;
        clock.phase_begin(Phase::Filter);
        let (lower, delta) = self.filter_phase(clock, q, k, filter);

        // Candidates that the filter could not prune, by increasing lower
        // bound. Filtered-out points carry a NaN lower bound, which fails
        // `lb <= delta` even when δ is +∞, so they never become candidates.
        clock.phase_begin(Phase::Plan);
        let mut cand: Vec<(f64, u32)> = lower
            .iter()
            .enumerate()
            .filter(|&(_, &lb)| lb <= delta)
            .map(|(i, &lb)| (lb, i as u32))
            .collect();
        cand.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        exec.trace.approx_enqueued = cand.len() as u64;
        if let Some(m) = opts.nprobes {
            if (cand.len() as u64) > m {
                exec.skip_candidates(cand.len() as u64 - m);
                cand.truncate(m as usize);
            }
        }

        // Phase 2: refine in lower-bound order until the k-th best exact
        // distance undercuts the next lower bound (or a knob fires).
        clock.phase_begin(Phase::Refine);
        let mut p = vec![0.0f32; self.dim];
        refine_ascending(&mut exec, clock, &cand, |clock, id| {
            self.fetch_exact_into(clock, id as usize, &mut p);
            clock.charge_dist_evals(self.dim, 1);
            Some(metric.distance_key(&p, q))
        });
        clock.phase_begin(Phase::TopK);
        let out = exec.into_results(metric);
        clock.phase_end();
        query_span_end(clock, &out.1);
        out
    }

    /// All points inside the query window (unordered ids): one scan of the
    /// approximation file; a point is refined only when its cell box
    /// straddles the window boundary.
    pub fn window(&self, clock: &mut SimClock, window: &Mbr) -> Vec<u32> {
        assert_eq!(window.dim(), self.dim, "window dimensionality mismatch");
        clock.phase_begin(Phase::Filter);
        let mut wtable = WindowTable::new();
        wtable.build(&self.mbr, self.bits, window, self.n);
        let entry = self.entry_bytes;
        let total_blocks = self.approx.num_blocks();
        let mut out = Vec::new();
        let mut to_verify: Vec<u32> = Vec::new();
        let mut processed = 0usize;
        let mut carry: Vec<u8> = Vec::new();
        let mut block = 0u64;
        // Batch scratch: whole-chunk unpack + SIMD window classification.
        let mut block_cells: Vec<u32> = Vec::new();
        let mut flags: Vec<u8> = Vec::new();
        let mut matches: Vec<CellMatch> = Vec::new();
        while block < total_blocks && processed < self.n {
            let nb = SCAN_CHUNK_BLOCKS.min(total_blocks - block);
            let chunk = self
                .approx
                .read_to_vec(clock, block, nb)
                .expect("read approximation file");
            carry.extend_from_slice(&chunk);
            let avail = (carry.len() / entry).min(self.n - processed);
            if avail > 0 {
                block_cells.clear();
                block_cells.resize(avail * self.dim, 0);
                iq_quantize::simd::unpack_block(
                    &carry[..avail * entry],
                    entry,
                    0,
                    self.bits,
                    self.dim,
                    &mut block_cells,
                );
                wtable.classify_batch(&block_cells, &mut flags, &mut matches);
                for (j, &m) in matches.iter().enumerate() {
                    match m {
                        CellMatch::Inside => out.push((processed + j) as u32),
                        CellMatch::Partial => to_verify.push((processed + j) as u32),
                        CellMatch::Disjoint => {}
                    }
                }
                carry.drain(..avail * entry);
                processed += avail;
            }
            block += nb;
        }
        clock.charge_dist_evals(self.dim, self.n as u64);
        clock.phase_begin(Phase::Refine);
        let mut p = vec![0.0f32; self.dim];
        for id in to_verify {
            self.fetch_exact_into(clock, id as usize, &mut p);
            clock.charge_dist_evals(self.dim, 1);
            if window.contains_point(&p) {
                out.push(id);
            }
        }
        clock.phase_end();
        out
    }

    /// All points within `radius` of `q` (unordered ids). Points whose cell
    /// box lies entirely within the radius are accepted without fetching
    /// their exact coordinates.
    pub fn range(&self, clock: &mut SimClock, q: &[f32], radius: f64) -> Vec<u32> {
        assert_eq!(q.len(), self.dim);
        let key_r = self.metric.distance_to_key(radius);
        // Reuse the filter scan with k = 1 to get lower bounds; re-derive
        // upper bounds from the table for the containment shortcut.
        clock.phase_begin(Phase::Filter);
        let table = self.dist_table(q);
        let (lower, _) = self.filter_phase(clock, q, 1, None);

        let mut out = Vec::new();
        // Second pass over the in-memory bounds: fetch exact only when the
        // cell box straddles the radius. We re-derive the upper bound by
        // re-reading the approximation (already paid for above in I/O; the
        // CPU is charged once more).
        let entry = self.entry_bytes;
        let total_blocks = self.approx.num_blocks();
        let mut processed = 0usize;
        let mut carry: Vec<u8> = Vec::new();
        let mut block = 0u64;
        let mut to_verify: Vec<u32> = Vec::new();
        // Batch scratch: upper bounds for the whole chunk in one SIMD fold.
        let mut block_cells: Vec<u32> = Vec::new();
        let mut lo_keys: Vec<f64> = Vec::new();
        let mut hi_keys: Vec<f64> = Vec::new();
        while block < total_blocks && processed < self.n {
            let nb = SCAN_CHUNK_BLOCKS.min(total_blocks - block);
            let chunk = self
                .approx
                .read_to_vec(clock, block, nb)
                .expect("read approximation file");
            carry.extend_from_slice(&chunk);
            let avail = (carry.len() / entry).min(self.n - processed);
            if avail > 0 {
                block_cells.clear();
                block_cells.resize(avail * self.dim, 0);
                iq_quantize::simd::unpack_block(
                    &carry[..avail * entry],
                    entry,
                    0,
                    self.bits,
                    self.dim,
                    &mut block_cells,
                );
                table.bounds_keys(&block_cells, &mut lo_keys, &mut hi_keys);
                for j in 0..avail {
                    if lower[processed + j] <= key_r {
                        if hi_keys[j] <= key_r {
                            out.push((processed + j) as u32);
                        } else {
                            to_verify.push((processed + j) as u32);
                        }
                    }
                }
                carry.drain(..avail * entry);
                processed += avail;
            }
            block += nb;
        }
        clock.charge_dist_evals(self.dim, self.n as u64);
        clock.phase_begin(Phase::Refine);
        let mut p = vec![0.0f32; self.dim];
        for id in to_verify {
            self.fetch_exact_into(clock, id as usize, &mut p);
            clock.charge_dist_evals(self.dim, 1);
            if self.metric.distance_key(&p, q) <= key_r {
                out.push(id);
            }
        }
        clock.phase_end();
        out
    }
}

impl AccessMethod for VaFile {
    fn name(&self) -> &'static str {
        "vafile"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.n
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn knn_opts_traced(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
        filter: Option<&Filter>,
        opts: &QueryOptions,
    ) -> (Vec<(u32, f64)>, QueryTrace) {
        // True pushdown: the predicate rides the approximation sweep, so no
        // top-up rounds are ever needed.
        self.knn_traced_impl(clock, q, k, filter, opts)
    }

    fn range(&self, clock: &mut SimClock, q: &[f32], radius: f64) -> Vec<u32> {
        VaFile::range(self, clock, q, radius)
    }

    fn window(&self, clock: &mut SimClock, window: &Mbr) -> Vec<u32> {
        VaFile::window(self, clock, window)
    }

    /// The [`predict_cost`] model evaluated against this file's actual
    /// grid: one sequential sweep of the approximation file plus the
    /// expected k-NN refinements as random accesses (uniformity
    /// assumption over the data MBR). `refine_factor` and `nprobes` cap
    /// the refinement term; a `time_budget` clips the total.
    fn cost_prediction(&self, k: usize, opts: &QueryOptions) -> Option<CostPrediction> {
        let disk = DiskModel::default();
        let approx_blocks = self.approx.num_blocks();
        let sides: Vec<f32> = (0..self.dim).map(|i| self.mbr.extent(i) as f32).collect();
        let params = RefineParams::uniform(self.metric, self.dim, self.n);
        let mut refine_pages =
            iq_cost::expected_refinements_knn(&params, &sides, self.n, self.bits, k.max(1));
        if opts.refine_factor >= 2 {
            refine_pages = refine_pages.min(k.max(1) as f64 * f64::from(opts.refine_factor));
        }
        if let Some(m) = opts.nprobes {
            refine_pages = refine_pages.min(m as f64);
        }
        let pages = approx_blocks as f64;
        let mut io_seconds =
            disk.scan_cost(approx_blocks) + refine_pages * (disk.t_seek + disk.t_xfer);
        if let Some(b) = opts.time_budget {
            io_seconds = io_seconds.min(b);
        }
        Some(CostPrediction {
            pages,
            io_seconds,
            filter_pages: pages,
            refine_pages,
        })
    }
}

// Queries take `&self`; a VA-file shared across threads must stay usable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<VaFile>();
};

#[cfg(test)]
mod model_tests {
    use super::*;
    use iq_storage::CpuModel;

    #[test]
    fn predicted_cost_is_u_shaped() {
        // Too few bits -> refinement storm; too many -> bigger scan. The
        // minimum sits strictly inside the sweep range for a typical
        // configuration.
        let disk = DiskModel::default();
        let cpu = CpuModel::default();
        let sides = vec![1.0f32; 16];
        let costs: Vec<f64> = (1..=16)
            .map(|b| predict_cost(&disk, &cpu, 16, 100_000, 16.0, &sides, b))
            .collect();
        let argmin = costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .expect("non-empty")
            .0
            + 1;
        assert!(
            costs[0] > costs[argmin - 1],
            "1 bit must be worse than the optimum"
        );
        assert!(
            costs[15] > costs[argmin - 1],
            "16 bits must be worse than the optimum"
        );
        assert!(
            (2..=10).contains(&argmin),
            "optimum at {argmin} bits: {costs:?}"
        );
    }

    #[test]
    fn auto_bits_close_to_swept_best() {
        use iq_storage::{MemDevice, SimClock};
        let ds = iq_data_like(40_000, 12);
        let disk = DiskModel::default();
        let cpu = CpuModel::default();
        let auto = auto_bits(&disk, &cpu, &ds, 12.0);
        // Measure the true best over the paper's sweep.
        let mut best = (u32::MAX, f64::INFINITY);
        let queries: Vec<Vec<f32>> = (0..5).map(|i| vec![0.1 + 0.17 * i as f32; 12]).collect();
        for bits in 2..=8 {
            let mut clock = SimClock::new(disk, cpu);
            let va = VaFile::build(
                &ds,
                Metric::Euclidean,
                bits,
                Box::new(MemDevice::new(disk.block_size)),
                Box::new(MemDevice::new(disk.block_size)),
                &mut clock,
            );
            let mut total = 0.0;
            for q in &queries {
                clock.reset();
                va.nearest(&mut clock, q);
                total += clock.total_time();
            }
            if total < best.1 {
                best = (bits, total);
            }
        }
        assert!(
            (i64::from(auto) - i64::from(best.0)).unsigned_abs() <= 2,
            "model chose {auto}, swept best {}",
            best.0
        );
    }

    fn iq_data_like(n: usize, dim: usize) -> Dataset {
        // Deterministic pseudo-uniform points without a rand dependency in
        // this test helper.
        let mut ds = Dataset::with_capacity(dim, n);
        let mut x = 0.5f64;
        let mut row = vec![0.0f32; dim];
        for _ in 0..n {
            for r in &mut row {
                x = (x * 997.0 + 0.123_456_7).fract();
                *r = x as f32;
            }
            ds.push(&row);
        }
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_storage::{CpuModel, DiskModel, MemDevice};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn make(n: usize, dim: usize, bits: u32, seed: u64) -> (Dataset, VaFile, SimClock) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        let mut row = vec![0.0f32; dim];
        for _ in 0..n {
            row.fill_with(|| rng.gen());
            ds.push(&row);
        }
        let mut clock = SimClock::new(DiskModel::default(), CpuModel::free());
        let va = VaFile::build(
            &ds,
            Metric::Euclidean,
            bits,
            Box::new(MemDevice::new(8192)),
            Box::new(MemDevice::new(8192)),
            &mut clock,
        );
        clock.reset();
        (ds, va, clock)
    }

    fn brute_knn(ds: &Dataset, q: &[f32], k: usize) -> Vec<(u32, f64)> {
        let m = Metric::Euclidean;
        let mut all: Vec<(u32, f64)> = (0..ds.len())
            .map(|i| (i as u32, m.distance(ds.point(i), q)))
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
        all.truncate(k);
        all
    }

    #[test]
    fn nearest_matches_brute_force() {
        for bits in [2u32, 4, 8] {
            let (ds, va, mut clock) = make(600, 6, bits, 1);
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..15 {
                let q: Vec<f32> = (0..6).map(|_| rng.gen()).collect();
                let (id, d) = va.nearest(&mut clock, &q).expect("non-empty");
                let expect = brute_knn(&ds, &q, 1)[0];
                assert!((d - expect.1).abs() < 1e-9, "bits={bits}");
                assert_eq!(
                    Metric::Euclidean.distance(ds.point(id as usize), &q),
                    d,
                    "bits={bits}"
                );
            }
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let (ds, va, mut clock) = make(400, 5, 4, 2);
        let q = vec![0.3f32; 5];
        let got = va.knn(&mut clock, &q, 7);
        let expect = brute_knn(&ds, &q, 7);
        assert_eq!(got.len(), 7);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g.1 - e.1).abs() < 1e-9);
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let (ds, va, mut clock) = make(500, 4, 5, 3);
        let q = vec![0.5f32; 4];
        let r = 0.4;
        let mut got = va.range(&mut clock, &q, r);
        got.sort_unstable();
        let mut expect: Vec<u32> = (0..ds.len() as u32)
            .filter(|&i| Metric::Euclidean.distance(ds.point(i as usize), &q) <= r)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn more_bits_fewer_refinements() {
        // With a finer grid the filter prunes better, so phase 2 touches
        // fewer exact points -> fewer seeks.
        let (_, va2, mut c2) = make(3_000, 8, 2, 4);
        let (_, va8, mut c8) = make(3_000, 8, 8, 4);
        let q = vec![0.42f32; 8];
        va2.nearest(&mut c2, &q);
        va8.nearest(&mut c8, &q);
        assert!(
            c8.stats().seeks <= c2.stats().seeks,
            "8-bit: {} seeks, 2-bit: {} seeks",
            c8.stats().seeks,
            c2.stats().seeks
        );
    }

    #[test]
    fn approx_file_smaller_than_exact() {
        let (_, va, _) = make(2_000, 8, 4, 5);
        assert!(va.approx_blocks() < va.exact.num_blocks());
        // 4 bits vs 32 bits: the approximation file is ~8x smaller.
        assert!(va.exact.num_blocks() / va.approx_blocks() >= 7);
    }

    #[test]
    fn filter_phase_scans_sequentially() {
        let (_, va, mut clock) = make(5_000, 8, 4, 6);
        va.nearest(&mut clock, &[0.5f32; 8]);
        // The approx scan is one seek; phase 2 adds a few random accesses.
        let stats = clock.stats();
        assert!(stats.seeks >= 1);
        assert!(stats.blocks_read >= va.approx_blocks());
    }

    #[test]
    fn maximum_metric_works() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut ds = Dataset::new(4);
        let mut row = [0.0f32; 4];
        for _ in 0..300 {
            row.fill_with(|| rng.gen());
            ds.push(&row);
        }
        let mut clock = SimClock::default();
        let va = VaFile::build(
            &ds,
            Metric::Maximum,
            4,
            Box::new(MemDevice::new(4096)),
            Box::new(MemDevice::new(4096)),
            &mut clock,
        );
        let q = [0.7f32, 0.1, 0.5, 0.9];
        let (id, d) = va.nearest(&mut clock, &q).expect("non-empty");
        let expect = (0..ds.len())
            .map(|i| (i as u32, Metric::Maximum.distance(ds.point(i), &q)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
            .expect("non-empty");
        assert_eq!(id, expect.0);
        assert!((d - expect.1).abs() < 1e-9);
    }
}
