//! Property-based tests of the VA-file's guarantees: exact results at
//! every resolution, correct filter bounds, sane cost structure.

use iq_geometry::{Dataset, Metric};
use iq_storage::{MemDevice, SimClock};
use iq_vafile::VaFile;
use proptest::prelude::*;

fn dataset_strategy(dim: usize, max_n: usize) -> impl Strategy<Value = Dataset> {
    proptest::collection::vec(0.0f32..1.0, dim * 20..dim * max_n).prop_map(move |mut flat| {
        flat.truncate(flat.len() / dim * dim);
        Dataset::from_flat(dim, flat)
    })
}

fn build(ds: &Dataset, bits: u32, metric: Metric) -> (VaFile, SimClock) {
    let mut clock = SimClock::default();
    let va = VaFile::build(
        ds,
        metric,
        bits,
        Box::new(MemDevice::new(512)),
        Box::new(MemDevice::new(512)),
        &mut clock,
    );
    (va, clock)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// NN is exact at every grid resolution and for both main metrics.
    #[test]
    fn prop_nn_exact(
        ds in dataset_strategy(4, 100),
        q in proptest::collection::vec(0.0f32..1.0, 4),
        bits in 1u32..9,
        use_max in proptest::bool::ANY,
    ) {
        let metric = if use_max { Metric::Maximum } else { Metric::Euclidean };
        let (va, mut clock) = build(&ds, bits, metric);
        let got = va.nearest(&mut clock, &q).expect("non-empty").1;
        let expect = ds.iter().map(|p| metric.distance(p, &q)).fold(f64::INFINITY, f64::min);
        prop_assert!((got - expect).abs() < 1e-5, "bits={bits}: {got} vs {expect}");
    }

    /// k-NN distances form the true sorted prefix.
    #[test]
    fn prop_knn_exact(
        ds in dataset_strategy(3, 80),
        q in proptest::collection::vec(0.0f32..1.0, 3),
        k in 1usize..15,
        bits in 2u32..7,
    ) {
        let (va, mut clock) = build(&ds, bits, Metric::Euclidean);
        let got = va.knn(&mut clock, &q, k);
        prop_assert_eq!(got.len(), k.min(ds.len()));
        let mut truth: Vec<f64> =
            ds.iter().map(|p| Metric::Euclidean.distance(p, &q)).collect();
        truth.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        for (g, t) in got.iter().zip(&truth) {
            prop_assert!((g.1 - t).abs() < 1e-5);
        }
    }

    /// Range queries return exactly the true id set.
    #[test]
    fn prop_range_exact(
        ds in dataset_strategy(3, 80),
        q in proptest::collection::vec(0.0f32..1.0, 3),
        r in 0.05f64..0.7,
        bits in 2u32..7,
    ) {
        let (va, mut clock) = build(&ds, bits, Metric::Euclidean);
        let mut got = va.range(&mut clock, &q, r);
        got.sort_unstable();
        let mut expect: Vec<u32> = (0..ds.len() as u32)
            .filter(|&i| Metric::Euclidean.distance(ds.point(i as usize), &q) <= r)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// The filter phase always scans the whole approximation file — the
    /// VA-file's defining cost signature.
    #[test]
    fn prop_filter_scans_approx_file(
        ds in dataset_strategy(6, 120),
        q in proptest::collection::vec(0.0f32..1.0, 6),
    ) {
        let (va, mut clock) = build(&ds, 4, Metric::Euclidean);
        clock.reset();
        va.nearest(&mut clock, &q);
        prop_assert!(clock.stats().blocks_read >= va.approx_blocks());
    }
}
