//! Property-based tests of the X-tree: exact results under arbitrary data,
//! structural invariants of the directory under bulk load and dynamic
//! inserts.

use iq_geometry::{Dataset, Metric};
use iq_storage::{MemDevice, SimClock};
use iq_xtree::{XTree, XTreeOptions};
use proptest::prelude::*;

fn dataset_strategy(dim: usize, max_n: usize) -> impl Strategy<Value = Dataset> {
    proptest::collection::vec(0.0f32..1.0, dim * 20..dim * max_n).prop_map(move |mut flat| {
        flat.truncate(flat.len() / dim * dim);
        Dataset::from_flat(dim, flat)
    })
}

fn build(ds: &Dataset, metric: Metric) -> (XTree, SimClock) {
    let mut clock = SimClock::default();
    let tree = XTree::build(
        ds,
        metric,
        XTreeOptions::default(),
        Box::new(MemDevice::new(512)),
        Box::new(MemDevice::new(512)),
        &mut clock,
    );
    (tree, clock)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// NN is exact for both main metrics.
    #[test]
    fn prop_nn_exact(
        ds in dataset_strategy(4, 120),
        q in proptest::collection::vec(0.0f32..1.0, 4),
        use_max in proptest::bool::ANY,
    ) {
        let metric = if use_max { Metric::Maximum } else { Metric::Euclidean };
        let (tree, mut clock) = build(&ds, metric);
        let got = tree.nearest(&mut clock, &q).expect("non-empty").1;
        let expect = ds.iter().map(|p| metric.distance(p, &q)).fold(f64::INFINITY, f64::min);
        prop_assert!((got - expect).abs() < 1e-5);
    }

    /// Range queries return exactly the true id set.
    #[test]
    fn prop_range_exact(
        ds in dataset_strategy(3, 100),
        q in proptest::collection::vec(0.0f32..1.0, 3),
        r in 0.05f64..0.7,
    ) {
        let (tree, mut clock) = build(&ds, Metric::Euclidean);
        let mut got = tree.range(&mut clock, &q, r);
        got.sort_unstable();
        let mut expect: Vec<u32> = (0..ds.len() as u32)
            .filter(|&i| Metric::Euclidean.distance(ds.point(i as usize), &q) <= r)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Dynamic inserts keep the tree exact, whatever the order.
    #[test]
    fn prop_inserts_stay_exact(
        base in dataset_strategy(3, 60),
        extra in proptest::collection::vec(
            proptest::collection::vec(0.0f32..1.0, 3), 1..60),
        q in proptest::collection::vec(0.0f32..1.0, 3),
    ) {
        let (mut tree, mut clock) = build(&base, Metric::Euclidean);
        let n0 = base.len();
        for (i, p) in extra.iter().enumerate() {
            tree.insert(&mut clock, (n0 + i) as u32, p);
        }
        prop_assert_eq!(tree.len(), n0 + extra.len());
        let got = tree.nearest(&mut clock, &q).expect("non-empty").1;
        let expect = base
            .iter()
            .map(|p| Metric::Euclidean.distance(p, &q))
            .chain(extra.iter().map(|p| Metric::Euclidean.distance(p, &q)))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((got - expect).abs() < 1e-5);
    }

    /// Every point remains reachable after inserts (zero-radius range hits
    /// its own id).
    #[test]
    fn prop_points_reachable_after_inserts(
        base in dataset_strategy(3, 40),
        extra in proptest::collection::vec(
            proptest::collection::vec(0.0f32..1.0, 3), 1..40),
    ) {
        let (mut tree, mut clock) = build(&base, Metric::Euclidean);
        let n0 = base.len();
        for (i, p) in extra.iter().enumerate() {
            tree.insert(&mut clock, (n0 + i) as u32, p);
        }
        for (i, p) in extra.iter().enumerate() {
            let hits = tree.range(&mut clock, p, 1e-9);
            prop_assert!(hits.contains(&((n0 + i) as u32)), "inserted point {i} lost");
        }
    }
}
