//! X-tree baseline (Berchtold/Keim/Kriegel, VLDB '96).
//!
//! The hierarchical comparator of the IQ-tree evaluation: an R-tree-like
//! index whose directory avoids overlap by (a) an overlap-minimal split and
//! (b) *supernodes* — directory nodes enlarged to a multiple of the block
//! size when no good split exists. Nearest-neighbor search is the
//! Hjaltason/Samet best-first descent with one random I/O per visited node
//! or data page — exactly the access pattern whose degeneration in high
//! dimensions the IQ-tree is designed to avoid.
//!
//! The tree is bulk-loaded with the same top-down median partitioning the
//! IQ-tree uses (the paper's reference \[4\]), so the comparison isolates the
//! indexes, not their loaders. Dynamic inserts with the X-tree split /
//! supernode machinery are supported as well.

pub mod node;
pub mod split;

use iq_engine::{
    drive, query_span_begin, query_span_end, AccessMethod, CandidateHeap, Executor, Filter, OrdKey,
    QueryOptions, QueryTrace,
};
use iq_geometry::{bulk_partition, Dataset, Mbr, Metric};
use iq_obs::{CostPrediction, Phase};
use iq_storage::{BlockDevice, SimClock};
use node::{DataPage, DirEntry, Node};
use split::{group_mbr, split_entries, SplitDecision};
use std::cmp::Reverse;

/// Tuning options.
#[derive(Clone, Copy, Debug)]
pub struct XTreeOptions {
    /// Maximum size of a supernode, in blocks.
    pub max_supernode_blocks: u32,
}

impl Default for XTreeOptions {
    fn default() -> Self {
        Self {
            max_supernode_blocks: 8,
        }
    }
}

/// Location of a node in the directory file.
#[derive(Clone, Copy, Debug)]
struct NodeAddr {
    start: u64,
    nblocks: u32,
}

/// The X-tree.
///
/// # Example
///
/// ```
/// use iq_geometry::{Dataset, Metric};
/// use iq_storage::{MemDevice, SimClock};
/// use iq_xtree::{XTree, XTreeOptions};
///
/// let ds = Dataset::from_flat(2, (0..100).map(|i| i as f32 / 100.0).collect());
/// let mut clock = SimClock::default();
/// let tree = XTree::build(
///     &ds,
///     Metric::Euclidean,
///     XTreeOptions::default(),
///     Box::new(MemDevice::new(512)),
///     Box::new(MemDevice::new(512)),
///     &mut clock,
/// );
/// let hits = tree.range(&mut clock, &[0.5, 0.5], 0.05);
/// assert!(!hits.is_empty());
/// ```
pub struct XTree {
    dim: usize,
    metric: Metric,
    opts: XTreeOptions,
    dir: Box<dyn BlockDevice>,
    data: Box<dyn BlockDevice>,
    nodes: Vec<NodeAddr>,
    /// Data page id -> block in the data file (pages are single blocks).
    pages: Vec<u64>,
    root: u32,
    height: usize,
    n: usize,
    supernodes: usize,
}

/// Result of a recursive delete below one directory entry.
enum DeleteOutcome {
    /// The id was not found in this subtree.
    NotFound,
    /// Removed; the subtree's tightened MBR.
    Updated(Mbr),
    /// Removed and the subtree is now empty: unlink its entry.
    Emptied,
}

/// Priority-queue target during best-first search.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Target {
    Node(u32),
    Page(u32),
}

impl XTree {
    /// Bulk-loads an X-tree over `ds`.
    ///
    /// # Panics
    /// Panics if `ds` is empty.
    pub fn build(
        ds: &Dataset,
        metric: Metric,
        opts: XTreeOptions,
        mut dir: Box<dyn BlockDevice>,
        mut data: Box<dyn BlockDevice>,
        clock: &mut SimClock,
    ) -> Self {
        assert!(!ds.is_empty(), "cannot build an X-tree over an empty set");
        let dim = ds.dim();
        let bs = data.block_size();
        let data_cap = DataPage::capacity(dim, bs);
        let parts = bulk_partition(ds, data_cap);

        // Write data pages in partition order.
        let mut pages = Vec::with_capacity(parts.len());
        let mut level: Vec<DirEntry> = Vec::with_capacity(parts.len());
        for p in &parts {
            let dp = DataPage {
                ids: p.ids.clone(),
                coords: p
                    .ids
                    .iter()
                    .flat_map(|&i| ds.point(i as usize).iter().copied())
                    .collect(),
            };
            let start = data
                .append(clock, &dp.encode(dim, bs))
                .expect("append data page");
            let id = pages.len() as u32;
            pages.push(start);
            level.push(DirEntry {
                child: id,
                mbr: p.mbr.clone(),
            });
        }

        // Build the directory bottom-up over consecutive runs.
        let dir_bs = dir.block_size();
        let node_cap = Node::capacity(dim, dir_bs, 1);
        let mut nodes: Vec<NodeAddr> = Vec::new();
        let mut leaf_children = true;
        let mut height = 1usize;
        loop {
            let mut next: Vec<DirEntry> = Vec::new();
            for chunk in level.chunks(node_cap) {
                let node = Node {
                    leaf_children,
                    nblocks: 1,
                    entries: chunk.to_vec(),
                };
                let start = dir
                    .append(clock, &node.encode(dim, dir_bs))
                    .expect("append directory node");
                let id = nodes.len() as u32;
                nodes.push(NodeAddr { start, nblocks: 1 });
                next.push(DirEntry {
                    child: id,
                    mbr: node.mbr(),
                });
            }
            height += 1;
            if next.len() == 1 {
                let root = nodes.len() as u32 - 1;
                return Self {
                    dim,
                    metric,
                    opts,
                    dir,
                    data,
                    nodes,
                    pages,
                    root,
                    height,
                    n: ds.len(),
                    supernodes: 0,
                };
            }
            level = next;
            leaf_children = false;
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the tree is empty (never true: `build` rejects empty sets).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of data pages.
    pub fn num_data_pages(&self) -> usize {
        self.pages.len()
    }

    /// Tree height including the data level.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of supernodes created by dynamic inserts.
    pub fn num_supernodes(&self) -> usize {
        self.supernodes
    }

    /// The distance metric queries are answered under.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    fn read_node(&self, clock: &mut SimClock, id: u32) -> Node {
        let addr = self.nodes[id as usize];
        let buf = self
            .dir
            .read_to_vec(clock, addr.start, u64::from(addr.nblocks))
            .expect("read directory node");
        Node::decode(&buf, self.dim)
    }

    fn write_node(&mut self, clock: &mut SimClock, id: u32, node: &Node) {
        let dir_bs = self.dir.block_size();
        let needed = node.blocks_needed(self.dim, dir_bs);
        let addr = self.nodes[id as usize];
        let mut node = node.clone();
        node.nblocks = needed.max(node.nblocks);
        let bytes = node.encode(self.dim, dir_bs);
        if node.nblocks == addr.nblocks {
            self.dir
                .write_blocks(clock, addr.start, &bytes)
                .expect("write directory node");
        } else {
            let start = self
                .dir
                .append(clock, &bytes)
                .expect("append directory node");
            self.nodes[id as usize] = NodeAddr {
                start,
                nblocks: node.nblocks,
            };
        }
    }

    fn read_page(&self, clock: &mut SimClock, id: u32) -> DataPage {
        let start = self.pages[id as usize];
        let buf = self
            .data
            .read_to_vec(clock, start, 1)
            .expect("read data page");
        DataPage::decode(&buf, self.dim)
    }

    fn write_page(&mut self, clock: &mut SimClock, id: u32, page: &DataPage) {
        let bs = self.data.block_size();
        let bytes = page.encode(self.dim, bs);
        let start = self.pages[id as usize];
        self.data
            .write_blocks(clock, start, &bytes)
            .expect("write data page");
    }

    fn append_page(&mut self, clock: &mut SimClock, page: &DataPage) -> u32 {
        let bs = self.data.block_size();
        let start = self
            .data
            .append(clock, &page.encode(self.dim, bs))
            .expect("append data page");
        self.pages.push(start);
        self.pages.len() as u32 - 1
    }

    fn append_node(&mut self, clock: &mut SimClock, node: &Node) -> u32 {
        let dir_bs = self.dir.block_size();
        let start = self
            .dir
            .append(clock, &node.encode(self.dim, dir_bs))
            .expect("append directory node");
        self.nodes.push(NodeAddr {
            start,
            nblocks: node.nblocks,
        });
        self.nodes.len() as u32 - 1
    }

    /// Exact nearest neighbor of `q` via best-first (Hjaltason/Samet)
    /// search.
    pub fn nearest(&self, clock: &mut SimClock, q: &[f32]) -> Option<(u32, f64)> {
        self.knn(clock, q, 1).pop()
    }

    /// The `k` exact nearest neighbors of `q`, ordered by increasing
    /// distance.
    pub fn knn(&self, clock: &mut SimClock, q: &[f32], k: usize) -> Vec<(u32, f64)> {
        self.knn_traced(clock, q, k).0
    }

    /// Like [`XTree::knn`], additionally reporting the best-first
    /// descent's work: directory nodes visited count as
    /// [`QueryTrace::runs`] (one random I/O each), data pages decoded as
    /// `pages_processed`.
    pub fn knn_traced(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
    ) -> (Vec<(u32, f64)>, QueryTrace) {
        self.knn_traced_impl(clock, q, k, None, &QueryOptions::EXACT)
    }

    /// The best-first descent as a producer into the shared bound-driven
    /// [`Executor`]: directory nodes and data pages stream through
    /// [`drive`] in ascending MINDIST order; pruning, ε-termination and
    /// the budgets live in the executor. A pushed-down `filter` drops
    /// non-matching points at page-decode time, so the pruning bound
    /// derives only from matching points and stays exact. `nprobes`
    /// counts decoded data pages — once spent, no further page read can
    /// improve the answer, so the descent stops outright.
    fn knn_traced_impl(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
        filter: Option<&Filter>,
        opts: &QueryOptions,
    ) -> (Vec<(u32, f64)>, QueryTrace) {
        assert_eq!(q.len(), self.dim);
        if k == 0 || filter.is_some_and(|f| f.matching() == 0) {
            return (Vec::new(), QueryTrace::default());
        }
        let metric = self.metric;
        query_span_begin(clock, "xtree", k, filter, opts);
        let mut exec = Executor::new(metric, k, opts, clock);
        let mut heap: CandidateHeap<Target> = CandidateHeap::new();
        heap.push(Reverse((OrdKey(0.0), Target::Node(self.root))));
        drive(
            &mut exec,
            clock,
            &mut heap,
            |exec, clock, _mindist, target, heap| match target {
                Target::Node(id) => {
                    clock.phase_begin(Phase::Directory);
                    let node = self.read_node(clock, id);
                    clock.charge_dist_evals(self.dim, node.entries.len() as u64);
                    exec.trace.runs += 1;
                    for e in &node.entries {
                        let d = metric.mindist_key(q, &e.mbr);
                        if !exec.is_pruned(d) {
                            let t = if node.leaf_children {
                                Target::Page(e.child)
                            } else {
                                Target::Node(e.child)
                            };
                            exec.trace.approx_enqueued += 1;
                            heap.push(Reverse((OrdKey(d), t)));
                        }
                    }
                }
                Target::Page(id) => {
                    if !exec.try_probe() {
                        exec.stop();
                        return;
                    }
                    clock.phase_begin(Phase::Filter);
                    let page = self.read_page(clock, id);
                    clock.charge_dist_evals(self.dim, page.len() as u64);
                    exec.trace.runs += 1;
                    exec.trace.pages_processed += 1;
                    for (i, &pid) in page.ids.iter().enumerate() {
                        if filter.is_none_or(|f| f.matches(pid)) {
                            exec.offer(metric.distance_key(page.point(i, self.dim), q), pid);
                        }
                    }
                }
            },
        );
        clock.phase_begin(Phase::TopK);
        let out = exec.into_results(metric);
        clock.phase_end();
        query_span_end(clock, &out.1);
        out
    }

    /// All points within `radius` of `q` (unordered ids).
    ///
    /// The directory descent determines the full set of candidate data
    /// pages up front (the paper's Section 2 observation for range
    /// queries), which are then loaded with the optimal batch-fetch
    /// schedule instead of one random access each.
    pub fn range(&self, clock: &mut SimClock, q: &[f32], radius: f64) -> Vec<u32> {
        assert_eq!(q.len(), self.dim);
        let key_r = self.metric.distance_to_key(radius);
        let metric = self.metric;
        let pages = self.collect_pages(clock, |mbr| metric.mindist_key(q, mbr) <= key_r);
        let mut out = Vec::new();
        self.visit_pages_batched(clock, &pages, |dim, page| {
            for (i, &pid) in page.ids.iter().enumerate() {
                if metric.distance_key(page.point(i, dim), q) <= key_r {
                    out.push(pid);
                }
            }
        });
        out
    }

    /// Descends the directory, returning the data pages whose MBR satisfies
    /// `select` (directory nodes are read with random I/O, as on any
    /// hierarchical index).
    fn collect_pages(
        &self,
        clock: &mut SimClock,
        select: impl Fn(&iq_geometry::Mbr) -> bool,
    ) -> Vec<u32> {
        clock.phase_begin(Phase::Directory);
        let mut pages = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.read_node(clock, id);
            clock.charge_dist_evals(self.dim, node.entries.len() as u64);
            for e in &node.entries {
                if select(&e.mbr) {
                    if node.leaf_children {
                        pages.push(e.child);
                    } else {
                        stack.push(e.child);
                    }
                }
            }
        }
        pages
    }

    /// Loads the given data pages with one optimal batch-fetch plan and
    /// feeds each decoded page to `visit`. A failed sweep (or a page the
    /// plan somehow misses) degrades to one direct read per page; a page
    /// that stays unreadable is skipped — the corruption is visible in the
    /// clock's I/O statistics, and the query completes on what is left.
    fn visit_pages_batched(
        &self,
        clock: &mut SimClock,
        pages: &[u32],
        mut visit: impl FnMut(usize, &DataPage),
    ) {
        clock.phase_begin(Phase::Filter);
        let mut positions: Vec<u64> = pages.iter().map(|&id| self.pages[id as usize]).collect();
        positions.sort_unstable();
        positions.dedup();
        let fetched = iq_storage::fetch::fetch_blocks(self.data.as_ref(), clock, &positions).ok();
        let bs = self.data.block_size();
        for &id in pages {
            let pos = self.pages[id as usize];
            let planned: Option<Vec<u8>> = fetched.as_ref().and_then(|fetched| {
                let (run, buf) = fetched.iter().find(|(run, _)| run.contains(pos))?;
                let off = ((pos - run.start) as usize) * bs;
                Some(buf[off..off + bs].to_vec())
            });
            let bytes = match planned {
                Some(b) => b,
                None => match self.data.read_to_vec(clock, pos, 1) {
                    Ok(b) => b,
                    Err(_) => continue,
                },
            };
            let page = DataPage::decode(&bytes, self.dim);
            clock.charge_dist_evals(self.dim, page.len() as u64);
            visit(self.dim, &page);
        }
    }

    /// All points inside the query window (unordered ids), with batched
    /// data-page loading like [`XTree::range`].
    pub fn window(&self, clock: &mut SimClock, window: &iq_geometry::Mbr) -> Vec<u32> {
        assert_eq!(window.dim(), self.dim, "window dimensionality mismatch");
        let pages = self.collect_pages(clock, |mbr| mbr.intersects(window));
        let mut out = Vec::new();
        self.visit_pages_batched(clock, &pages, |dim, page| {
            for (i, &pid) in page.ids.iter().enumerate() {
                if window.contains_point(page.point(i, dim)) {
                    out.push(pid);
                }
            }
        });
        out
    }

    /// Deletes the point `id` located at `p`. Returns `true` if found.
    ///
    /// Standard R-tree deletion restricted to what the evaluation needs:
    /// the point is removed from its data page, emptied pages (and then
    /// emptied directory nodes) are unlinked, and ancestor MBRs are
    /// tightened. Underflowing (but non-empty) pages are tolerated rather
    /// than condensed by reinsertion.
    pub fn delete(&mut self, clock: &mut SimClock, id: u32, p: &[f32]) -> bool {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        match self.delete_rec(clock, self.root, id, p) {
            DeleteOutcome::NotFound => false,
            DeleteOutcome::Updated(_) => true,
            DeleteOutcome::Emptied => {
                // The whole tree is empty: store an empty leaf-level root.
                let empty = Node {
                    leaf_children: true,
                    nblocks: 1,
                    entries: Vec::new(),
                };
                self.write_node(clock, self.root, &empty);
                true
            }
        }
    }

    fn delete_rec(
        &mut self,
        clock: &mut SimClock,
        node_id: u32,
        id: u32,
        p: &[f32],
    ) -> DeleteOutcome {
        let mut node = self.read_node(clock, node_id);
        clock.charge_dist_evals(self.dim, node.entries.len() as u64);
        for idx in 0..node.entries.len() {
            if !node.entries[idx].mbr.contains_point(p) {
                continue;
            }
            let child = node.entries[idx].child;
            let outcome = if node.leaf_children {
                let mut page = self.read_page(clock, child);
                if let Some(pos) = page.ids.iter().position(|&x| x == id) {
                    page.ids.remove(pos);
                    page.coords.drain(pos * self.dim..(pos + 1) * self.dim);
                    self.n -= 1;
                    if page.is_empty() {
                        DeleteOutcome::Emptied
                    } else {
                        self.write_page(clock, child, &page);
                        DeleteOutcome::Updated(page.mbr(self.dim))
                    }
                } else {
                    DeleteOutcome::NotFound
                }
            } else {
                self.delete_rec(clock, child, id, p)
            };
            match outcome {
                DeleteOutcome::NotFound => continue,
                DeleteOutcome::Updated(mbr) => {
                    node.entries[idx].mbr = mbr;
                    self.write_node(clock, node_id, &node);
                    return DeleteOutcome::Updated(node.mbr());
                }
                DeleteOutcome::Emptied => {
                    node.entries.remove(idx);
                    if node.entries.is_empty() {
                        return DeleteOutcome::Emptied;
                    }
                    self.write_node(clock, node_id, &node);
                    return DeleteOutcome::Updated(node.mbr());
                }
            }
        }
        DeleteOutcome::NotFound
    }

    /// Inserts a point with the given id.
    ///
    /// Descends by least volume enlargement; a data-page overflow splits the
    /// page at the median of its longest dimension; directory overflows use
    /// the X-tree split-or-supernode decision.
    pub fn insert(&mut self, clock: &mut SimClock, id: u32, p: &[f32]) {
        assert_eq!(p.len(), self.dim);
        // An emptied tree (all points deleted): seed a fresh first page.
        {
            let root = self.read_node(clock, self.root);
            if root.entries.is_empty() {
                let page = DataPage {
                    ids: vec![id],
                    coords: p.to_vec(),
                };
                let page_id = self.append_page(clock, &page);
                let node = Node {
                    leaf_children: true,
                    nblocks: 1,
                    entries: vec![DirEntry {
                        child: page_id,
                        mbr: page.mbr(self.dim),
                    }],
                };
                self.write_node(clock, self.root, &node);
                self.n += 1;
                return;
            }
        }
        // Descend, recording the path (node id, chosen entry index).
        let mut path: Vec<(u32, usize)> = Vec::with_capacity(self.height);
        let mut node_id = self.root;
        let page_id = loop {
            let node = self.read_node(clock, node_id);
            let chosen = node
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let ea = a.mbr.enlargement_for_point(p);
                    let eb = b.mbr.enlargement_for_point(p);
                    ea.partial_cmp(&eb)
                        .expect("no NaN")
                        .then_with(|| a.mbr.volume().partial_cmp(&b.mbr.volume()).expect("no NaN"))
                })
                .map(|(i, _)| i)
                .expect("nodes are never empty");
            path.push((node_id, chosen));
            let e = &node.entries[chosen];
            if node.leaf_children {
                break e.child;
            }
            node_id = e.child;
        };

        // Insert into the data page.
        let bs = self.data.block_size();
        let cap = DataPage::capacity(self.dim, bs);
        let mut page = self.read_page(clock, page_id);
        page.ids.push(id);
        page.coords.extend_from_slice(p);
        self.n += 1;

        // Pending replacement for the parent entry, plus an optional new
        // sibling entry to add at the leaf directory level.
        let (updated_entry, mut pending_new): (DirEntry, Option<DirEntry>) = if page.len() <= cap {
            self.write_page(clock, page_id, &page);
            (
                DirEntry {
                    child: page_id,
                    mbr: page.mbr(self.dim),
                },
                None,
            )
        } else {
            // Median split along the page MBR's longest dimension.
            let mbr = page.mbr(self.dim);
            let axis = mbr.longest_dim();
            let mut order: Vec<usize> = (0..page.len()).collect();
            order.sort_by(|&a, &b| {
                page.point(a, self.dim)[axis]
                    .partial_cmp(&page.point(b, self.dim)[axis])
                    .expect("no NaN")
            });
            let mid = order.len() / 2;
            let take = |idxs: &[usize]| -> DataPage {
                DataPage {
                    ids: idxs.iter().map(|&i| page.ids[i]).collect(),
                    coords: idxs
                        .iter()
                        .flat_map(|&i| page.point(i, self.dim).iter().copied())
                        .collect(),
                }
            };
            let left = take(&order[..mid]);
            let right = take(&order[mid..]);
            self.write_page(clock, page_id, &left);
            let right_id = self.append_page(clock, &right);
            (
                DirEntry {
                    child: page_id,
                    mbr: left.mbr(self.dim),
                },
                Some(DirEntry {
                    child: right_id,
                    mbr: right.mbr(self.dim),
                }),
            )
        };

        // Propagate up the path.
        let mut replace = updated_entry;
        for depth in (0..path.len()).rev() {
            let (nid, slot) = path[depth];
            let mut node = self.read_node(clock, nid);
            node.entries[slot] = replace;
            if let Some(new_e) = pending_new.take() {
                node.entries.push(new_e);
            }
            let dir_bs = self.dir.block_size();
            let cap_now = Node::capacity(self.dim, dir_bs, node.nblocks);
            if node.entries.len() <= cap_now {
                self.write_node(clock, nid, &node);
                replace = DirEntry {
                    child: nid,
                    mbr: node.mbr(),
                };
            } else {
                let may_grow = node.nblocks < self.opts.max_supernode_blocks;
                match split_entries(&node.entries, self.dim, may_grow) {
                    SplitDecision::Supernode => {
                        node.nblocks += 1;
                        self.supernodes += 1;
                        self.write_node(clock, nid, &node);
                        replace = DirEntry {
                            child: nid,
                            mbr: node.mbr(),
                        };
                    }
                    SplitDecision::Split(l, r) => {
                        let leaf = node.leaf_children;
                        let mut left = Node {
                            leaf_children: leaf,
                            nblocks: 1,
                            entries: l,
                        };
                        left.nblocks = left.blocks_needed(self.dim, dir_bs);
                        let mut right = Node {
                            leaf_children: leaf,
                            nblocks: 1,
                            entries: r,
                        };
                        right.nblocks = right.blocks_needed(self.dim, dir_bs);
                        // Reuse the id for the left half; the supernode's
                        // extra blocks (if any) are abandoned.
                        self.nodes[nid as usize] = NodeAddr {
                            start: self
                                .dir
                                .append(clock, &left.encode(self.dim, dir_bs))
                                .expect("append directory node"),
                            nblocks: left.nblocks,
                        };
                        let right_id = self.append_node(clock, &right);
                        replace = DirEntry {
                            child: nid,
                            mbr: group_mbr(&left.entries),
                        };
                        pending_new = Some(DirEntry {
                            child: right_id,
                            mbr: group_mbr(&right.entries),
                        });
                    }
                }
            }
        }

        // Root overflow: grow a new root.
        if let Some(new_e) = pending_new {
            // The new root's children are the old root and its split
            // sibling -- always directory nodes.
            let root_node = Node {
                leaf_children: false,
                nblocks: 1,
                entries: vec![replace, new_e],
            };
            let new_root = self.append_node(clock, &root_node);
            self.root = new_root;
            self.height += 1;
        }
    }
}

impl AccessMethod for XTree {
    fn name(&self) -> &'static str {
        "xtree"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.n
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn knn_opts_traced(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
        filter: Option<&Filter>,
        opts: &QueryOptions,
    ) -> (Vec<(u32, f64)>, QueryTrace) {
        // True pushdown into the best-first descent — no top-up rounds.
        self.knn_traced_impl(clock, q, k, filter, opts)
    }

    fn range(&self, clock: &mut SimClock, q: &[f32], radius: f64) -> Vec<u32> {
        XTree::range(self, clock, q, radius)
    }

    fn window(&self, clock: &mut SimClock, window: &Mbr) -> Vec<u32> {
        XTree::window(self, clock, window)
    }

    /// Sphere-volume estimate of the leaves a best-first k-NN descent
    /// touches (the same eqs 16–18 the IQ-tree uses, under a uniformity
    /// assumption), plus roughly one directory node per level per
    /// accessed leaf path. The X-tree reads exact points from its data
    /// pages, so there is no separate refinement level.
    fn cost_prediction(&self, k: usize, opts: &QueryOptions) -> Option<CostPrediction> {
        let n_pages = self.pages.len();
        if n_pages == 0 {
            return None;
        }
        let disk = iq_storage::DiskModel::default();
        let params = iq_cost::DirectoryParams::new(self.metric, self.dim, self.dim as f64, self.n);
        let mut leaf = iq_cost::expected_pages_accessed_knn(&params, n_pages, k.max(1));
        if let Some(m) = opts.nprobes {
            leaf = leaf.min(m as f64);
        }
        let dir_nodes =
            ((self.height.saturating_sub(1)) as f64 * leaf.max(1.0)).min(self.nodes.len() as f64);
        // Every node and page read is a random single-block access.
        let mut io_seconds = (leaf + dir_nodes) * (disk.t_seek + disk.t_xfer);
        if let Some(b) = opts.time_budget {
            io_seconds = io_seconds.min(b);
        }
        Some(CostPrediction {
            pages: leaf,
            io_seconds,
            filter_pages: leaf,
            refine_pages: 0.0,
        })
    }
}

// Queries take `&self`; an X-tree shared across threads must stay usable
// (inserts and deletes still require exclusive `&mut` access).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<XTree>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use iq_storage::{CpuModel, DiskModel, MemDevice};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_ds(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        let mut row = vec![0.0f32; dim];
        for _ in 0..n {
            row.fill_with(|| rng.gen());
            ds.push(&row);
        }
        ds
    }

    fn make(n: usize, dim: usize, seed: u64, bs: usize) -> (Dataset, XTree, SimClock) {
        let ds = random_ds(n, dim, seed);
        let mut clock = SimClock::new(DiskModel::default(), CpuModel::free());
        let tree = XTree::build(
            &ds,
            Metric::Euclidean,
            XTreeOptions::default(),
            Box::new(MemDevice::new(bs)),
            Box::new(MemDevice::new(bs)),
            &mut clock,
        );
        clock.reset();
        (ds, tree, clock)
    }

    fn brute_knn(ds: &Dataset, q: &[f32], k: usize) -> Vec<(u32, f64)> {
        let m = Metric::Euclidean;
        let mut all: Vec<(u32, f64)> = (0..ds.len())
            .map(|i| (i as u32, m.distance(ds.point(i), q)))
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
        all.truncate(k);
        all
    }

    #[test]
    fn nearest_matches_brute_force() {
        let (ds, t, mut clock) = make(800, 6, 1, 1024);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let q: Vec<f32> = (0..6).map(|_| rng.gen()).collect();
            let (id, d) = t.nearest(&mut clock, &q).expect("non-empty");
            let expect = brute_knn(&ds, &q, 1)[0];
            assert!((d - expect.1).abs() < 1e-9, "{id} vs {}", expect.0);
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let (ds, t, mut clock) = make(500, 4, 2, 1024);
        let q = vec![0.5f32; 4];
        let got = t.knn(&mut clock, &q, 9);
        let expect = brute_knn(&ds, &q, 9);
        assert_eq!(got.len(), 9);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g.1 - e.1).abs() < 1e-9);
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let (ds, t, mut clock) = make(600, 5, 3, 1024);
        let q = vec![0.4f32; 5];
        let r = 0.45;
        let mut got = t.range(&mut clock, &q, r);
        got.sort_unstable();
        let mut expect: Vec<u32> = (0..ds.len() as u32)
            .filter(|&i| Metric::Euclidean.distance(ds.point(i as usize), &q) <= r)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn build_produces_multi_level_tree() {
        let (_, t, _) = make(5_000, 8, 4, 1024);
        assert!(t.height() >= 3, "height {}", t.height());
        assert!(t.num_data_pages() > 100);
    }

    #[test]
    fn search_prunes_compared_to_reading_everything() {
        let (_, t, mut clock) = make(5_000, 4, 5, 1024);
        t.nearest(&mut clock, &[0.5f32; 4]);
        // In 4-d the tree should visit far fewer blocks than a full scan.
        let total = t.num_data_pages() as u64;
        assert!(
            clock.stats().blocks_read < total / 2,
            "read {} of {} pages",
            clock.stats().blocks_read,
            total
        );
    }

    #[test]
    fn dynamic_inserts_preserve_correctness() {
        let base = random_ds(400, 4, 6);
        let extra = random_ds(300, 4, 7);
        let mut clock = SimClock::new(DiskModel::default(), CpuModel::free());
        let mut t = XTree::build(
            &base,
            Metric::Euclidean,
            XTreeOptions::default(),
            Box::new(MemDevice::new(512)),
            Box::new(MemDevice::new(512)),
            &mut clock,
        );
        for (i, p) in extra.iter().enumerate() {
            t.insert(&mut clock, (400 + i) as u32, p);
        }
        assert_eq!(t.len(), 700);
        // Combined ground truth.
        let mut all = base.clone();
        for p in extra.iter() {
            all.push(p);
        }
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..15 {
            let q: Vec<f32> = (0..4).map(|_| rng.gen()).collect();
            let (_, d) = t.nearest(&mut clock, &q).expect("non-empty");
            let expect = brute_knn(&all, &q, 1)[0];
            assert!((d - expect.1).abs() < 1e-9);
        }
    }

    #[test]
    fn delete_removes_points_and_tightens() {
        let (ds, mut t, mut clock) = make(600, 4, 91, 1024);
        for i in 0..300u32 {
            assert!(t.delete(&mut clock, i, ds.point(i as usize)), "point {i}");
        }
        assert_eq!(t.len(), 300);
        // Deleted points are gone; survivors answer exactly.
        for i in (300..600).step_by(50) {
            let (id, d) = t.nearest(&mut clock, ds.point(i)).expect("non-empty");
            assert_eq!(id as usize, i);
            assert!(d < 1e-9);
        }
        for i in (0..300).step_by(50) {
            let hits = t.range(&mut clock, ds.point(i), 1e-9);
            assert!(hits.iter().all(|&h| h >= 300));
        }
        // Deleting twice reports false.
        assert!(!t.delete(&mut clock, 0, ds.point(0)));
    }

    #[test]
    fn delete_everything_then_insert_again() {
        let (ds, mut t, mut clock) = make(200, 3, 92, 512);
        for i in 0..200u32 {
            assert!(t.delete(&mut clock, i, ds.point(i as usize)));
        }
        assert_eq!(t.len(), 0);
        assert!(t.nearest(&mut clock, &[0.5, 0.5, 0.5]).is_none());
        t.insert(&mut clock, 777, &[0.25, 0.5, 0.75]);
        assert_eq!(t.len(), 1);
        let (id, d) = t
            .nearest(&mut clock, &[0.25, 0.5, 0.75])
            .expect("non-empty");
        assert_eq!(id, 777);
        assert!(d < 1e-9);
    }

    #[test]
    fn queries_remain_exact_with_supernodes_present() {
        // Force supernodes (highly overlapping high-dim inserts), then
        // verify NN and range results against brute force.
        let mut rng = StdRng::seed_from_u64(77);
        let mut ds = Dataset::new(10);
        let mut row = vec![0.0f32; 10];
        for _ in 0..150 {
            row.fill_with(|| rng.gen());
            ds.push(&row);
        }
        let mut clock = SimClock::default();
        let mut t = XTree::build(
            &ds,
            Metric::Euclidean,
            XTreeOptions::default(),
            Box::new(MemDevice::new(512)),
            Box::new(MemDevice::new(512)),
            &mut clock,
        );
        let mut all = ds.clone();
        for i in 0..1_200u32 {
            row.fill_with(|| rng.gen());
            t.insert(&mut clock, 150 + i, &row);
            all.push(&row);
        }
        assert!(
            t.num_supernodes() > 0,
            "setup must actually create supernodes"
        );
        for _ in 0..10 {
            let q: Vec<f32> = (0..10).map(|_| rng.gen()).collect();
            let (_, d) = t.nearest(&mut clock, &q).expect("non-empty");
            let expect = brute_knn(&all, &q, 1)[0].1;
            assert!((d - expect).abs() < 1e-6);
        }
        let q = vec![0.5f32; 10];
        let mut got = t.range(&mut clock, &q, 0.8);
        got.sort_unstable();
        let mut expect: Vec<u32> = (0..all.len() as u32)
            .filter(|&i| Metric::Euclidean.distance(all.point(i as usize), &q) <= 0.8)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn inserts_into_clustered_high_dim_data_make_supernodes() {
        // Highly overlapping MBRs in high dimension push the split decision
        // toward supernodes.
        let mut rng = StdRng::seed_from_u64(9);
        let mut ds = Dataset::new(12);
        let mut row = vec![0.0f32; 12];
        for _ in 0..200 {
            row.fill_with(|| rng.gen());
            ds.push(&row);
        }
        let mut clock = SimClock::default();
        let mut t = XTree::build(
            &ds,
            Metric::Euclidean,
            XTreeOptions::default(),
            Box::new(MemDevice::new(512)),
            Box::new(MemDevice::new(512)),
            &mut clock,
        );
        for i in 0..2_000u32 {
            row.fill_with(|| rng.gen());
            t.insert(&mut clock, 200 + i, &row);
        }
        assert_eq!(t.len(), 2_200);
        // Correctness after heavy splitting.
        let q = vec![0.5f32; 12];
        let (_, d) = t.nearest(&mut clock, &q).expect("non-empty");
        assert!(d > 0.0);
    }
}
