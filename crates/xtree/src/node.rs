//! On-disk representation of X-tree directory nodes and data pages.
//!
//! A directory node occupies one block — or several, when it has become a
//! *supernode* (the X-tree's escape hatch for splits that would produce
//! heavily overlapping halves). A data page always occupies one block and
//! stores exact points with their ids.
//!
//! Node layout (little endian):
//! `u16 count | u8 leaf_children | u8 nblocks | count × (u32 child | 2d × f32 mbr)`
//!
//! Data page layout:
//! `u16 count | u16 pad | count × (u32 id | d × f32 coords)`

use iq_geometry::Mbr;

/// Header bytes shared by nodes and data pages.
pub const HEADER_BYTES: usize = 4;

/// One directory entry: a child reference and its MBR.
#[derive(Clone, Debug)]
pub struct DirEntry {
    /// Node id (inner level) or data page id (leaf level).
    pub child: u32,
    /// The child's minimum bounding rectangle.
    pub mbr: Mbr,
}

/// A decoded directory node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Whether the children are data pages (leaf level) rather than nodes.
    pub leaf_children: bool,
    /// Blocks this node occupies on disk (1 = normal node, >1 = supernode).
    pub nblocks: u32,
    /// The entries.
    pub entries: Vec<DirEntry>,
}

impl Node {
    /// Bytes one entry occupies for dimension `dim`.
    pub fn entry_bytes(dim: usize) -> usize {
        4 + 8 * dim
    }

    /// Entry capacity of a node spanning `nblocks` blocks.
    pub fn capacity(dim: usize, block_size: usize, nblocks: u32) -> usize {
        (nblocks as usize * block_size - HEADER_BYTES) / Self::entry_bytes(dim)
    }

    /// The MBR enclosing all entries.
    ///
    /// # Panics
    /// Panics if the node has no entries.
    pub fn mbr(&self) -> Mbr {
        let mut it = self.entries.iter();
        let mut mbr = it.next().expect("node must have entries").mbr.clone();
        for e in it {
            mbr.extend_mbr(&e.mbr);
        }
        mbr
    }

    /// Serializes the node to `nblocks × block_size` bytes.
    ///
    /// # Panics
    /// Panics if the entries exceed the capacity at `self.nblocks`.
    pub fn encode(&self, dim: usize, block_size: usize) -> Vec<u8> {
        assert!(
            self.entries.len() <= Self::capacity(dim, block_size, self.nblocks),
            "node overflow: {} entries in {} block(s)",
            self.entries.len(),
            self.nblocks
        );
        let mut out = Vec::with_capacity(self.nblocks as usize * block_size);
        out.extend_from_slice(&(self.entries.len() as u16).to_le_bytes());
        out.push(u8::from(self.leaf_children));
        out.push(self.nblocks as u8);
        for e in &self.entries {
            out.extend_from_slice(&e.child.to_le_bytes());
            for i in 0..dim {
                out.extend_from_slice(&e.mbr.lb(i).to_le_bytes());
            }
            for i in 0..dim {
                out.extend_from_slice(&e.mbr.ub(i).to_le_bytes());
            }
        }
        out.resize(self.nblocks as usize * block_size, 0);
        out
    }

    /// Deserializes a node.
    pub fn decode(bytes: &[u8], dim: usize) -> Self {
        let count = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        let leaf_children = bytes[2] != 0;
        let nblocks = u32::from(bytes[3]);
        let eb = Self::entry_bytes(dim);
        let mut entries = Vec::with_capacity(count);
        for e in 0..count {
            let off = HEADER_BYTES + e * eb;
            let child = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
            let f32_at = |k: usize| {
                f32::from_le_bytes(
                    bytes[off + 4 + 4 * k..off + 8 + 4 * k]
                        .try_into()
                        .expect("4 bytes"),
                )
            };
            let lb: Vec<f32> = (0..dim).map(&f32_at).collect();
            let ub: Vec<f32> = (dim..2 * dim).map(&f32_at).collect();
            entries.push(DirEntry {
                child,
                mbr: Mbr::from_bounds(lb, ub),
            });
        }
        Self {
            leaf_children,
            nblocks,
            entries,
        }
    }

    /// How many blocks the node *needs* for its current entry count
    /// (used when rewriting after mutation).
    pub fn blocks_needed(&self, dim: usize, block_size: usize) -> u32 {
        let mut nb = 1u32;
        while Self::capacity(dim, block_size, nb) < self.entries.len() {
            nb += 1;
        }
        nb
    }
}

/// A decoded data page: ids plus flat row-major coordinates.
#[derive(Clone, Debug, Default)]
pub struct DataPage {
    /// Point ids.
    pub ids: Vec<u32>,
    /// Flat `len × dim` coordinates.
    pub coords: Vec<f32>,
}

impl DataPage {
    /// Bytes one point occupies for dimension `dim`.
    pub fn entry_bytes(dim: usize) -> usize {
        4 + 4 * dim
    }

    /// Point capacity of one block.
    pub fn capacity(dim: usize, block_size: usize) -> usize {
        (block_size - HEADER_BYTES) / Self::entry_bytes(dim)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the page is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Coordinates of point `i`.
    pub fn point(&self, i: usize, dim: usize) -> &[f32] {
        &self.coords[i * dim..(i + 1) * dim]
    }

    /// The tight MBR of the page's points.
    ///
    /// # Panics
    /// Panics if the page is empty.
    pub fn mbr(&self, dim: usize) -> Mbr {
        assert!(!self.is_empty(), "empty data page has no MBR");
        Mbr::of_points(dim, self.coords.chunks_exact(dim))
    }

    /// Serializes to one block.
    ///
    /// # Panics
    /// Panics on overflow.
    pub fn encode(&self, dim: usize, block_size: usize) -> Vec<u8> {
        assert!(
            self.len() <= Self::capacity(dim, block_size),
            "data page overflow"
        );
        let mut out = Vec::with_capacity(block_size);
        out.extend_from_slice(&(self.len() as u16).to_le_bytes());
        out.extend_from_slice(&[0, 0]);
        for (i, &id) in self.ids.iter().enumerate() {
            out.extend_from_slice(&id.to_le_bytes());
            for &x in self.point(i, dim) {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        out.resize(block_size, 0);
        out
    }

    /// Deserializes one block.
    pub fn decode(bytes: &[u8], dim: usize) -> Self {
        let count = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        let eb = Self::entry_bytes(dim);
        let mut ids = Vec::with_capacity(count);
        let mut coords = Vec::with_capacity(count * dim);
        for e in 0..count {
            let off = HEADER_BYTES + e * eb;
            ids.push(u32::from_le_bytes(
                bytes[off..off + 4].try_into().expect("4 bytes"),
            ));
            for k in 0..dim {
                coords.push(f32::from_le_bytes(
                    bytes[off + 4 + 4 * k..off + 8 + 4 * k]
                        .try_into()
                        .expect("4 bytes"),
                ));
            }
        }
        Self { ids, coords }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_roundtrip() {
        let dim = 3;
        let node = Node {
            leaf_children: true,
            nblocks: 1,
            entries: vec![
                DirEntry {
                    child: 5,
                    mbr: Mbr::from_bounds(vec![0.0, 1.0, 2.0], vec![3.0, 4.0, 5.0]),
                },
                DirEntry {
                    child: 9,
                    mbr: Mbr::from_bounds(vec![-1.0, -2.0, -3.0], vec![0.0, 0.0, 0.0]),
                },
            ],
        };
        let bytes = node.encode(dim, 512);
        assert_eq!(bytes.len(), 512);
        let back = Node::decode(&bytes, dim);
        assert_eq!(back.entries.len(), 2);
        assert!(back.leaf_children);
        assert_eq!(back.nblocks, 1);
        assert_eq!(back.entries[0].child, 5);
        assert_eq!(back.entries[1].mbr, node.entries[1].mbr);
    }

    #[test]
    fn supernode_roundtrip() {
        let dim = 2;
        let cap1 = Node::capacity(dim, 128, 1);
        let n_entries = cap1 + 3; // forces 2 blocks
        let entries: Vec<DirEntry> = (0..n_entries as u32)
            .map(|i| DirEntry {
                child: i,
                mbr: Mbr::from_bounds(vec![i as f32, 0.0], vec![i as f32 + 1.0, 1.0]),
            })
            .collect();
        let node = Node {
            leaf_children: false,
            nblocks: 2,
            entries,
        };
        assert_eq!(node.blocks_needed(dim, 128), 2);
        let bytes = node.encode(dim, 128);
        assert_eq!(bytes.len(), 256);
        let back = Node::decode(&bytes, dim);
        assert_eq!(back.entries.len(), n_entries);
        assert_eq!(back.nblocks, 2);
    }

    #[test]
    fn node_mbr_unions_entries() {
        let node = Node {
            leaf_children: true,
            nblocks: 1,
            entries: vec![
                DirEntry {
                    child: 0,
                    mbr: Mbr::from_bounds(vec![0.0], vec![1.0]),
                },
                DirEntry {
                    child: 1,
                    mbr: Mbr::from_bounds(vec![4.0], vec![5.0]),
                },
            ],
        };
        let m = node.mbr();
        assert_eq!(m.lb(0), 0.0);
        assert_eq!(m.ub(0), 5.0);
    }

    #[test]
    fn data_page_roundtrip() {
        let dim = 4;
        let dp = DataPage {
            ids: vec![10, 20],
            coords: vec![1., 2., 3., 4., 5., 6., 7., 8.],
        };
        let bytes = dp.encode(dim, 256);
        let back = DataPage::decode(&bytes, dim);
        assert_eq!(back.ids, dp.ids);
        assert_eq!(back.point(1, dim), &[5., 6., 7., 8.]);
        assert_eq!(
            back.mbr(dim),
            Mbr::from_bounds(vec![1., 2., 3., 4.], vec![5., 6., 7., 8.])
        );
    }

    #[test]
    fn capacities_are_sane() {
        // d = 16, 8 KiB: data pages hold 120 points, nodes 62 entries.
        assert_eq!(DataPage::capacity(16, 8192), 120);
        assert_eq!(Node::capacity(16, 8192, 1), 62);
        assert!(Node::capacity(16, 8192, 2) >= 2 * Node::capacity(16, 8192, 1));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn node_encode_rejects_overflow() {
        let dim = 2;
        let cap = Node::capacity(dim, 128, 1);
        let entries: Vec<DirEntry> = (0..=cap as u32)
            .map(|i| DirEntry {
                child: i,
                mbr: Mbr::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]),
            })
            .collect();
        let node = Node {
            leaf_children: false,
            nblocks: 1,
            entries,
        };
        node.encode(dim, 128);
    }
}
