//! Node splitting: overlap-minimal topological split with supernode
//! fallback (Berchtold/Keim/Kriegel, VLDB '96).
//!
//! The X-tree's defining behavior: when a directory node overflows, it is
//! split only if a split with little overlap and acceptable balance exists;
//! otherwise the node becomes a *supernode* spanning one more disk block.
//! We implement the overlap-minimal axis split (for every dimension, sort
//! entries by MBR center, evaluate all balanced cut points, score by
//! overlap volume of the two halves) — the role the split history plays in
//! the original is to find an overlap-*free* axis quickly; scanning all
//! axes finds it too (and the best fallback when none exists), at bulk-load
//! rather than per-insert frequency in this workspace, so clarity wins.

use crate::node::DirEntry;
use iq_geometry::Mbr;

/// Outcome of attempting to split an overflowing node.
#[derive(Debug)]
pub enum SplitDecision {
    /// Split into the two entry groups (both non-empty, balanced).
    Split(Vec<DirEntry>, Vec<DirEntry>),
    /// No acceptable split exists: grow into / extend a supernode.
    Supernode,
}

/// Minimum fraction of entries on the smaller side for a split to count as
/// balanced (the X-tree paper's `MIN_FANOUT`, typically 35%).
pub const MIN_FANOUT: f64 = 0.35;

/// Maximum tolerated overlap (fraction of the union volume) before the
/// X-tree prefers a supernode — the "MAX_OVERLAP" constant of the paper,
/// reported there as 20%.
pub const MAX_OVERLAP: f64 = 0.20;

fn union_mbr(entries: &[DirEntry]) -> Mbr {
    let mut it = entries.iter();
    let mut m = it.next().expect("non-empty group").mbr.clone();
    for e in it {
        m.extend_mbr(&e.mbr);
    }
    m
}

/// Evaluates every axis and balanced cut position, returning the split with
/// minimal overlap, or [`SplitDecision::Supernode`] when even the best
/// split overlaps too much (and the node may still grow).
///
/// `may_grow` is false once the supernode has reached its maximum size; in
/// that case the minimal-overlap split is returned unconditionally.
pub fn split_entries(entries: &[DirEntry], dim: usize, may_grow: bool) -> SplitDecision {
    assert!(entries.len() >= 2, "cannot split fewer than two entries");
    let n = entries.len();
    let min_side = ((n as f64 * MIN_FANOUT).ceil() as usize).max(1);

    let mut best: Option<(f64, usize, Vec<usize>)> = None; // (overlap_frac, cut, order)
    for axis in 0..dim {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let ca = entries[a].mbr.lb(axis) + entries[a].mbr.ub(axis);
            let cb = entries[b].mbr.lb(axis) + entries[b].mbr.ub(axis);
            ca.partial_cmp(&cb).expect("coordinates are never NaN")
        });
        // Prefix/suffix MBRs for O(n) cut evaluation per axis.
        let mut prefix: Vec<Mbr> = Vec::with_capacity(n);
        for &i in &order {
            let mut m = prefix
                .last()
                .cloned()
                .unwrap_or_else(|| entries[i].mbr.clone());
            m.extend_mbr(&entries[i].mbr);
            prefix.push(m);
        }
        let mut suffix: Vec<Mbr> = vec![entries[order[n - 1]].mbr.clone(); n];
        for k in (0..n - 1).rev() {
            let mut m = suffix[k + 1].clone();
            m.extend_mbr(&entries[order[k]].mbr);
            suffix[k] = m;
        }
        for cut in min_side..=(n - min_side) {
            let left = &prefix[cut - 1];
            let right = &suffix[cut];
            let overlap = left.overlap_volume(right);
            let mut union = left.clone();
            union.extend_mbr(right);
            let uv = union.volume();
            let frac = if uv > 0.0 {
                overlap / uv
            } else {
                f64::from(overlap > 0.0)
            };
            if best.as_ref().is_none_or(|(bf, _, _)| frac < *bf) {
                best = Some((frac, cut, order.clone()));
            }
        }
    }

    match best {
        Some((frac, cut, order)) => {
            if may_grow && frac > MAX_OVERLAP {
                SplitDecision::Supernode
            } else {
                let left = order[..cut].iter().map(|&i| entries[i].clone()).collect();
                let right = order[cut..].iter().map(|&i| entries[i].clone()).collect();
                SplitDecision::Split(left, right)
            }
        }
        // No balanced cut exists (tiny n with strict fanout): grow if
        // allowed, else cut in half.
        None => {
            if may_grow {
                SplitDecision::Supernode
            } else {
                let mid = n / 2;
                SplitDecision::Split(entries[..mid].to_vec(), entries[mid..].to_vec())
            }
        }
    }
}

/// The union MBR of a group (exposed for the tree's bookkeeping).
pub fn group_mbr(entries: &[DirEntry]) -> Mbr {
    union_mbr(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(child: u32, lb: Vec<f32>, ub: Vec<f32>) -> DirEntry {
        DirEntry {
            child,
            mbr: Mbr::from_bounds(lb, ub),
        }
    }

    #[test]
    fn disjoint_entries_split_overlap_free() {
        // Four boxes in a row along x: a clean split exists.
        let entries: Vec<DirEntry> = (0..4)
            .map(|i| entry(i, vec![i as f32, 0.0], vec![i as f32 + 0.9, 1.0]))
            .collect();
        match split_entries(&entries, 2, true) {
            SplitDecision::Split(l, r) => {
                assert_eq!(l.len(), 2);
                assert_eq!(r.len(), 2);
                assert_eq!(group_mbr(&l).overlap_volume(&group_mbr(&r)), 0.0);
            }
            SplitDecision::Supernode => panic!("clean split must not supernode"),
        }
    }

    #[test]
    fn heavily_overlapping_entries_become_supernode() {
        // All boxes nearly identical: any split overlaps almost fully.
        let entries: Vec<DirEntry> = (0..6)
            .map(|i| {
                let eps = i as f32 * 0.001;
                entry(i, vec![0.0 + eps, 0.0], vec![1.0 + eps, 1.0])
            })
            .collect();
        assert!(matches!(
            split_entries(&entries, 2, true),
            SplitDecision::Supernode
        ));
        // But when growth is forbidden, a split is forced.
        assert!(matches!(
            split_entries(&entries, 2, false),
            SplitDecision::Split(_, _)
        ));
    }

    #[test]
    fn split_respects_min_fanout() {
        let entries: Vec<DirEntry> = (0..10)
            .map(|i| entry(i, vec![i as f32, 0.0], vec![i as f32 + 0.5, 1.0]))
            .collect();
        if let SplitDecision::Split(l, r) = split_entries(&entries, 2, true) {
            let min = l.len().min(r.len());
            assert!(min >= (10.0 * MIN_FANOUT).ceil() as usize, "min side {min}");
            assert_eq!(l.len() + r.len(), 10);
        } else {
            panic!("disjoint row must split");
        }
    }

    #[test]
    fn picks_the_separable_axis() {
        // Overlapping in x, separable in y.
        let mut entries = Vec::new();
        for i in 0..4 {
            entries.push(entry(i, vec![0.0, i as f32], vec![5.0, i as f32 + 0.9]));
        }
        if let SplitDecision::Split(l, r) = split_entries(&entries, 2, true) {
            assert_eq!(group_mbr(&l).overlap_volume(&group_mbr(&r)), 0.0);
        } else {
            panic!("y-separable set must split");
        }
    }
}
