//! Property-based tests of the IQ-tree's end-to-end guarantees: whatever
//! the data distribution, block size, metric or option set, query results
//! are exact and structural invariants hold.

use iq_geometry::{Dataset, Metric};
use iq_storage::{MemDevice, SimClock};
use iq_tree::{IqTree, IqTreeOptions};
use proptest::prelude::*;

fn dataset_strategy(dim: usize, max_n: usize) -> impl Strategy<Value = Dataset> {
    proptest::collection::vec(0.0f32..1.0, dim * 20..dim * max_n).prop_map(move |mut flat| {
        flat.truncate(flat.len() / dim * dim);
        Dataset::from_flat(dim, flat)
    })
}

fn build(ds: &Dataset, opts: IqTreeOptions, metric: Metric, bs: usize) -> (IqTree, SimClock) {
    let mut clock = SimClock::default();
    let tree = IqTree::build(
        ds,
        metric,
        opts,
        || Box::new(MemDevice::new(bs)),
        &mut clock,
    );
    (tree, clock)
}

fn brute_nn(ds: &Dataset, q: &[f32], metric: Metric) -> f64 {
    ds.iter()
        .map(|p| metric.distance(p, q))
        .fold(f64::INFINITY, f64::min)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// NN distance matches brute force for every option combination.
    #[test]
    fn prop_nn_exact(
        ds in dataset_strategy(4, 120),
        q in proptest::collection::vec(0.0f32..1.0, 4),
        quantize in proptest::bool::ANY,
        scheduled in proptest::bool::ANY,
    ) {
        let opts = IqTreeOptions { quantize, scheduled_io: scheduled, ..Default::default() };
        let (tree, mut clock) = build(&ds, opts, Metric::Euclidean, 512);
        let got = tree.nearest(&mut clock, &q).expect("non-empty").1;
        let expect = brute_nn(&ds, &q, Metric::Euclidean);
        prop_assert!((got - expect).abs() < 1e-5, "{got} vs {expect}");
    }

    /// k-NN returns a sorted prefix of the true distance sequence.
    #[test]
    fn prop_knn_sorted_and_exact(
        ds in dataset_strategy(3, 100),
        q in proptest::collection::vec(0.0f32..1.0, 3),
        k in 1usize..20,
    ) {
        let (tree, mut clock) = build(&ds, IqTreeOptions::default(), Metric::Euclidean, 512);
        let got = tree.knn(&mut clock, &q, k);
        prop_assert_eq!(got.len(), k.min(ds.len()));
        prop_assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
        let mut truth: Vec<f64> =
            ds.iter().map(|p| Metric::Euclidean.distance(p, &q)).collect();
        truth.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        for (g, t) in got.iter().zip(&truth) {
            prop_assert!((g.1 - t).abs() < 1e-5);
        }
    }

    /// Range queries return exactly the true id set.
    #[test]
    fn prop_range_exact(
        ds in dataset_strategy(3, 100),
        q in proptest::collection::vec(0.0f32..1.0, 3),
        r in 0.05f64..0.8,
    ) {
        let (tree, mut clock) = build(&ds, IqTreeOptions::default(), Metric::Euclidean, 512);
        let mut got = tree.range(&mut clock, &q, r);
        got.sort_unstable();
        let mut expect: Vec<u32> = (0..ds.len() as u32)
            .filter(|&i| Metric::Euclidean.distance(ds.point(i as usize), &q) <= r)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Structural invariants after a random insert/delete sequence.
    #[test]
    fn prop_update_sequence_invariants(
        ds in dataset_strategy(3, 60),
        ops in proptest::collection::vec((proptest::bool::ANY,
            proptest::collection::vec(0.0f32..1.0, 3)), 1..40),
    ) {
        let (mut tree, mut clock) = build(&ds, IqTreeOptions::default(), Metric::Euclidean, 512);
        let mut live: Vec<(u32, Vec<f32>)> =
            (0..ds.len()).map(|i| (i as u32, ds.point(i).to_vec())).collect();
        let mut next_id = ds.len() as u32;
        for (is_insert, p) in ops {
            if is_insert || live.len() <= 1 {
                tree.insert(&mut clock, next_id, &p).unwrap();
                live.push((next_id, p));
                next_id += 1;
            } else {
                let (id, victim) = live.swap_remove(live.len() / 2);
                prop_assert!(tree.delete(&mut clock, id, &victim).unwrap());
            }
        }
        prop_assert_eq!(tree.len(), live.len());
        let total: u32 = tree.pages().iter().map(|p| p.count).sum();
        prop_assert_eq!(total as usize, live.len());
        // A random live point is findable at distance 0.
        let (id, p) = &live[live.len() / 2];
        let hits = tree.range(&mut clock, p, 1e-9);
        prop_assert!(hits.contains(id));
    }

    /// The maximum metric is exact too.
    #[test]
    fn prop_nn_exact_max_metric(
        ds in dataset_strategy(5, 80),
        q in proptest::collection::vec(0.0f32..1.0, 5),
    ) {
        let (tree, mut clock) = build(&ds, IqTreeOptions::default(), Metric::Maximum, 512);
        let got = tree.nearest(&mut clock, &q).expect("non-empty").1;
        let expect = brute_nn(&ds, &q, Metric::Maximum);
        prop_assert!((got - expect).abs() < 1e-5);
    }

    /// A tree shared behind an `Arc` answers from plain `&self`, from
    /// spawned threads, exactly like the iq-scan ground truth — sharing a
    /// tree must never change what a query returns.
    #[test]
    fn prop_arc_shared_queries_match_scan(
        ds in dataset_strategy(4, 100),
        qs in proptest::collection::vec(
            (proptest::collection::vec(0.0f32..1.0, 4), 1usize..8), 1..6),
    ) {
        use std::sync::Arc;
        let (tree, _) = build(&ds, IqTreeOptions::default(), Metric::Euclidean, 512);
        let tree = Arc::new(tree);
        let scan = iq_scan::SeqScan::build(
            &ds,
            Metric::Euclidean,
            Box::new(MemDevice::new(512)),
            &mut SimClock::default(),
        );
        for (q, k) in qs {
            let expect = scan.knn(&mut SimClock::default(), &q, k);
            let shared = Arc::clone(&tree);
            let got = std::thread::spawn(move || {
                shared.knn(&mut SimClock::default(), &q, k)
            })
            .join()
            .expect("query thread panicked");
            prop_assert_eq!(got.len(), expect.len());
            for (g, e) in got.iter().zip(&expect) {
                prop_assert!((g.1 - e.1).abs() < 1e-5, "{:?} vs {:?}", g, e);
            }
        }
    }
}
