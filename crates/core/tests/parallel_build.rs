//! Property: the parallel build pipeline is byte-for-byte deterministic.
//!
//! `encode_pages` stamps each quantization job with its page index and
//! merges results in order, so the raw device images of all three levels
//! (directory, quantized, exact) must be identical no matter how many
//! worker threads encoded the pages — including `build_threads: 0`
//! (one per core), whatever this machine's core count happens to be.

use iq_geometry::{Dataset, Metric};
use iq_storage::{BlockDevice, IqResult, MemDevice, SimClock};
use iq_tree::{IqTree, IqTreeOptions};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::cell::RefCell;
use std::sync::{Arc, Mutex};

/// A MemDevice behind a shared handle, so the test keeps access to the raw
/// (physical) blocks after handing the device to the tree.
#[derive(Clone)]
struct SharedDev(Arc<Mutex<MemDevice>>);

impl SharedDev {
    fn new(bs: usize) -> Self {
        Self(Arc::new(Mutex::new(MemDevice::new(bs))))
    }

    fn image(&self) -> Vec<u8> {
        let mut clock = SimClock::default();
        let nb = self.num_blocks();
        if nb == 0 {
            return Vec::new();
        }
        self.read_to_vec(&mut clock, 0, nb).expect("read image")
    }
}

impl BlockDevice for SharedDev {
    fn block_size(&self) -> usize {
        self.0.lock().expect("lock").block_size()
    }
    fn num_blocks(&self) -> u64 {
        self.0.lock().expect("lock").num_blocks()
    }
    fn read_blocks(&self, clock: &mut SimClock, start: u64, buf: &mut [u8]) -> IqResult<()> {
        self.0.lock().expect("lock").read_blocks(clock, start, buf)
    }
    fn append(&mut self, clock: &mut SimClock, data: &[u8]) -> IqResult<u64> {
        self.0.lock().expect("lock").append(clock, data)
    }
    fn write_blocks(&mut self, clock: &mut SimClock, start: u64, data: &[u8]) -> IqResult<()> {
        self.0
            .lock()
            .expect("lock")
            .write_blocks(clock, start, data)
    }
    fn device_id(&self) -> u64 {
        self.0.lock().expect("lock").device_id()
    }
}

fn random_ds(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(dim, n);
    let mut row = vec![0.0f32; dim];
    for _ in 0..n {
        row.fill_with(|| rng.gen());
        ds.push(&row);
    }
    ds
}

/// Builds an index with the given worker count and returns the raw images
/// of the three level devices.
fn build_images(n: usize, dim: usize, bs: usize, threads: usize) -> Vec<Vec<u8>> {
    let ds = random_ds(n, dim, 77);
    let mut clock = SimClock::default();
    let handles: RefCell<Vec<SharedDev>> = RefCell::new(Vec::new());
    let opts = IqTreeOptions {
        build_threads: threads,
        ..IqTreeOptions::default()
    };
    let tree = IqTree::build(
        &ds,
        Metric::Euclidean,
        opts,
        || {
            let dev = SharedDev::new(bs);
            handles.borrow_mut().push(dev.clone());
            Box::new(dev) as Box<dyn BlockDevice>
        },
        &mut clock,
    );
    assert!(tree.num_pages() > 1, "want a multi-page build");
    drop(tree);
    handles.into_inner().iter().map(SharedDev::image).collect()
}

#[test]
fn parallel_build_is_byte_identical_to_sequential() {
    let seq = build_images(2_000, 6, 512, 1);
    assert_eq!(seq.len(), 3, "directory, quantized, exact");
    for threads in [0usize, 2, 4, 8] {
        let par = build_images(2_000, 6, 512, threads);
        assert_eq!(par.len(), seq.len());
        for (level, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(
                a, b,
                "level {level} image differs with build_threads = {threads}"
            );
        }
    }
}
