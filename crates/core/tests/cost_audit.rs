//! Cost-model-vs-observed validation (the `iq-obs` [`CostAudit`] in its
//! intended role): on uniform data — the regime the paper's formulas are
//! derived for — the predicted number of second-level page accesses
//! (eqs 16–18) must track what real queries report in their
//! [`iq_engine::QueryTrace`].
//!
//! The model is an order-of-magnitude instrument, not a simulator: it
//! assumes cubical pages of identical volume, query-follows-data and a
//! sharp pruning sphere, while the real search prunes adaptively page by
//! page. The documented acceptance band is therefore a factor: the mean
//! observed page count must lie within `TOLERANCE_FACTOR`× of the
//! prediction, in both directions, for every tested `k`.

use iq_geometry::{Dataset, Metric};
use iq_obs::CostAudit;
use iq_storage::{CpuModel, DiskModel, MemDevice, SimClock};
use iq_tree::{IqTree, IqTreeOptions};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Documented tolerance: observed mean within a factor 3 of the predicted
/// page-access count (|log-ratio| ≤ ln 3). See DESIGN.md, "Observability".
const TOLERANCE_FACTOR: f64 = 3.0;

fn uniform_ds(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(dim);
    let mut row = vec![0.0f32; dim];
    for _ in 0..n {
        row.fill_with(|| rng.gen());
        ds.push(&row);
    }
    ds
}

#[test]
fn predicted_page_accesses_track_observed_on_uniform_data() {
    let dim = 8;
    let ds = uniform_ds(8_000, dim, 77);
    let disk = DiskModel::default();
    let mut clock = SimClock::new(disk, CpuModel::free());
    let tree = IqTree::build(
        &ds,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || Box::new(MemDevice::new(1024)),
        &mut clock,
    );

    let mut audit = CostAudit::new();
    let mut rng = StdRng::seed_from_u64(4242);
    for k in [1usize, 5, 20] {
        let predicted = tree.predict_knn_cost(&disk, k);
        let queries = 30;
        let mut observed_pages = 0.0;
        for _ in 0..queries {
            let q: Vec<f32> = (0..dim).map(|_| rng.gen()).collect();
            let mut c = SimClock::new(disk, CpuModel::free());
            let (results, trace) = tree.knn_traced(&mut c, &q, k);
            assert_eq!(results.len(), k);
            observed_pages += trace.pages_processed as f64;
        }
        let mean_observed = observed_pages / queries as f64;
        audit.record(&format!("pages_k{k}"), predicted.pages, mean_observed);
    }

    println!("{}", audit.report());
    for k in [1usize, 5, 20] {
        let name = format!("pages_k{k}");
        let s = audit.summary(&name).expect("series recorded");
        let ratio = s.obs_mean / s.pred_mean;
        println!(
            "k={k}: predicted {:.1} pages, observed {:.1} (ratio {ratio:.2})",
            s.pred_mean, s.obs_mean
        );
        assert!(
            (1.0 / TOLERANCE_FACTOR..=TOLERANCE_FACTOR).contains(&ratio),
            "k={k}: observed/predicted ratio {ratio:.2} outside the \
             documented {TOLERANCE_FACTOR}x band \
             (predicted {:.1}, observed {:.1})",
            s.pred_mean,
            s.obs_mean,
        );
    }
}
