//! Query processing: nearest-neighbor / k-NN search with the
//! time-optimized page-access strategy (Sections 2.1, 2.2, 3.2) and range
//! queries with optimal batch fetching (Section 2).
//!
//! The priority list holds two kinds of entries (Section 3.2): quantized
//! data pages (keyed by their MBR's MINDIST) and *point approximations* —
//! the grid-cell boxes of individual points, inserted when their page is
//! processed. A point's exact coordinates are read if and only if its box
//! becomes the pivot of the list, which the paper proves unavoidable.
//!
//! When the pivot is a page and scheduled I/O is enabled, the cumulated-
//! cost-balance algorithm of Section 2.1 extends the read around the pivot
//! in both disk directions: a neighboring page with access probability `a`
//! contributes `t_xfer − a·(t_seek + t_xfer)` to the balance; sequences
//! with negative balance are over-read in the same sweep; the search in
//! either direction stops once the balance exceeds `t_seek`.

use crate::{IqTree, PageMeta};
use iq_cost::access_prob::fraction_in_ball;
use iq_engine::{
    drive, query_span_begin, query_span_end, AccessMethod, CandidateHeap, Executor, Filter, OrdKey,
    QueryOptions, TopK, TracedResult,
};
use iq_obs::{CostPrediction, Phase};
use iq_quantize::{
    CellMatch, DistTable, DistTableBlock, WindowTable, EXACT_BITS, MAX_BLOCK_QUERIES,
};
use iq_storage::{fetch, read_to_vec_retry, SimClock};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// What a nearest-neighbor query actually did — returned by
/// [`IqTree::knn_traced`] for inspection, tuning and tests. The type lives
/// in `iq-engine` so every access method reports work in the same shape;
/// re-exported here for backward compatibility.
pub use iq_engine::QueryTrace;

/// Folds one entry's MAXDIST key into a query's running bound δ: the
/// bounded max-heap holds the `k` smallest MAXDIST keys seen so far, whose
/// maximum is a certified upper bound on the true k-th-NN key (at least
/// `k` entries are guaranteed no farther than it).
fn note_bound(heap: &mut BinaryHeap<OrdKey>, delta: &mut f64, k: usize, hi: f64) {
    if hi.is_nan() {
        return;
    }
    if heap.len() < k {
        heap.push(OrdKey(hi));
        if heap.len() == k {
            *delta = heap.peek().expect("heap holds k entries").0;
        }
    } else if hi < *delta {
        heap.pop();
        heap.push(OrdKey(hi));
        *delta = heap.peek().expect("heap holds k entries").0;
    }
}

/// Heap entry target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Item {
    /// A quantized data page (by index).
    Page(u32),
    /// A point approximation: `(page, slot, id)` — refined when popped.
    Point(u32, u32, u32),
}

/// Per-query working state that is specific to the IQ-tree producer: the
/// page priority structure and decode scratch. The shared pieces — the
/// top-k, the pruning bound, the knob budgets and the trace — live in the
/// engine-layer [`Executor`], which is threaded alongside.
struct SearchState<'f> {
    /// Pushed-down attribute filter: non-matching points never enter the
    /// result set or the priority list, so the pruning bound (and with it
    /// MINDIST page pruning) derives only from matching points.
    filter: Option<&'f Filter>,
    /// MINDIST key of every page.
    page_key: Vec<f64>,
    /// Page indices sorted by ascending MINDIST key (priority order).
    order: Vec<u32>,
    /// Rank of each page in `order` (pages before it are its
    /// higher-priority competitors).
    rank: Vec<u32>,
    /// Pages already loaded and processed (or scheduled away).
    processed: Vec<bool>,
    /// Reusable cell-number scratch for the streaming page decoder.
    cells: Vec<u32>,
    /// Reusable coordinate scratch for exact (g = 32) pages and fallbacks.
    coords: Vec<f32>,
    /// Reusable per-(query, page-grid) distance-contribution table.
    table: DistTable,
    /// Reusable per-page MINDIST-key scratch for the batch fold kernel.
    keys: Vec<f64>,
}

impl IqTree {
    /// Exact nearest neighbor of `q`, as `(id, distance)`.
    pub fn nearest(&self, clock: &mut SimClock, q: &[f32]) -> Option<(u32, f64)> {
        self.knn(clock, q, 1).pop()
    }

    /// The `k` exact nearest neighbors of `q`, ordered by increasing
    /// distance.
    ///
    /// Queries take `&self`: any number of threads may search one tree
    /// concurrently, each with its own [`SimClock`] (the clock models one
    /// disk arm, so it is inherently per-query state). See
    /// [`IqTree::knn_batch`] for a ready-made parallel executor.
    pub fn knn(&self, clock: &mut SimClock, q: &[f32], k: usize) -> Vec<(u32, f64)> {
        self.knn_traced(clock, q, k).0
    }

    /// Answers every query in `queries` with a `k`-NN search, fanning the
    /// batch out over `threads` OS threads that share `self`.
    ///
    /// Delegates to the engine-layer executor [`iq_engine::knn_batch`],
    /// which works over any [`AccessMethod`]: each query runs against a
    /// fresh clone of `clock` (reset to zero), so per-query costs are
    /// charged exactly as in a serial cold run; the per-query clocks are
    /// then folded back into `clock` in query order via
    /// [`SimClock::absorb`]. Results and accumulated statistics are
    /// therefore identical for every thread count, including `1`.
    pub fn knn_batch(
        &self,
        clock: &mut SimClock,
        queries: &[Vec<f32>],
        k: usize,
        threads: usize,
    ) -> Vec<Vec<(u32, f64)>> {
        iq_engine::knn_batch(self, clock, queries, k, threads)
    }

    /// Like [`IqTree::knn`], additionally returning a [`QueryTrace`] of
    /// what the search did.
    pub fn knn_traced(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
    ) -> (Vec<(u32, f64)>, QueryTrace) {
        self.knn_traced_impl(clock, q, k, None, &QueryOptions::EXACT)
    }

    /// Shared search core; a pushed-down `filter` drops non-matching points
    /// at page-decode time (level 2), so they never enter the priority list
    /// and are never refined, and `k` counts post-filter results.
    ///
    /// The IQ-tree is a *producer* into the engine-layer [`drive`] loop:
    /// pages and point approximations enter the shared candidate heap, the
    /// executor owns pruning and every approximation knob. Under `opts`,
    /// `nprobes` caps the number of quantized data pages decoded and
    /// `refine_factor` caps exact-point look-ups at `k × refine_factor`.
    fn knn_traced_impl(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
        filter: Option<&Filter>,
        opts: &QueryOptions,
    ) -> (Vec<(u32, f64)>, QueryTrace) {
        assert_eq!(q.len(), self.dim(), "query dimensionality mismatch");
        if k == 0 || self.is_empty() || filter.is_some_and(|f| f.matching() == 0) {
            return (Vec::new(), QueryTrace::default());
        }
        // Partial refinement (`refine_factor >= 2`): the quantized phase
        // ranks candidates by their cell lower bound alone — no per-pivot
        // exact reads — and the best `k × refine_factor` are then refined
        // in one block-scheduled batch and reranked. One planned sweep
        // over co-located exact entries replaces up to `k` random seeks.
        let partial = opts.refine_factor >= 2;
        let budget = if partial {
            k.saturating_mul(opts.refine_factor as usize)
        } else {
            k
        };
        query_span_begin(clock, "iqtree", k, filter, opts);
        let mut exec = Executor::new(self.metric(), budget, opts, clock);
        let mut deferred: HashMap<u32, (u32, u32)> = HashMap::new();
        clock.phase_begin(Phase::Directory);
        self.charge_directory_scan(clock);

        clock.phase_begin(Phase::Plan);
        let metric = self.metric();
        let n_pages = self.pages().len();
        let mut st = SearchState {
            filter,
            page_key: Vec::with_capacity(n_pages),
            order: Vec::new(),
            rank: Vec::new(),
            processed: vec![false; n_pages],
            cells: Vec::new(),
            coords: Vec::new(),
            table: DistTable::new(),
            keys: Vec::new(),
        };
        let mut heap: CandidateHeap<Item> = CandidateHeap::with_capacity(n_pages);
        for (i, meta) in self.pages().iter().enumerate() {
            let key = if meta.count == 0 {
                f64::INFINITY
            } else {
                metric.mindist_key(q, &meta.mbr)
            };
            st.page_key.push(key);
            if key.is_finite() {
                heap.push(Reverse((OrdKey(key), Item::Page(i as u32))));
            } else {
                st.processed[i] = true;
            }
        }
        // Priority order for the access-probability prefix walks.
        let mut order: Vec<u32> = (0..n_pages as u32).collect();
        order.sort_by(|&a, &b| {
            st.page_key[a as usize]
                .partial_cmp(&st.page_key[b as usize])
                .expect("keys are never NaN")
        });
        let mut rank = vec![0u32; n_pages];
        for (pos, &i) in order.iter().enumerate() {
            rank[i as usize] = pos as u32;
        }
        st.order = order;
        st.rank = rank;

        drive(
            &mut exec,
            clock,
            &mut heap,
            |exec, clock, key, item, heap| {
                match item {
                    Item::Page(p) => {
                        let p = p as usize;
                        if st.processed[p] {
                            return;
                        }
                        if exec.probes_exhausted() {
                            // `nprobes` spent: the page is scheduled away before
                            // any I/O is charged for it.
                            st.processed[p] = true;
                            exec.skip_candidates(1);
                            return;
                        }
                        if self.options().scheduled_io {
                            self.process_page_run(clock, q, p, &mut st, exec, heap);
                        } else {
                            self.process_single_page(clock, q, p, &mut st, exec, heap);
                        }
                    }
                    Item::Point(page, slot, id) => {
                        if partial {
                            // Rank by the quantized lower bound now; the exact
                            // read happens later, in one batched sweep.
                            clock.phase_begin(Phase::TopK);
                            deferred.insert(id, (page, slot));
                            exec.offer(key, id);
                            return;
                        }
                        // Refinement: unavoidable once the approximation is the
                        // pivot (Section 3.2). An entry that stays unreadable
                        // after retries is skipped (and counted): the query
                        // completes on the remaining points.
                        clock.phase_begin(Phase::Refine);
                        exec.refine_with(clock, id, |clock| {
                            self.try_read_exact_point(clock, page as usize, slot as usize)
                                .ok()
                                .map(|coords| {
                                    clock.charge_dist_evals(self.dim(), 1);
                                    metric.distance_key(&coords, q)
                                })
                        });
                    }
                }
            },
        );

        clock.phase_begin(Phase::TopK);
        let (results, mut trace) = exec.into_results(metric);
        if !partial {
            clock.phase_end();
            query_span_end(clock, &trace);
            return (results, trace);
        }

        // Rerank: provisional results from exact pages already carry true
        // distances; lower-bound-ranked candidates are refined in one
        // planned batch over the exact file (candidates that stay
        // unreadable after retries are skipped, as in the pivot path).
        clock.phase_begin(Phase::Refine);
        let mut batch: Vec<(usize, usize, u32)> = Vec::new();
        let mut rerank: Vec<(u32, f64)> = Vec::new();
        for (id, dist) in results {
            match deferred.get(&id) {
                Some(&(page, slot)) => batch.push((page as usize, slot as usize, id)),
                None => rerank.push((id, dist)),
            }
        }
        trace.refinements += batch.len() as u64;
        self.refine_batch_with(clock, &batch, |id, coords| {
            rerank.push((id, metric.key_to_distance(metric.distance_key(coords, q))));
        });
        clock.phase_begin(Phase::TopK);
        rerank.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("distances are never NaN")
                .then(a.0.cmp(&b.0))
        });
        rerank.truncate(k);
        clock.phase_end();
        query_span_end(clock, &trace);
        (rerank, trace)
    }

    /// Loads exactly one page (the "standard NN search" ablation, and the
    /// degraded path when a sweep fails). Transient faults are retried; a
    /// block that stays unreadable falls back to the exact region. Each
    /// page read consumes one unit of the `nprobes` budget; once spent,
    /// the page is scheduled away unread.
    fn process_single_page(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        p: usize,
        st: &mut SearchState<'_>,
        exec: &mut Executor,
        heap: &mut CandidateHeap<Item>,
    ) {
        let block = self.pages()[p].quant_block;
        st.processed[p] = true;
        if !exec.try_probe() {
            return;
        }
        exec.trace.runs += 1;
        clock.phase_begin(Phase::Filter);
        match read_to_vec_retry(self.quant_dev(), clock, block, 1, self.retry()) {
            Ok(buf) => self.consume_page_bytes(clock, q, p, &buf, st, exec, heap),
            Err(_) => self.fallback_page(clock, q, p, st, exec),
        }
    }

    /// The time-optimized strategy: extend the read around the pivot while
    /// the cumulated cost balance stays favorable (Section 2.1), then load
    /// the whole sequence in one sweep and process every unprocessed page
    /// in it.
    fn process_page_run(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        pivot: usize,
        st: &mut SearchState<'_>,
        exec: &mut Executor,
        heap: &mut CandidateHeap<Item>,
    ) {
        clock.phase_begin(Phase::Plan);
        let disk = *clock.disk();
        let n_pages = self.pages().len();
        let bound = exec.prune_threshold();

        // Access probability of page i (eq 2): product over its
        // higher-priority competitors — exactly the prefix of the sorted
        // order before its rank. The product collapses quickly (each
        // intersecting page holds many points), so the walk exits early
        // almost always.
        let prob = |tree: &IqTree, st: &SearchState, i: usize| -> f64 {
            if st.processed[i] {
                return 0.0;
            }
            let key = st.page_key[i];
            if key >= bound {
                return 0.0; // already prunable
            }
            let metric = tree.metric();
            let r = metric.key_to_distance(key);
            let mut p = 1.0f64;
            for &j in &st.order[..st.rank[i] as usize] {
                let j = j as usize;
                if j == i || st.processed[j] {
                    continue;
                }
                let meta = &tree.pages()[j];
                if meta.count == 0 {
                    continue;
                }
                let frac = fraction_in_ball(metric, &meta.mbr, q, r);
                if frac >= 1.0 {
                    return 0.0;
                }
                p *= (1.0 - frac).powi(meta.count as i32);
                if p < 1e-12 {
                    return 0.0;
                }
            }
            p
        };

        // `nprobes` caps how many pages will ever be decoded, so the run
        // must not be extended past what the remaining budget can use:
        // pages beyond it would be read as guaranteed-dead filler. The
        // pivot itself consumes one probe. Unlimited budgets leave the
        // extension walk untouched (exact mode stays bit-identical).
        let mut decodable_left = exec.probes_remaining().saturating_sub(1);

        // Forward extension.
        let mut last = pivot;
        let mut ccb = 0.0f64;
        let mut i = pivot + 1;
        while i < n_pages && ccb < disk.t_seek {
            let a = prob(self, st, i);
            if a > 0.0 {
                if decodable_left == 0 {
                    break;
                }
                decodable_left -= 1;
            }
            ccb += disk.t_xfer - a * (disk.t_seek + disk.t_xfer);
            if ccb < 0.0 {
                last = i;
                ccb = 0.0;
            }
            i += 1;
        }
        // Backward extension.
        let mut first = pivot;
        ccb = 0.0;
        let mut j = pivot as i64 - 1;
        while j >= 0 && ccb < disk.t_seek {
            let a = prob(self, st, j as usize);
            if a > 0.0 {
                if decodable_left == 0 {
                    break;
                }
                decodable_left -= 1;
            }
            ccb += disk.t_xfer - a * (disk.t_seek + disk.t_xfer);
            if ccb < 0.0 {
                first = j as usize;
                ccb = 0.0;
            }
            j -= 1;
        }

        // One sequential sweep over [first, last] (pages are laid out in
        // index order in the quantized file). Process the loaded pages in
        // MINDIST order, not disk order: the nearest page tightens the
        // pruning bound first, letting the rest of the run be skipped or
        // decoded against a finite bound.
        let mut members: Vec<usize> = (first..=last).filter(|&p| !st.processed[p]).collect();
        members.sort_by(|&a, &b| {
            st.page_key[a]
                .partial_cmp(&st.page_key[b])
                .expect("keys are never NaN")
        });
        let start_block = self.pages()[first].quant_block;
        let run_len = (last - first + 1) as u64;
        clock.phase_begin(Phase::Filter);
        let buf =
            match read_to_vec_retry(self.quant_dev(), clock, start_block, run_len, self.retry()) {
                Ok(buf) => buf,
                Err(_) => {
                    // One corrupt block poisons the whole ranged read: degrade
                    // to one page at a time so only the bad page pays the
                    // fallback, not the entire sweep.
                    for p in members {
                        if exec.is_pruned(st.page_key[p]) {
                            st.processed[p] = true;
                            exec.trace.pages_skipped += 1;
                            continue;
                        }
                        self.process_single_page(clock, q, p, st, exec, heap);
                    }
                    return;
                }
            };
        exec.trace.runs += 1;
        let bs = buf.len() / run_len as usize;
        for p in members {
            st.processed[p] = true;
            if exec.is_pruned(st.page_key[p]) {
                exec.trace.pages_skipped += 1;
                continue; // loaded as filler; nothing useful inside
            }
            // The run was read as one sweep, but each *decoded* page still
            // consumes a unit of the `nprobes` budget; members beyond the
            // cap stay undecoded filler.
            if !exec.try_probe() {
                continue;
            }
            let off = (p - first) * bs;
            self.consume_page_bytes(clock, q, p, &buf[off..off + bs], st, exec, heap);
        }
    }

    /// Decodes a loaded page and feeds its contents to the search: exact
    /// entries update the result set directly, approximations enter the
    /// priority list as point boxes.
    ///
    /// This is the level-2 hot loop: the page is streamed through a
    /// header-validated [`iq_quantize::QuantPageView`] and each candidate's
    /// MINDIST comes from the per-(query, grid) [`DistTable`] — no `Vec`
    /// allocations, no MBR construction, no f32 reconstruction, and
    /// bit-identical keys to the naive decode-then-`Metric` path.
    #[allow(clippy::too_many_arguments)]
    fn consume_page_bytes(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        p: usize,
        bytes: &[u8],
        st: &mut SearchState<'_>,
        exec: &mut Executor,
        heap: &mut CandidateHeap<Item>,
    ) {
        clock.phase_begin(Phase::Filter);
        let metric = self.metric();
        let view = match self.codec().try_view(bytes) {
            Ok(v) => v,
            Err(_) => {
                // The block read fine (or came from cache) but its payload
                // is garbage — corruption that slipped past the checksum
                // layer. Same degradation as an unreadable block.
                clock.note_corrupt_block();
                self.fallback_page(clock, q, p, st, exec);
                return;
            }
        };
        clock.charge_dist_evals(self.dim(), view.len() as u64);
        let SearchState {
            filter,
            cells,
            coords,
            table,
            keys,
            ..
        } = st;
        let filter = *filter;
        exec.trace.pages_processed += 1;
        if view.bits() == EXACT_BITS {
            view.for_each_entry(cells, |id, bits| {
                if filter.is_none_or(|f| f.matches(id)) {
                    coords.clear();
                    coords.extend(bits.iter().map(|&b| f32::from_bits(b)));
                    exec.offer(metric.distance_key(coords, q), id);
                }
            });
        } else {
            let meta: &PageMeta = &self.pages()[p];
            table.build(&meta.mbr, view.bits(), metric, q, view.len());
            // Whole-page decode + batch MINDIST fold: the SIMD kernels in
            // `iq_quantize::simd` unpack every entry's cells in one pass
            // and fold the per-dimension table rows lane-parallel —
            // bit-identical to the per-entry lookup loop.
            view.unpack_all(cells);
            table.mindist_keys(cells, keys);
            // No exact result is offered while filtering approximations, so
            // the pruning threshold is loop-invariant.
            let bound = exec.prune_threshold();
            for (slot, &key) in keys.iter().enumerate() {
                // Filtered-out points never enter the priority list: they
                // are neither refined nor allowed to influence the bound.
                let id = view.id(slot);
                if filter.is_none_or(|f| f.matches(id)) && key < bound {
                    exec.trace.approx_enqueued += 1;
                    heap.push(Reverse((
                        OrdKey(key),
                        Item::Point(p as u32, slot as u32, id),
                    )));
                }
            }
        }
    }

    /// Degraded path for the k-NN search: the quantized (level-2) block of
    /// page `p` could not be read or decoded. When the page has an exact
    /// (level-3) region, answer from it directly — exact rows are
    /// self-contained `(id, coords)` entries, so the page contributes at
    /// full precision, just without approximation pruning. Pages quantized
    /// at 32 bits have no level-3 backing; their points are reported lost.
    fn fallback_page(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        p: usize,
        st: &mut SearchState<'_>,
        exec: &mut Executor,
    ) {
        clock.phase_begin(Phase::Refine);
        let meta = &self.pages()[p];
        if meta.g == EXACT_BITS || meta.exact_blocks == 0 {
            exec.trace.pages_lost += 1;
            return;
        }
        let region = match self.try_read_exact_region(clock, p) {
            Ok(r) => r,
            Err(_) => {
                // Both levels unreadable: the page really is gone.
                exec.trace.pages_lost += 1;
                return;
            }
        };
        exec.trace.quant_fallbacks += 1;
        exec.trace.pages_processed += 1;
        let metric = self.metric();
        let eb = self.exact_codec().entry_bytes();
        clock.charge_dist_evals(self.dim(), u64::from(meta.count));
        let filter = st.filter;
        let coords = &mut st.coords;
        coords.resize(self.dim(), 0.0);
        for i in 0..meta.count as usize {
            let Some(bytes) = region.get(i * eb..(i + 1) * eb) else {
                exec.trace.points_skipped += 1;
                continue;
            };
            match self.exact_codec().try_decode_entry_into(bytes, coords) {
                Ok(id) => {
                    if filter.is_none_or(|f| f.matches(id)) {
                        exec.offer(metric.distance_key(coords, q), id);
                    }
                }
                Err(_) => exec.trace.points_skipped += 1,
            }
        }
    }

    /// Exact k-NN for a micro-batch of queries in one shared page walk:
    /// every quantized page is read and decoded **once** and all queries
    /// are evaluated against it in a single pass through the multi-query
    /// [`DistTableBlock`] SIMD kernels.
    ///
    /// Two phases:
    ///
    /// 1. **Filter.** Pages are popped from a heap keyed by the minimum
    ///    MINDIST over the batch. Each query `q` tracks δ_q — the k-th
    ///    smallest MAXDIST key seen so far, a certified upper bound on its
    ///    true k-th-NN key — and participates in a page only while the
    ///    page's MINDIST for `q` is within δ_q. Entries from exact
    ///    (g = 32) pages contribute true distances immediately; quantized
    ///    entries whose lower bound is within δ_q become per-query
    ///    refinement candidates. The walk stops when the popped key
    ///    exceeds every query's δ.
    /// 2. **Refine.** Per query, candidates are visited in ascending
    ///    lower-bound order until the bound proves the top-k complete;
    ///    exact-point reads are shared across the batch through a
    ///    `(page, slot)` cache, so a point refined for several queries is
    ///    fetched once.
    ///
    /// Results are exact for every query (same guarantee as
    /// [`IqTree::knn`]; ids at tied distances may differ). Corrupt pages
    /// degrade through the exact region exactly as in the single-query
    /// path.
    fn knn_multi_traced_impl(
        &self,
        clock: &mut SimClock,
        queries: &[&[f32]],
        k: usize,
        filter: Option<&Filter>,
    ) -> Vec<TracedResult> {
        let nq = queries.len();
        let metric = self.metric();
        let dim = self.dim();
        for q in queries {
            assert_eq!(q.len(), dim, "query dimensionality mismatch");
        }
        if k == 0 || self.is_empty() || filter.is_some_and(|f| f.matching() == 0) {
            return vec![(Vec::new(), QueryTrace::default()); nq];
        }
        if clock.tracing() {
            clock.span_begin("iqtree_multi");
            clock.span_attr("k", &k);
            clock.span_attr("queries", &nq);
            if let Some(f) = filter {
                clock.span_attr("filter_matches", &f.matching());
            }
        }
        clock.phase_begin(Phase::Directory);
        // One directory sweep serves the whole micro-batch.
        self.charge_directory_scan(clock);

        clock.phase_begin(Phase::Plan);
        let n_pages = self.pages().len();
        let mut page_qkey = vec![f64::INFINITY; n_pages * nq];
        let mut heap: CandidateHeap<u32> = CandidateHeap::with_capacity(n_pages);
        for (i, meta) in self.pages().iter().enumerate() {
            if meta.count == 0 {
                continue;
            }
            let mut minkey = f64::INFINITY;
            for (qi, q) in queries.iter().enumerate() {
                let key = metric.mindist_key(q, &meta.mbr);
                page_qkey[i * nq + qi] = key;
                minkey = minkey.min(key);
            }
            heap.push(Reverse((OrdKey(minkey), i as u32)));
        }

        let mut topk: Vec<TopK> = (0..nq).map(|_| TopK::new(k)).collect();
        let mut delta_heap: Vec<BinaryHeap<OrdKey>> = (0..nq).map(|_| BinaryHeap::new()).collect();
        let mut delta = vec![f64::INFINITY; nq];
        // Per-query refinement candidates: (lower-bound key, page, slot, id).
        let mut cands: Vec<Vec<(f64, u32, u32, u32)>> = (0..nq).map(|_| Vec::new()).collect();
        let mut traces = vec![QueryTrace::default(); nq];

        // Reusable page-loop scratch.
        let mut block_table = DistTableBlock::new();
        let mut dist_table = DistTable::new();
        let mut cells: Vec<u32> = Vec::new();
        let mut lo_keys: Vec<f64> = Vec::new();
        let mut hi_keys: Vec<f64> = Vec::new();
        let mut coords: Vec<f32> = Vec::new();
        let mut active: Vec<usize> = Vec::new();

        while let Some(Reverse((OrdKey(minkey), pidx))) = heap.pop() {
            let worst = delta.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if minkey > worst {
                break; // no query can still improve from any remaining page
            }
            let p = pidx as usize;
            active.clear();
            active.extend((0..nq).filter(|&qi| page_qkey[p * nq + qi] <= delta[qi]));
            if active.is_empty() {
                continue; // every query prunes this page: never read
            }
            // The active query with the smallest page key "owns" the read,
            // so summed per-query runs equal physical page reads.
            let owner = active
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    page_qkey[p * nq + a]
                        .partial_cmp(&page_qkey[p * nq + b])
                        .expect("keys are never NaN")
                })
                .expect("active is non-empty");
            traces[owner].runs += 1;
            clock.phase_begin(Phase::Filter);
            let block = self.pages()[p].quant_block;
            let Ok(buf) = read_to_vec_retry(self.quant_dev(), clock, block, 1, self.retry()) else {
                self.multi_fallback_page(
                    clock,
                    queries,
                    p,
                    &active,
                    filter,
                    &mut topk,
                    &mut delta_heap,
                    &mut delta,
                    &mut traces,
                    k,
                );
                continue;
            };
            let Ok(view) = self.codec().try_view(&buf) else {
                clock.note_corrupt_block();
                self.multi_fallback_page(
                    clock,
                    queries,
                    p,
                    &active,
                    filter,
                    &mut topk,
                    &mut delta_heap,
                    &mut delta,
                    &mut traces,
                    k,
                );
                continue;
            };
            clock.charge_dist_evals(dim, view.len() as u64 * active.len() as u64);
            for &qi in &active {
                traces[qi].pages_processed += 1;
            }
            if view.bits() == EXACT_BITS {
                view.for_each_entry(&mut cells, |id, bits| {
                    if filter.is_none_or(|f| f.matches(id)) {
                        coords.clear();
                        coords.extend(bits.iter().map(|&b| f32::from_bits(b)));
                        for &qi in &active {
                            let key = metric.distance_key(&coords, queries[qi]);
                            note_bound(&mut delta_heap[qi], &mut delta[qi], k, key);
                            topk[qi].insert(key, id);
                        }
                    }
                });
                continue;
            }
            let meta = &self.pages()[p];
            let aq: Vec<&[f32]> = active.iter().map(|&qi| queries[qi]).collect();
            if block_table.build(&meta.mbr, view.bits(), metric, &aq, view.len()) {
                // One decoded pass, all active queries per entry: contiguous
                // lane loads in the AVX2 kernel, scalar otherwise.
                view.for_each_entry_multi(
                    &block_table,
                    &mut cells,
                    &mut lo_keys,
                    &mut hi_keys,
                    |slot, id, lo, hi| {
                        if filter.is_none_or(|f| f.matches(id)) {
                            for (ai, &qi) in active.iter().enumerate() {
                                note_bound(&mut delta_heap[qi], &mut delta[qi], k, hi[ai]);
                                if lo[ai] <= delta[qi] {
                                    traces[qi].approx_enqueued += 1;
                                    cands[qi].push((lo[ai], pidx, slot as u32, id));
                                }
                            }
                        }
                    },
                );
            } else {
                // Grid too fine to materialize a block table: per-query
                // batch folds over the one shared decode.
                view.unpack_all(&mut cells);
                for &qi in &active {
                    dist_table.build(&meta.mbr, view.bits(), metric, queries[qi], view.len());
                    dist_table.bounds_keys(&cells, &mut lo_keys, &mut hi_keys);
                    for (slot, (&lo, &hi)) in lo_keys.iter().zip(&hi_keys).enumerate() {
                        let id = view.id(slot);
                        if filter.is_none_or(|f| f.matches(id)) {
                            note_bound(&mut delta_heap[qi], &mut delta[qi], k, hi);
                            if lo <= delta[qi] {
                                traces[qi].approx_enqueued += 1;
                                cands[qi].push((lo, pidx, slot as u32, id));
                            }
                        }
                    }
                }
            }
        }

        // Phase 2: per-query refinement with batch-shared exact reads.
        clock.phase_begin(Phase::Refine);
        let mut cache: HashMap<(u32, u32), Option<Vec<f32>>> = HashMap::new();
        let mut results = Vec::with_capacity(nq);
        for (qi, mut top) in topk.into_iter().enumerate() {
            let mut list = std::mem::take(&mut cands[qi]);
            list.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("keys are never NaN")
                    .then(a.3.cmp(&b.3))
            });
            for &(lo, p, slot, id) in &list {
                if top.len() == k && lo >= top.bound() {
                    break; // nothing after this lower bound can enter
                }
                let coords = cache.entry((p, slot)).or_insert_with(|| {
                    self.try_read_exact_point(clock, p as usize, slot as usize)
                        .ok()
                });
                traces[qi].refinements += 1;
                match coords {
                    Some(c) => {
                        clock.charge_dist_evals(dim, 1);
                        top.insert(metric.distance_key(c, queries[qi]), id);
                    }
                    None => traces[qi].points_skipped += 1,
                }
            }
            results.push((top.into_results(metric), traces[qi]));
        }
        clock.phase_end();
        if clock.tracing() {
            // Per-query attribution: phase times above are shared across
            // the batch, so each query gets a zero-duration child span
            // carrying its own counters; the parent carries the sums.
            let mut agg = QueryTrace::default();
            for (qi, (_, trace)) in results.iter().enumerate() {
                agg.merge(trace);
                clock.span_begin("query");
                clock.span_attr("index", &qi);
                for (name, v) in trace.fields() {
                    clock.span_count(name, v);
                }
                clock.span_end();
            }
            query_span_end(clock, &agg);
        }
        results
    }

    /// Degraded path for the multi-query search: the quantized block of
    /// page `p` could not be read or decoded, so every active query is
    /// answered from the page's exact (level-3) region at full precision —
    /// the batch analogue of [`Self::fallback_page`].
    #[allow(clippy::too_many_arguments)]
    fn multi_fallback_page(
        &self,
        clock: &mut SimClock,
        queries: &[&[f32]],
        p: usize,
        active: &[usize],
        filter: Option<&Filter>,
        topk: &mut [TopK],
        delta_heap: &mut [BinaryHeap<OrdKey>],
        delta: &mut [f64],
        traces: &mut [QueryTrace],
        k: usize,
    ) {
        clock.phase_begin(Phase::Refine);
        let meta = &self.pages()[p];
        if meta.g == EXACT_BITS || meta.exact_blocks == 0 {
            for &qi in active {
                traces[qi].pages_lost += 1;
            }
            return;
        }
        let Ok(region) = self.try_read_exact_region(clock, p) else {
            for &qi in active {
                traces[qi].pages_lost += 1;
            }
            return;
        };
        let metric = self.metric();
        let eb = self.exact_codec().entry_bytes();
        clock.charge_dist_evals(self.dim(), u64::from(meta.count) * active.len() as u64);
        let mut coords = vec![0.0f32; self.dim()];
        for i in 0..meta.count as usize {
            let Some(bytes) = region.get(i * eb..(i + 1) * eb) else {
                for &qi in active {
                    traces[qi].points_skipped += 1;
                }
                continue;
            };
            match self.exact_codec().try_decode_entry_into(bytes, &mut coords) {
                Ok(id) => {
                    if filter.is_none_or(|f| f.matches(id)) {
                        for &qi in active {
                            let key = metric.distance_key(&coords, queries[qi]);
                            note_bound(&mut delta_heap[qi], &mut delta[qi], k, key);
                            topk[qi].insert(key, id);
                        }
                    }
                }
                Err(_) => {
                    for &qi in active {
                        traces[qi].points_skipped += 1;
                    }
                }
            }
        }
        for &qi in active {
            traces[qi].quant_fallbacks += 1;
            traces[qi].pages_processed += 1;
        }
    }

    /// Level-3 fallback for window/range queries: pushes every id in page
    /// `p`'s exact region whose coordinates satisfy `accept`. Silently
    /// contributes nothing when the page has no (readable) exact backing —
    /// the corruption is already visible in the clock's I/O statistics.
    fn fallback_scan_exact(
        &self,
        clock: &mut SimClock,
        p: usize,
        out: &mut Vec<u32>,
        mut accept: impl FnMut(&[f32]) -> bool,
    ) {
        let meta = &self.pages()[p];
        if meta.g == EXACT_BITS || meta.exact_blocks == 0 {
            return;
        }
        let Ok(region) = self.try_read_exact_region(clock, p) else {
            return;
        };
        let eb = self.exact_codec().entry_bytes();
        clock.charge_dist_evals(self.dim(), u64::from(meta.count));
        let mut coords = vec![0.0f32; self.dim()];
        for i in 0..meta.count as usize {
            let Some(bytes) = region.get(i * eb..(i + 1) * eb) else {
                continue;
            };
            if let Ok(id) = self.exact_codec().try_decode_entry_into(bytes, &mut coords) {
                if accept(&coords) {
                    out.push(id);
                }
            }
        }
    }

    /// Batch-refines a known set of `(page, slot, id)` candidates: plans
    /// one optimal fetch over all exact-file blocks involved (Section 2 —
    /// the positions are known in advance), then verifies each point with
    /// `accept`. Returns the accepted ids. If the planned sweep fails even
    /// after retries, degrades to one retried read per candidate, skipping
    /// entries that stay unreadable.
    fn refine_batch(
        &self,
        clock: &mut SimClock,
        refinements: &[(usize, usize, u32)],
        mut accept: impl FnMut(&[f32]) -> bool,
    ) -> Vec<u32> {
        let mut out = Vec::new();
        self.refine_batch_with(clock, refinements, |id, coords| {
            if accept(coords) {
                out.push(id);
            }
        });
        out
    }

    /// Core of [`Self::refine_batch`]: plans the fetch, then calls `visit`
    /// with each candidate's id and exact coordinates. Also the engine of
    /// the `refine_factor` partial-refinement rerank in k-NN search.
    fn refine_batch_with(
        &self,
        clock: &mut SimClock,
        refinements: &[(usize, usize, u32)],
        mut visit: impl FnMut(u32, &[f32]),
    ) {
        if refinements.is_empty() {
            return;
        }
        let bs = self.block_size();
        let pb = self.exact_codec().entry_bytes();
        // Every block any candidate touches, in disk order.
        let mut positions: Vec<u64> = Vec::with_capacity(refinements.len() * 2);
        for &(page, slot, _) in refinements {
            let meta = &self.pages()[page];
            let (first, nblocks, _) = self.exact_codec().entry_span(slot, bs);
            for b in 0..nblocks {
                positions.push(meta.exact_start + first + b);
            }
        }
        positions.sort_unstable();
        positions.dedup();
        let fetched = match self.retry().run(clock, |clock| {
            fetch::fetch_blocks(self.exact_dev(), clock, &positions)
        }) {
            Ok(f) => f,
            Err(_) => {
                for &(page, slot, id) in refinements {
                    if let Ok(coords) = self.try_read_exact_point(clock, page, slot) {
                        clock.charge_dist_evals(self.dim(), 1);
                        visit(id, &coords);
                    }
                }
                return;
            }
        };
        let block_bytes = |pos: u64| -> Option<&[u8]> {
            let (run, buf) = fetched.iter().find(|(run, _)| run.contains(pos))?;
            let off = ((pos - run.start) as usize) * bs;
            buf.get(off..off + bs)
        };
        let mut point_buf = vec![0u8; pb];
        let mut coords = vec![0.0f32; self.dim()];
        for &(page, slot, id) in refinements {
            let meta = &self.pages()[page];
            let (first, nblocks, byte_off) = self.exact_codec().entry_span(slot, bs);
            // A block missing from the plan or a payload that fails to
            // decode is corruption, not a crash: degrade that candidate to
            // one retried single-block read, skipping it if it stays
            // unreadable (the damage is visible in the clock statistics).
            let mut planned = true;
            if nblocks == 1 {
                match block_bytes(meta.exact_start + first) {
                    Some(bytes) => point_buf.copy_from_slice(&bytes[byte_off..byte_off + pb]),
                    None => planned = false,
                }
            } else {
                // Straddles a block boundary: stitch.
                let mut cursor = 0usize;
                let mut off = byte_off;
                for b in 0..nblocks {
                    let Some(bytes) = block_bytes(meta.exact_start + first + b) else {
                        planned = false;
                        break;
                    };
                    let take = (bs - off).min(pb - cursor);
                    point_buf[cursor..cursor + take].copy_from_slice(&bytes[off..off + take]);
                    cursor += take;
                    off = 0;
                }
            }
            let decoded = planned
                && self
                    .exact_codec()
                    .try_decode_entry_into(&point_buf, &mut coords)
                    .is_ok();
            if !decoded {
                match self.try_read_exact_point(clock, page, slot) {
                    Ok(read) => coords.copy_from_slice(&read),
                    Err(_) => continue,
                }
            }
            clock.charge_dist_evals(self.dim(), 1);
            visit(id, &coords);
        }
    }

    /// All points inside the query window (unordered ids) — the paper's
    /// Section 2 case where the page set is known in advance: candidate
    /// pages are exactly those whose MBR intersects the window, loaded with
    /// the optimal batch-fetch schedule of Figure 1. A point is refined
    /// only when its cell box straddles the window boundary.
    ///
    /// # Panics
    /// Panics if the window's dimensionality mismatches.
    pub fn window(&self, clock: &mut SimClock, window: &iq_geometry::Mbr) -> Vec<u32> {
        assert_eq!(window.dim(), self.dim(), "window dimensionality mismatch");
        if self.is_empty() {
            return Vec::new();
        }
        clock.phase_begin(Phase::Directory);
        self.charge_directory_scan(clock);
        clock.phase_begin(Phase::Plan);
        let candidates: Vec<usize> = self
            .pages()
            .iter()
            .enumerate()
            .filter(|(_, m)| m.count > 0 && m.mbr.intersects(window))
            .map(|(i, _)| i)
            .collect();
        let positions: Vec<u64> = candidates
            .iter()
            .map(|&i| self.pages()[i].quant_block)
            .collect();
        // A failed sweep (corrupt block in the plan) degrades to one
        // retried read per page; a page whose block stays unreadable is
        // answered from its exact region.
        clock.phase_begin(Phase::Filter);
        let fetched = self
            .retry()
            .run(clock, |clock| {
                fetch::fetch_blocks(self.quant_dev(), clock, &positions)
            })
            .ok();
        let bs = self.codec().block_size();
        let mut out = Vec::new();
        let mut refinements: Vec<(usize, usize, u32)> = Vec::new();
        // Reusable per-query scratch: the page loop below is allocation-free
        // in the steady state.
        let mut cells: Vec<u32> = Vec::new();
        let mut coords: Vec<f32> = Vec::new();
        let mut flags: Vec<u8> = Vec::new();
        let mut matches: Vec<CellMatch> = Vec::new();
        let mut wtable = WindowTable::new();
        for &p in &candidates {
            let block = self.pages()[p].quant_block;
            // A candidate missing from the sweep (or a failed sweep) falls
            // back to one retried read; a page whose block stays unreadable
            // is answered from its exact region.
            let planned = fetched.as_ref().and_then(|fetched| {
                let (run, buf) = fetched.iter().find(|(run, _)| run.contains(block))?;
                let off = ((block - run.start) as usize) * bs;
                buf.get(off..off + bs)
            });
            let reread;
            let bytes = match planned {
                Some(b) => Some(b),
                None => {
                    reread = read_to_vec_retry(self.quant_dev(), clock, block, 1, self.retry());
                    reread.as_deref().ok()
                }
            };
            let Some(view) = bytes.and_then(|b| self.codec().try_view(b).ok()) else {
                self.fallback_scan_exact(clock, p, &mut out, |coords| {
                    window.contains_point(coords)
                });
                continue;
            };
            clock.charge_dist_evals(self.dim(), view.len() as u64);
            if view.bits() == EXACT_BITS {
                view.for_each_entry(&mut cells, |id, bits| {
                    coords.clear();
                    coords.extend(bits.iter().map(|&b| f32::from_bits(b)));
                    if window.contains_point(&coords) {
                        out.push(id);
                    }
                });
            } else {
                wtable.build(&self.pages()[p].mbr, view.bits(), window, view.len());
                // Whole-page classification through the SIMD flag-AND
                // kernel — bit-identical to per-entry `classify`.
                view.unpack_all(&mut cells);
                wtable.classify_batch(&cells, &mut flags, &mut matches);
                for (slot, &m) in matches.iter().enumerate() {
                    match m {
                        CellMatch::Disjoint => {}
                        CellMatch::Inside => out.push(view.id(slot)),
                        CellMatch::Partial => refinements.push((p, slot, view.id(slot))),
                    }
                }
            }
        }
        clock.phase_begin(Phase::Refine);
        out.extend(self.refine_batch(clock, &refinements, |coords| window.contains_point(coords)));
        clock.phase_end();
        out
    }

    /// All points within `radius` of `q` (unordered ids).
    ///
    /// The set of candidate pages is known up front, so the optimal batch
    /// fetch of Section 2 (Figure 1) loads them with the minimal
    /// seek/over-read schedule. Points whose cell box lies entirely within
    /// the radius are accepted without refinement.
    pub fn range(&self, clock: &mut SimClock, q: &[f32], radius: f64) -> Vec<u32> {
        assert_eq!(q.len(), self.dim(), "query dimensionality mismatch");
        if self.is_empty() {
            return Vec::new();
        }
        clock.phase_begin(Phase::Directory);
        self.charge_directory_scan(clock);
        clock.phase_begin(Phase::Plan);
        let metric = self.metric();
        let key_r = metric.distance_to_key(radius);

        let candidates: Vec<usize> = self
            .pages()
            .iter()
            .enumerate()
            .filter(|(_, m)| m.count > 0 && metric.mindist_key(q, &m.mbr) <= key_r)
            .map(|(i, _)| i)
            .collect();
        let positions: Vec<u64> = candidates
            .iter()
            .map(|&i| self.pages()[i].quant_block)
            .collect();

        let mut out = Vec::new();
        let mut refinements: Vec<(usize, usize, u32)> = Vec::new(); // (page, slot, id)
        clock.phase_begin(Phase::Filter);
        let fetched = self
            .retry()
            .run(clock, |clock| {
                fetch::fetch_blocks(self.quant_dev(), clock, &positions)
            })
            .ok();
        let bs = self.codec().block_size();
        // Reusable per-query scratch: the page loop below is allocation-free
        // in the steady state.
        let mut cells: Vec<u32> = Vec::new();
        let mut coords: Vec<f32> = Vec::new();
        let mut lo_keys: Vec<f64> = Vec::new();
        let mut hi_keys: Vec<f64> = Vec::new();
        let mut table = DistTable::new();
        for &p in &candidates {
            let block = self.pages()[p].quant_block;
            // Same degradation ladder as `window`: plan miss → single
            // retried read → exact-region fallback.
            let planned = fetched.as_ref().and_then(|fetched| {
                let (run, buf) = fetched.iter().find(|(run, _)| run.contains(block))?;
                let off = ((block - run.start) as usize) * bs;
                buf.get(off..off + bs)
            });
            let reread;
            let bytes = match planned {
                Some(b) => Some(b),
                None => {
                    reread = read_to_vec_retry(self.quant_dev(), clock, block, 1, self.retry());
                    reread.as_deref().ok()
                }
            };
            let Some(view) = bytes.and_then(|b| self.codec().try_view(b).ok()) else {
                self.fallback_scan_exact(clock, p, &mut out, |coords| {
                    metric.distance_key(coords, q) <= key_r
                });
                continue;
            };
            clock.charge_dist_evals(self.dim(), view.len() as u64);
            if view.bits() == EXACT_BITS {
                view.for_each_entry(&mut cells, |id, bits| {
                    coords.clear();
                    coords.extend(bits.iter().map(|&b| f32::from_bits(b)));
                    if metric.distance_key(&coords, q) <= key_r {
                        out.push(id);
                    }
                });
            } else {
                table.build(&self.pages()[p].mbr, view.bits(), metric, q, view.len());
                // Batch fold: MINDIST and MAXDIST keys for the whole page
                // in one SIMD pass. Both comparisons stay in the key
                // domain, so a box accepted without refinement satisfies
                // the same `distance_key <= key_r` predicate refinement
                // would have checked.
                view.unpack_all(&mut cells);
                table.bounds_keys(&cells, &mut lo_keys, &mut hi_keys);
                for (slot, (&lo_key, &hi_key)) in lo_keys.iter().zip(&hi_keys).enumerate() {
                    if lo_key <= key_r {
                        if hi_key <= key_r {
                            out.push(view.id(slot)); // box fully inside: no refinement
                        } else {
                            refinements.push((p, slot, view.id(slot)));
                        }
                    }
                }
            }
        }
        clock.phase_begin(Phase::Refine);
        out.extend(self.refine_batch(clock, &refinements, |coords| {
            metric.distance_key(coords, q) <= key_r
        }));
        clock.phase_end();
        out
    }

    /// The cost model's prediction of what a `k`-NN query against the
    /// current page configuration will do: how many second-level pages it
    /// reads (eqs 16–18, k-NN sphere per footnote 1) and how long the three
    /// levels take together (eq 23 with the k-NN refinement expectation of
    /// eq 15 summed over live pages).
    ///
    /// This is the "predicted" side of [`iq_obs::CostAudit`]; the observed
    /// side is the [`QueryTrace`] / [`SimClock`] of a real query.
    pub fn predict_knn_cost(&self, disk: &iq_storage::DiskModel, k: usize) -> CostPrediction {
        self.predict_knn_cost_opts(disk, k, &QueryOptions::EXACT)
    }

    /// [`IqTree::predict_knn_cost`] under approximation [`QueryOptions`]:
    /// `nprobes` caps the expected second-level page count, `refine_factor`
    /// caps the refinement term at `k × refine_factor` exact reads, and a
    /// `time_budget` clips the total. `epsilon` is modeled conservatively
    /// (no reduction): the ε savings depend on the data distribution near
    /// the query, which the page-level model cannot see.
    pub fn predict_knn_cost_opts(
        &self,
        disk: &iq_storage::DiskModel,
        k: usize,
        opts: &QueryOptions,
    ) -> CostPrediction {
        let k = k.max(1);
        let live: Vec<&PageMeta> = self.pages().iter().filter(|p| p.count > 0).collect();
        let n = live.len();
        let mut pages = iq_cost::expected_pages_accessed_knn(self.dir_params(), n, k);
        if let Some(m) = opts.nprobes {
            pages = pages.min(m as f64);
        }
        let mut refine_pages = 0.0;
        for meta in &live {
            let sides: Vec<f32> = (0..self.dim()).map(|i| meta.mbr.extent(i) as f32).collect();
            refine_pages += iq_cost::expected_refinements_knn(
                self.refine_params(),
                &sides,
                meta.count as usize,
                meta.g,
                k,
            );
        }
        if opts.refine_factor >= 2 {
            refine_pages = refine_pages.min((k as f64) * f64::from(opts.refine_factor));
        }
        let mut io_seconds = iq_cost::first_level_cost(self.dir_params(), disk, n)
            + iq_cost::directory::second_level_cost_for_k(disk, n, pages)
            + refine_pages * (disk.t_seek + disk.t_xfer);
        if let Some(b) = opts.time_budget {
            io_seconds = io_seconds.min(b);
        }
        CostPrediction {
            pages,
            io_seconds,
            filter_pages: pages,
            refine_pages,
        }
    }
}

/// The IQ-tree behind the engine-layer query trait: the same searches the
/// inherent methods expose, callable through `&dyn AccessMethod` alongside
/// the scan, VA-file and X-tree baselines.
impl AccessMethod for IqTree {
    fn name(&self) -> &'static str {
        "iqtree"
    }

    fn dim(&self) -> usize {
        IqTree::dim(self)
    }

    fn len(&self) -> usize {
        IqTree::len(self)
    }

    fn metric(&self) -> iq_geometry::Metric {
        IqTree::metric(self)
    }

    fn knn_opts_traced(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
        filter: Option<&Filter>,
        opts: &QueryOptions,
    ) -> (Vec<(u32, f64)>, QueryTrace) {
        // True pushdown into the level-2 filter phase — no top-up rounds.
        self.knn_traced_impl(clock, q, k, filter, opts)
    }

    /// Micro-batches route into the shared multi-query page walk — each
    /// level-2 page is read and decoded once for the whole batch — when
    /// the search is exact and the batch fits the block-table lane budget.
    /// Approximate searches (the knobs are per-query semantics a shared
    /// walk cannot honor) and degenerate batches take the per-query path.
    fn knn_multi_opts_traced(
        &self,
        clock: &mut SimClock,
        queries: &[&[f32]],
        k: usize,
        filter: Option<&Filter>,
        opts: &QueryOptions,
    ) -> Vec<TracedResult> {
        if opts.is_exact() && queries.len() > 1 && queries.len() <= MAX_BLOCK_QUERIES {
            return self.knn_multi_traced_impl(clock, queries, k, filter);
        }
        queries
            .iter()
            .map(|q| {
                let mut c = clock.clone();
                c.reset();
                let out = self.knn_opts_traced(&mut c, q, k, filter, opts);
                clock.absorb(&c);
                out
            })
            .collect()
    }

    fn range(&self, clock: &mut SimClock, q: &[f32], radius: f64) -> Vec<u32> {
        IqTree::range(self, clock, q, radius)
    }

    fn window(&self, clock: &mut SimClock, window: &iq_geometry::Mbr) -> Vec<u32> {
        IqTree::window(self, clock, window)
    }

    /// The trait has no disk handle, so the prediction prices I/O on the
    /// default [`iq_storage::DiskModel`] — the model every [`SimClock`] in
    /// the workspace defaults to. Callers with a custom disk should use
    /// [`IqTree::predict_knn_cost_opts`] directly.
    fn cost_prediction(&self, k: usize, opts: &QueryOptions) -> Option<CostPrediction> {
        Some(self.predict_knn_cost_opts(&iq_storage::DiskModel::default(), k, opts))
    }
}

#[cfg(test)]
mod tests {
    use crate::tests::{build_tree, random_ds};
    use crate::IqTreeOptions;
    use iq_geometry::{Dataset, Metric};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn brute_knn(ds: &Dataset, q: &[f32], k: usize) -> Vec<(u32, f64)> {
        let m = Metric::Euclidean;
        let mut all: Vec<(u32, f64)> = (0..ds.len())
            .map(|i| (i as u32, m.distance(ds.point(i), q)))
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
        all.truncate(k);
        all
    }

    #[test]
    fn nearest_matches_brute_force_all_variants() {
        let ds = random_ds(1_200, 6, 11);
        let variants = [
            IqTreeOptions::default(),
            IqTreeOptions {
                scheduled_io: false,
                ..Default::default()
            },
            IqTreeOptions {
                quantize: false,
                ..Default::default()
            },
            IqTreeOptions {
                quantize: false,
                scheduled_io: false,
                ..Default::default()
            },
        ];
        for (vi, opts) in variants.into_iter().enumerate() {
            let (tree, mut clock) = build_tree(&ds, opts, 1024);
            let mut rng = StdRng::seed_from_u64(42);
            for t in 0..15 {
                let q: Vec<f32> = (0..6).map(|_| rng.gen()).collect();
                let (_, d) = tree.nearest(&mut clock, &q).expect("non-empty");
                let expect = brute_knn(&ds, &q, 1)[0];
                assert!(
                    (d - expect.1).abs() < 1e-6,
                    "variant {vi}, query {t}: {d} vs {}",
                    expect.1
                );
            }
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let ds = random_ds(900, 5, 12);
        let (tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 1024);
        let q = vec![0.37f32; 5];
        let got = tree.knn(&mut clock, &q, 11);
        let expect = brute_knn(&ds, &q, 11);
        assert_eq!(got.len(), 11);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g.1 - e.1).abs() < 1e-6, "{got:?}");
        }
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn range_matches_brute_force() {
        let ds = random_ds(1_000, 4, 13);
        let (tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 512);
        for (q, r) in [
            (vec![0.5f32; 4], 0.3),
            (vec![0.1f32; 4], 0.5),
            (vec![0.9f32; 4], 0.05),
        ] {
            let mut got = tree.range(&mut clock, &q, r);
            got.sort_unstable();
            let mut expect: Vec<u32> = (0..ds.len() as u32)
                .filter(|&i| Metric::Euclidean.distance(ds.point(i as usize), &q) <= r)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "r={r}");
        }
    }

    #[test]
    fn scheduled_io_reduces_seeks() {
        // In high dimensions many pages must be read; the scheduler should
        // turn most of the random accesses into sweeps.
        let ds = random_ds(6_000, 12, 14);
        let (t_std, mut c_std) = build_tree(
            &ds,
            IqTreeOptions {
                scheduled_io: false,
                ..Default::default()
            },
            1024,
        );
        let (t_opt, mut c_opt) = build_tree(&ds, IqTreeOptions::default(), 1024);
        let q = vec![0.5f32; 12];
        t_std.nearest(&mut c_std, &q);
        t_opt.nearest(&mut c_opt, &q);
        assert!(
            c_opt.stats().seeks < c_std.stats().seeks,
            "opt {} vs std {} seeks",
            c_opt.stats().seeks,
            c_std.stats().seeks
        );
        assert!(
            c_opt.io_time() <= c_std.io_time(),
            "opt {} vs std {} io seconds",
            c_opt.io_time(),
            c_std.io_time()
        );
    }

    #[test]
    fn empty_k_returns_empty() {
        let ds = random_ds(100, 3, 15);
        let (tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 512);
        assert!(tree.knn(&mut clock, &[0.5, 0.5, 0.5], 0).is_empty());
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let ds = random_ds(50, 3, 16);
        let (tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 512);
        let got = tree.knn(&mut clock, &[0.5, 0.5, 0.5], 500);
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn maximum_metric_nearest() {
        let ds = random_ds(700, 5, 17);
        let mut clock = iq_storage::SimClock::default();
        let tree = crate::IqTree::build(
            &ds,
            Metric::Maximum,
            IqTreeOptions::default(),
            || Box::new(iq_storage::MemDevice::new(1024)),
            &mut clock,
        );
        let q = vec![0.6f32; 5];
        let (_, d) = tree.nearest(&mut clock, &q).expect("non-empty");
        let expect = (0..ds.len())
            .map(|i| Metric::Maximum.distance(ds.point(i), &q))
            .fold(f64::INFINITY, f64::min);
        assert!((d - expect).abs() < 1e-6);
    }

    #[test]
    fn query_trace_reports_work() {
        let ds = random_ds(3_000, 8, 19);
        let (tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 1024);
        let q = vec![0.5f32; 8];
        let (results, trace) = tree.knn_traced(&mut clock, &q, 3);
        assert_eq!(results.len(), 3);
        assert!(trace.pages_processed >= 1);
        assert!(trace.runs >= 1);
        assert!(trace.runs <= clock.stats().seeks + 1);
        // With quantized pages, some approximations must have been
        // enqueued, and the NN itself requires at least one refinement
        // unless its page was exact.
        let any_quantized = tree.pages().iter().any(|p| p.g < 32);
        if any_quantized {
            assert!(trace.approx_enqueued > 0);
        }
        // Trace is consistent with the page universe.
        assert!(trace.pages_processed + trace.pages_skipped <= tree.num_pages() as u64);
    }

    #[test]
    fn standard_mode_traces_one_run_per_page() {
        let ds = random_ds(2_000, 6, 20);
        let opts = IqTreeOptions {
            scheduled_io: false,
            ..Default::default()
        };
        let (tree, mut clock) = build_tree(&ds, opts, 1024);
        let (_, trace) = tree.knn_traced(&mut clock, &[0.3f32; 6], 1);
        assert_eq!(
            trace.runs, trace.pages_processed,
            "one random read per page"
        );
        assert_eq!(trace.pages_skipped, 0);
    }

    #[test]
    fn knn_phase_times_cover_total_query_cost() {
        let ds = random_ds(3_000, 8, 21);
        let (tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 1024);
        let (results, _) = tree.knn_traced(&mut clock, &[0.4f32; 8], 5);
        assert_eq!(results.len(), 5);
        let phases = clock.phase_times();
        // Every charge inside knn_traced happens inside an open phase, so
        // the per-phase sim times account for the whole query exactly.
        let total = clock.total_time();
        assert!(total > 0.0);
        assert!(
            (phases.total_sim() - total).abs() <= 1e-12 * total.max(1.0),
            "phases {} vs clock {total}",
            phases.total_sim()
        );
        // The level-2 filter did real work, and so did the directory sweep.
        assert!(phases.sim[iq_obs::Phase::Directory.index()] > 0.0);
        assert!(phases.sim[iq_obs::Phase::Filter.index()] > 0.0);
    }

    #[test]
    fn window_and_range_phase_times_cover_total_cost() {
        let ds = random_ds(1_500, 4, 22);
        let (tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 512);
        tree.range(&mut clock, &[0.5f32; 4], 0.25);
        let total = clock.total_time();
        assert!(total > 0.0);
        assert!((clock.phase_times().total_sim() - total).abs() <= 1e-12 * total);
        clock.reset();
        let w = iq_geometry::Mbr::from_bounds(vec![0.2; 4], vec![0.6; 4]);
        tree.window(&mut clock, &w);
        let total = clock.total_time();
        assert!(total > 0.0);
        assert!((clock.phase_times().total_sim() - total).abs() <= 1e-12 * total);
    }

    #[test]
    fn cost_prediction_is_sane() {
        use iq_engine::AccessMethod;
        let ds = random_ds(2_000, 8, 23);
        let (tree, _) = build_tree(&ds, IqTreeOptions::default(), 1024);
        let disk = iq_storage::DiskModel::default();
        let base = tree.predict_knn_cost(&disk, 1).pages;
        for k in [1usize, 5, 25] {
            let p = tree.predict_knn_cost(&disk, k);
            assert!(p.pages >= base, "k={k}");
            assert!(p.pages >= 1.0 && p.pages <= tree.num_pages() as f64);
            assert!(p.io_seconds.is_finite() && p.io_seconds > 0.0);
        }
        // The trait hook reports the same pages as the inherent method on
        // the default disk.
        let via_trait = AccessMethod::cost_prediction(&tree, 5, &iq_engine::QueryOptions::EXACT)
            .expect("iq-tree has a model");
        assert_eq!(via_trait.pages, tree.predict_knn_cost(&disk, 5).pages);

        // Knobs cap the prediction from their respective sides.
        let opts = iq_engine::QueryOptions {
            nprobes: Some(2),
            refine_factor: 2,
            time_budget: Some(1e-4),
            ..iq_engine::QueryOptions::EXACT
        };
        let capped = tree.predict_knn_cost_opts(&disk, 25, &opts);
        let exact = tree.predict_knn_cost(&disk, 25);
        assert!(capped.pages <= exact.pages.min(2.0));
        assert!(capped.io_seconds <= exact.io_seconds.min(1e-4));
    }

    /// Sorts by (distance bits, id) so tied distances compare stably
    /// across paths that break ties differently.
    fn canon(mut hits: Vec<(u32, f64)>) -> Vec<(u64, u32)> {
        let mut keyed: Vec<(u64, u32)> = hits.drain(..).map(|(id, d)| (d.to_bits(), id)).collect();
        keyed.sort_unstable();
        keyed
    }

    #[test]
    fn multi_query_knn_matches_single_query_path() {
        use iq_engine::AccessMethod;
        let ds = random_ds(2_500, 6, 31);
        let (tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 1024);
        let mut rng = StdRng::seed_from_u64(77);
        let queries: Vec<Vec<f32>> = (0..7)
            .map(|_| (0..6).map(|_| rng.gen()).collect())
            .collect();
        let refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
        let mut mc = iq_storage::SimClock::default();
        let multi =
            tree.knn_multi_opts_traced(&mut mc, &refs, 9, None, &iq_engine::QueryOptions::EXACT);
        assert_eq!(multi.len(), queries.len());
        for (q, (got, trace)) in queries.iter().zip(&multi) {
            let want = tree.knn(&mut clock, q, 9);
            assert_eq!(canon(got.clone()), canon(want), "distances must be exact");
            assert!(trace.pages_processed >= 1);
        }
        // The shared walk reads each page at most once for the whole
        // batch: summed runs cannot exceed the page universe.
        let runs: u64 = multi.iter().map(|(_, t)| t.runs).sum();
        assert!(runs <= tree.num_pages() as u64);
    }

    #[test]
    fn multi_query_knn_respects_filter() {
        use iq_engine::AccessMethod;
        let ds = random_ds(1_200, 5, 33);
        let (tree, _) = build_tree(&ds, IqTreeOptions::default(), 1024);
        let filter = iq_engine::Filter::from_fn(ds.len(), |id| id % 3 == 0);
        let queries = [vec![0.3f32; 5], vec![0.7f32; 5], vec![0.1f32; 5]];
        let refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
        let mut mc = iq_storage::SimClock::default();
        let multi = tree.knn_multi_opts_traced(
            &mut mc,
            &refs,
            6,
            Some(&filter),
            &iq_engine::QueryOptions::EXACT,
        );
        for (q, (got, _)) in queries.iter().zip(&multi) {
            assert!(got.iter().all(|&(id, _)| id % 3 == 0));
            let mut sc = iq_storage::SimClock::default();
            let want = tree.knn_filtered(&mut sc, q, 6, Some(&filter));
            assert_eq!(canon(got.clone()), canon(want));
        }
    }

    #[test]
    fn multi_query_knn_k_larger_than_n_returns_all() {
        use iq_engine::AccessMethod;
        let ds = random_ds(60, 3, 35);
        let (tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 512);
        let queries = [vec![0.2f32; 3], vec![0.8f32; 3]];
        let refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
        let multi = tree.knn_multi_opts_traced(
            &mut clock,
            &refs,
            500,
            None,
            &iq_engine::QueryOptions::EXACT,
        );
        for (got, _) in &multi {
            assert_eq!(got.len(), 60);
        }
    }

    #[test]
    fn query_cost_is_deterministic() {
        let ds = random_ds(2_000, 8, 18);
        let q = vec![0.42f32; 8];
        let (t1, mut c1) = build_tree(&ds, IqTreeOptions::default(), 1024);
        let (t2, mut c2) = build_tree(&ds, IqTreeOptions::default(), 1024);
        t1.nearest(&mut c1, &q);
        t2.nearest(&mut c2, &q);
        assert_eq!(c1.io_time(), c2.io_time());
        assert_eq!(c1.stats(), c2.stats());
    }
}
