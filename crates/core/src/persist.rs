//! Persistence: the versioned on-disk format and reopening an IQ-tree
//! from its three files.
//!
//! Logical block 0 of the directory file holds the **superblock**: magic,
//! format version, logical block size, dimension, metric, page and point
//! counts, the lengths of the other two level files and a CRC32 over the
//! directory entry payload (which starts at logical block 1). Every block
//! of every file additionally carries a per-block CRC32 maintained by
//! [`ChecksummedDevice`], verified on every read.
//!
//! [`IqTree::open`] validates all of it and returns a typed [`IqError`]
//! instead of panicking: a truncated file, a version from the future, a
//! flipped bit in the directory or metadata that disagrees with the files
//! it describes all surface as distinct, inspectable errors.
//!
//! [`ChecksummedDevice`]: iq_storage::ChecksummedDevice
//! [`FileDevice`]: iq_storage::FileDevice

use crate::{dir_entry_bytes, IqTree, IqTreeOptions, PageMeta};
use iq_cost::{DirectoryParams, RefineParams};
use iq_geometry::{Mbr, Metric};
use iq_quantize::{ExactPageCodec, QuantizedPageCodec, EXACT_BITS};
use iq_storage::{crc32, read_to_vec_retry, BlockDevice, IqError, IqResult, SimClock};

/// File magic at the start of the superblock.
pub const SUPERBLOCK_MAGIC: [u8; 8] = *b"IQTRIDX\0";

/// Current on-disk format version. Version 1 was the headerless,
/// unchecksummed layout; version 2 added the superblock, per-block CRCs
/// and id-prefixed exact entries; version 3 added the superblock
/// generation (bumped by every checkpoint) for WAL-era disambiguation.
/// Version-2 indexes still open — read-only, since their updates would
/// not be crash-consistent under the new protocol.
pub const FORMAT_VERSION: u32 = 3;

/// Oldest on-disk format this build still reads (read-only).
pub const MIN_READ_VERSION: u32 = 2;

/// Serialized size of the superblock payload (version 3; version 2 lacks
/// the trailing generation).
const SUPERBLOCK_BYTES: usize = 8 + 4 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 4 + 8;

fn metric_code(metric: Metric) -> u8 {
    match metric {
        Metric::Euclidean => 0,
        Metric::Maximum => 1,
        Metric::Manhattan => 2,
    }
}

fn metric_from_code(code: u8) -> Option<Metric> {
    match code {
        0 => Some(Metric::Euclidean),
        1 => Some(Metric::Maximum),
        2 => Some(Metric::Manhattan),
        _ => None,
    }
}

/// The decoded header in logical block 0 of the directory file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Superblock {
    /// On-disk format version this header was decoded from (or will be
    /// encoded as — [`IqTree`] always writes [`FORMAT_VERSION`]).
    pub version: u32,
    /// Logical block size all three files share.
    pub block_size: u32,
    /// Dimensionality of the indexed points.
    pub dim: u32,
    /// Metric the index was built for.
    pub metric: Metric,
    /// Number of directory entries (= quantized pages).
    pub n_pages: u64,
    /// Total number of indexed points.
    pub n_points: u64,
    /// Length of the quantized (level-2) file in logical blocks.
    pub quant_blocks: u64,
    /// Length of the exact (level-3) file in logical blocks.
    pub exact_blocks: u64,
    /// CRC32 over the directory entry payload (blocks 1..).
    pub dir_crc: u32,
    /// Checkpoint generation (version 3+; 0 for version-2 indexes). The
    /// WAL restarts its sequence numbers after every checkpoint, so the
    /// generation tells recovery which era a log belongs to.
    pub generation: u64,
}

impl Superblock {
    /// Serializes into one logical block of `bs` bytes (zero-padded).
    pub fn encode(&self, bs: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(bs);
        out.extend_from_slice(&SUPERBLOCK_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.block_size.to_le_bytes());
        out.extend_from_slice(&self.dim.to_le_bytes());
        out.extend_from_slice(&u32::from(metric_code(self.metric)).to_le_bytes());
        out.extend_from_slice(&self.n_pages.to_le_bytes());
        out.extend_from_slice(&self.n_points.to_le_bytes());
        out.extend_from_slice(&self.quant_blocks.to_le_bytes());
        out.extend_from_slice(&self.exact_blocks.to_le_bytes());
        out.extend_from_slice(&self.dir_crc.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        debug_assert_eq!(out.len(), SUPERBLOCK_BYTES);
        assert!(out.len() <= bs, "block size {bs} too small for superblock");
        out.resize(bs, 0);
        out
    }

    /// Decodes and validates a superblock from the bytes of logical
    /// block 0 (magic, version and metric code are checked; everything
    /// else is the caller's to cross-check against the actual files).
    pub fn decode(block: &[u8]) -> IqResult<Self> {
        if block.len() < SUPERBLOCK_BYTES {
            return Err(IqError::Superblock {
                detail: format!(
                    "block of {} bytes cannot hold a {SUPERBLOCK_BYTES}-byte superblock",
                    block.len()
                ),
            });
        }
        if block[..8] != SUPERBLOCK_MAGIC {
            return Err(IqError::Superblock {
                detail: format!("bad magic {:02x?} (not an IQ-tree index)", &block[..8]),
            });
        }
        let u32_at = |o: usize| u32::from_le_bytes(block[o..o + 4].try_into().expect("4 bytes"));
        let u64_at = |o: usize| u64::from_le_bytes(block[o..o + 8].try_into().expect("8 bytes"));
        let version = u32_at(8);
        if !(MIN_READ_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(IqError::Version {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let metric_raw = u32_at(20);
        let metric = u8::try_from(metric_raw)
            .ok()
            .and_then(metric_from_code)
            .ok_or_else(|| IqError::Superblock {
                detail: format!("unknown metric code {metric_raw}"),
            })?;
        Ok(Self {
            version,
            block_size: u32_at(12),
            dim: u32_at(16),
            metric,
            n_pages: u64_at(24),
            n_points: u64_at(32),
            quant_blocks: u64_at(40),
            exact_blocks: u64_at(48),
            dir_crc: u32_at(56),
            // Version 2 predates the generation field; its bytes at offset
            // 60 are zero padding either way.
            generation: if version >= 3 { u64_at(60) } else { 0 },
        })
    }
}

fn superblock_err(detail: String) -> IqError {
    IqError::Superblock { detail }
}

impl IqTree {
    /// Opens an IQ-tree whose three files already exist (e.g. created by a
    /// previous [`IqTree::build`] against [`FileDevice`]s).
    ///
    /// The superblock is read from logical block 0 of the directory file
    /// and validated against the caller's expectations and the actual file
    /// lengths; the entry payload (blocks 1..) is then read sequentially,
    /// CRC-checked as a whole against the superblock and decoded with
    /// per-entry validation. Any inconsistency — wrong magic, a format
    /// version from the future, a failed block or payload checksum, an
    /// entry pointing outside its file — is returned as the matching
    /// [`IqError`] variant. When `opts.cache_blocks` is set, each device
    /// is wrapped in a buffer pool exactly as [`IqTree::build`] would.
    ///
    /// [`FileDevice`]: iq_storage::FileDevice
    pub fn open(
        dim: usize,
        metric: Metric,
        opts: IqTreeOptions,
        dir: Box<dyn BlockDevice>,
        quant: Box<dyn BlockDevice>,
        exact: Box<dyn BlockDevice>,
        clock: &mut SimClock,
    ) -> IqResult<Self> {
        let dir = crate::wrap_device(dir, opts.cache_blocks, "dir");
        let quant = crate::wrap_device(quant, opts.cache_blocks, "quant");
        let exact = crate::wrap_device(exact, opts.cache_blocks, "exact");
        Self::open_wrapped(dim, metric, opts, dir, quant, exact, clock)
    }

    /// Like [`IqTree::open`], but additionally adopts the index's
    /// write-ahead log: the surviving log is scanned, its torn tail and any
    /// unfinished transaction are truncated away, committed transactions
    /// are replayed onto the level files (idempotently — records are
    /// positional after-images), and only then is the index validated and
    /// opened. The returned tree keeps the log attached, so further
    /// updates stay crash-consistent.
    ///
    /// This is THE way to open an index that takes dynamic updates: after
    /// a crash at any point of any update, it restores exactly the state
    /// of the committed operation prefix.
    #[allow(clippy::too_many_arguments)]
    pub fn open_with_wal(
        dim: usize,
        metric: Metric,
        opts: IqTreeOptions,
        dir: Box<dyn BlockDevice>,
        quant: Box<dyn BlockDevice>,
        exact: Box<dyn BlockDevice>,
        wal_store: Box<dyn iq_storage::wal::WalStore>,
        clock: &mut SimClock,
    ) -> IqResult<(Self, crate::RecoveryReport)> {
        let mut dir = crate::wrap_device(dir, opts.cache_blocks, "dir");
        let mut quant = crate::wrap_device(quant, opts.cache_blocks, "quant");
        let mut exact = crate::wrap_device(exact, opts.cache_blocks, "exact");
        let (wal, scan) = iq_wal::Wal::open(wal_store, clock)?;
        let replayed = crate::durability::replay_txns(
            &scan.txns,
            dir.as_mut(),
            quant.as_mut(),
            exact.as_mut(),
            clock,
        )?;
        let report = crate::RecoveryReport {
            replayed_txns: scan.txns.len(),
            replayed_frames: replayed,
            discarded_bytes: (scan.valid_len - scan.committed_len) + scan.torn_bytes,
            uncommitted_frames: scan.uncommitted.len(),
            stop_reason: scan.stop_reason.clone(),
            wal_bytes: scan.committed_len,
        };
        let mut tree = Self::open_wrapped(dim, metric, opts, dir, quant, exact, clock)?;
        if tree.read_only {
            return Err(superblock_err(
                "cannot attach a WAL to a read-only (older-format) index".into(),
            ));
        }
        tree.wal = Some(wal);
        Ok((tree, report))
    }

    /// [`IqTree::open`] over devices already wrapped in the standard stack.
    pub(crate) fn open_wrapped(
        dim: usize,
        metric: Metric,
        opts: IqTreeOptions,
        dir: Box<dyn BlockDevice>,
        quant: Box<dyn BlockDevice>,
        exact: Box<dyn BlockDevice>,
        clock: &mut SimClock,
    ) -> IqResult<Self> {
        let bs = dir.block_size();
        if quant.block_size() != bs || exact.block_size() != bs {
            return Err(superblock_err(format!(
                "level files disagree on block size: dir {bs}, quant {}, exact {}",
                quant.block_size(),
                exact.block_size()
            )));
        }
        if dir.num_blocks() == 0 {
            return Err(superblock_err(
                "directory file is empty (no superblock)".into(),
            ));
        }
        let sb_block = read_to_vec_retry(dir.as_ref(), clock, 0, 1, &opts.retry)?;
        let sb = Superblock::decode(&sb_block)?;
        if sb.block_size as usize != bs {
            return Err(superblock_err(format!(
                "superblock records block size {}, device uses {bs}",
                sb.block_size
            )));
        }
        if sb.dim as usize != dim {
            return Err(superblock_err(format!(
                "superblock records dimension {}, caller expects {dim}",
                sb.dim
            )));
        }
        if sb.metric != metric {
            return Err(superblock_err(format!(
                "superblock records metric {:?}, caller expects {metric:?}",
                sb.metric
            )));
        }
        if sb.quant_blocks != quant.num_blocks() {
            return Err(superblock_err(format!(
                "superblock records {} quantized blocks, file has {}",
                sb.quant_blocks,
                quant.num_blocks()
            )));
        }
        if sb.exact_blocks > exact.num_blocks() {
            return Err(superblock_err(format!(
                "superblock records {} exact blocks, file has only {}",
                sb.exact_blocks,
                exact.num_blocks()
            )));
        }

        let n_pages = sb.n_pages as usize;
        let eb = dir_entry_bytes(dim);
        let payload_blocks = (n_pages * eb).div_ceil(bs) as u64;
        if dir.num_blocks() < 1 + payload_blocks {
            return Err(superblock_err(format!(
                "directory file too short: {} blocks for {n_pages} pages",
                dir.num_blocks()
            )));
        }
        let dir_bytes = if payload_blocks > 0 {
            read_to_vec_retry(dir.as_ref(), clock, 1, payload_blocks, &opts.retry)?
        } else {
            Vec::new()
        };
        let computed = crc32(&dir_bytes);
        if computed != sb.dir_crc {
            return Err(IqError::ChecksumMismatch {
                block: 1,
                stored: sb.dir_crc,
                computed,
            });
        }

        let codec = QuantizedPageCodec::new(dim, bs);
        let mut pages = Vec::with_capacity(n_pages);
        let mut n = 0usize;
        for e in 0..n_pages {
            let off = e * eb;
            let entry = &dir_bytes[off..off + eb];
            let f32_at =
                |k: usize| f32::from_le_bytes(entry[4 * k..4 * k + 4].try_into().expect("4 bytes"));
            let lb: Vec<f32> = (0..dim).map(&f32_at).collect();
            let ub: Vec<f32> = (dim..2 * dim).map(&f32_at).collect();
            let tail = &entry[8 * dim..];
            let g = u32::from_le_bytes(tail[0..4].try_into().expect("4 bytes"));
            let count = u32::from_le_bytes(tail[4..8].try_into().expect("4 bytes"));
            let quant_block = u64::from_le_bytes(tail[8..16].try_into().expect("8 bytes"));
            let exact_start = u64::from_le_bytes(tail[16..24].try_into().expect("8 bytes"));
            let exact_blocks = u32::from_le_bytes(tail[24..28].try_into().expect("4 bytes"));
            if !(1..=EXACT_BITS).contains(&g) {
                return Err(IqError::Decode {
                    detail: format!("directory entry {e}: resolution g = {g} outside 1..=32"),
                });
            }
            if count as usize > codec.capacity(g) {
                return Err(IqError::Decode {
                    detail: format!(
                        "directory entry {e}: {count} points exceed page capacity at {g} bits"
                    ),
                });
            }
            if quant_block >= sb.quant_blocks {
                return Err(IqError::Decode {
                    detail: format!(
                        "directory entry {e}: quantized block {quant_block} outside file of {} blocks",
                        sb.quant_blocks
                    ),
                });
            }
            if g < EXACT_BITS && exact_start + u64::from(exact_blocks) > sb.exact_blocks {
                return Err(IqError::Decode {
                    detail: format!(
                        "directory entry {e}: exact region [{exact_start}, +{exact_blocks}) outside file of {} blocks",
                        sb.exact_blocks
                    ),
                });
            }
            n += count as usize;
            pages.push(PageMeta {
                mbr: Mbr::from_bounds(lb, ub),
                g,
                count,
                quant_block,
                exact_start,
                exact_blocks,
            });
        }
        if n as u64 != sb.n_points {
            return Err(superblock_err(format!(
                "superblock records {} points, directory entries sum to {n}",
                sb.n_points
            )));
        }

        let fractal = opts.fractal_dim.unwrap_or(dim as f64);
        let mut dir_params = DirectoryParams::new(metric, dim, fractal, n.max(1));
        dir_params.dir_entry_bytes = eb;
        Ok(Self {
            dim,
            metric,
            opts,
            codec,
            exact_codec: ExactPageCodec::new(dim),
            dir,
            quant,
            exact,
            pages,
            dir_bytes,
            n,
            refine_params: RefineParams::fractal(metric, dim, fractal, n.max(1)),
            dir_params,
            trace: Default::default(),
            wasted_exact_blocks: 0,
            wal: None,
            txn: None,
            generation: sb.generation,
            read_only: sb.version < FORMAT_VERSION,
            poisoned: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::random_ds;
    use iq_storage::FileDevice;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iqtree-persist-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn file_dev(dir: &std::path::Path, name: &str, create: bool) -> Box<dyn BlockDevice> {
        let path = dir.join(name);
        Box::new(if create {
            FileDevice::create(&path, 1024).expect("create")
        } else {
            FileDevice::open(&path, 1024).expect("open")
        })
    }

    #[test]
    fn superblock_roundtrips() {
        let sb = Superblock {
            version: FORMAT_VERSION,
            block_size: 1020,
            dim: 7,
            metric: Metric::Manhattan,
            n_pages: 41,
            n_points: 12_345,
            quant_blocks: 41,
            exact_blocks: 99,
            dir_crc: 0xDEAD_BEEF,
            generation: 17,
        };
        let block = sb.encode(1020);
        assert_eq!(block.len(), 1020);
        assert_eq!(Superblock::decode(&block).expect("valid"), sb);
    }

    #[test]
    fn superblock_rejects_bad_magic_and_future_version() {
        let sb = Superblock {
            version: FORMAT_VERSION,
            block_size: 508,
            dim: 2,
            metric: Metric::Euclidean,
            n_pages: 1,
            n_points: 1,
            quant_blocks: 1,
            exact_blocks: 0,
            dir_crc: 0,
            generation: 0,
        };
        let mut block = sb.encode(508);
        block[0] ^= 0xFF;
        assert!(matches!(
            Superblock::decode(&block),
            Err(IqError::Superblock { .. })
        ));
        let mut block = sb.encode(508);
        block[8] = 0xFE; // version 254
        assert!(matches!(
            Superblock::decode(&block),
            Err(IqError::Version { found: 254, .. })
        ));
    }

    #[test]
    fn build_close_reopen_query() {
        let dir = temp_dir("roundtrip");
        let ds = random_ds(2_000, 6, 91);
        let mut clock = SimClock::default();
        let names = ["dir.bin", "quant.bin", "exact.bin"];
        let mut name_iter = names.iter();
        let tree = IqTree::build(
            &ds,
            Metric::Euclidean,
            IqTreeOptions::default(),
            || file_dev(&dir, name_iter.next().expect("three devices"), true),
            &mut clock,
        );
        let q = vec![0.42f32; 6];
        let expect = tree.knn(&mut clock, &q, 5);
        let pages_before = tree.num_pages();
        drop(tree);

        // Reopen from disk and run the same query.
        let reopened = IqTree::open(
            6,
            Metric::Euclidean,
            IqTreeOptions::default(),
            file_dev(&dir, "dir.bin", false),
            file_dev(&dir, "quant.bin", false),
            file_dev(&dir, "exact.bin", false),
            &mut clock,
        )
        .expect("clean index opens");
        assert_eq!(reopened.len(), 2_000);
        assert_eq!(reopened.num_pages(), pages_before);
        let got = reopened.knn(&mut clock, &q, 5);
        assert_eq!(got, expect);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn open_rejects_wrong_expectations() {
        let dir = temp_dir("mismatch");
        let ds = random_ds(300, 4, 93);
        let mut clock = SimClock::default();
        let names = ["d.bin", "q.bin", "e.bin"];
        let mut it = names.iter();
        let tree = IqTree::build(
            &ds,
            Metric::Euclidean,
            IqTreeOptions::default(),
            || file_dev(&dir, it.next().expect("three"), true),
            &mut clock,
        );
        drop(tree);
        let reopen = |dim, metric, clock: &mut SimClock| {
            IqTree::open(
                dim,
                metric,
                IqTreeOptions::default(),
                file_dev(&dir, "d.bin", false),
                file_dev(&dir, "q.bin", false),
                file_dev(&dir, "e.bin", false),
                clock,
            )
        };
        // Wrong dimension and wrong metric are both refused.
        assert!(matches!(
            reopen(5, Metric::Euclidean, &mut clock),
            Err(IqError::Superblock { .. })
        ));
        assert!(matches!(
            reopen(4, Metric::Maximum, &mut clock),
            Err(IqError::Superblock { .. })
        ));
        // A quantized file that is not the index's quantized file.
        let bogus = IqTree::open(
            4,
            Metric::Euclidean,
            IqTreeOptions::default(),
            file_dev(&dir, "d.bin", false),
            file_dev(&dir, "e.bin", false),
            file_dev(&dir, "e.bin", false),
            &mut clock,
        );
        assert!(bogus.is_err());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn reopened_tree_supports_updates() {
        let dir = temp_dir("updates");
        let ds = random_ds(800, 4, 92);
        let mut clock = SimClock::default();
        let names = ["d.bin", "q.bin", "e.bin"];
        let mut it = names.iter();
        let tree = IqTree::build(
            &ds,
            Metric::Euclidean,
            IqTreeOptions::default(),
            || file_dev(&dir, it.next().expect("three"), true),
            &mut clock,
        );
        drop(tree);
        let mut reopened = IqTree::open(
            4,
            Metric::Euclidean,
            IqTreeOptions::default(),
            file_dev(&dir, "d.bin", false),
            file_dev(&dir, "q.bin", false),
            file_dev(&dir, "e.bin", false),
            &mut clock,
        )
        .expect("clean index opens");
        let p = [0.9f32, 0.8, 0.7, 0.6];
        reopened.insert(&mut clock, 12_345, &p).unwrap();
        assert_eq!(
            reopened.nearest(&mut clock, &p).expect("non-empty").0,
            12_345
        );
        assert!(reopened.delete(&mut clock, 12_345, &p).unwrap());
        assert_eq!(reopened.len(), 800);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// A version-2 index (the pre-WAL format) still opens and answers
    /// queries, but read-only: updates are refused with a typed error and
    /// a WAL cannot be attached.
    #[test]
    fn version_2_index_opens_read_only() {
        let dir = temp_dir("v2-compat");
        let ds = random_ds(500, 4, 94);
        let mut clock = SimClock::default();
        let names = ["d.bin", "q.bin", "e.bin"];
        let mut it = names.iter();
        let tree = IqTree::build(
            &ds,
            Metric::Euclidean,
            IqTreeOptions::default(),
            || file_dev(&dir, it.next().expect("three"), true),
            &mut clock,
        );
        let q = vec![0.3f32; 4];
        let expect = tree.knn(&mut clock, &q, 5);
        drop(tree);

        // Downgrade the on-disk superblock to format version 2, exactly as
        // an old writer laid it out: version field 2, no generation, and a
        // recomputed block checksum (the CRC lives in the last 4 bytes of
        // the 1024-byte physical block).
        let path = dir.join("d.bin");
        let mut bytes = std::fs::read(&path).expect("read dir file");
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")),
            FORMAT_VERSION,
        );
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        bytes[60..68].fill(0);
        let crc = iq_storage::crc32(&bytes[..1020]);
        bytes[1020..1024].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write dir file");

        let mut reopened = IqTree::open(
            4,
            Metric::Euclidean,
            IqTreeOptions::default(),
            file_dev(&dir, "d.bin", false),
            file_dev(&dir, "q.bin", false),
            file_dev(&dir, "e.bin", false),
            &mut clock,
        )
        .expect("a v2 index still opens");
        assert!(reopened.is_read_only());
        assert_eq!(reopened.generation(), 0);
        assert_eq!(
            reopened.knn(&mut clock, &q, 5),
            expect,
            "queries still exact"
        );

        let err = reopened
            .insert(&mut clock, 9_999, &[0.5; 4])
            .expect_err("v2 indexes refuse updates");
        assert!(matches!(err, IqError::Superblock { .. }), "{err}");
        assert!(
            format!("{err}").contains("read-only"),
            "error names the cause: {err}"
        );
        let err = reopened
            .delete(&mut clock, 0, ds.point(0))
            .expect_err("v2 indexes refuse deletes");
        assert!(matches!(err, IqError::Superblock { .. }), "{err}");

        // And the WAL door is closed too.
        let err = match IqTree::open_with_wal(
            4,
            Metric::Euclidean,
            IqTreeOptions::default(),
            file_dev(&dir, "d.bin", false),
            file_dev(&dir, "q.bin", false),
            file_dev(&dir, "e.bin", false),
            Box::new(iq_storage::MemWal::new()),
            &mut clock,
        ) {
            Ok(_) => panic!("no WAL on a read-only index"),
            Err(e) => e,
        };
        assert!(matches!(err, IqError::Superblock { .. }), "{err}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
